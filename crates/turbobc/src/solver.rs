//! The public solver: ties storage, kernel selection, engines and the
//! fault-recovery policy together.

use crate::approx::{bc_approx_with_solver, ApproxBcResult};
use crate::batched::{bc_block_traced, block_ranges, BatchScratch, PanelMat};
use crate::checkpoint::{self, CheckpointConfig};
use crate::closeness::{closeness_with_solver, ClosenessResult};
use crate::dispatch::{
    executor_for, hybrid, DispatchMode, Execution, ExecutionPlan, ExecutorKind, PlanSegment,
    PlanStrategy, PlanWork,
};
use crate::dynamic::{self, BcCache, CachedBlock, EdgeUpdate, UpdatePlan};
use crate::edge::{edge_bc_with_solver, EdgeBcResult};
use crate::error::{CheckpointError, TurboBcError};
use crate::footprint;
use crate::frontier::{DirectionEngine, DirectionMode, LevelReport};
use crate::msbfs::{ms_bfs_on_storage, MsBfsResult};
use crate::observe::{NullObserver, Observer, TraceEvent};
use crate::options::{
    degrade, select_kernel, BatchWidth, BcOptions, Engine, Kernel, PrepMode, RecoveryPolicy,
};
use crate::par::{bc_source_par, bc_source_par_traced, ParScratch, ParStorage};
use crate::prep::{self, PrepPlan, PrepReport, ReducedComponent};
use crate::result::{BcResult, RecoveryLog, RunStats, SimtReport};
use crate::seq::{bc_source_seq_traced, SeqScratch, SourceRun, Storage};
use crate::simt_engine::bc_simt;
use crate::turbobfs::TurboBfs;
use std::time::Instant;
use turbobc_graph::{Graph, GraphStats, VertexId};
use turbobc_simt::{Device, DeviceError};
use turbobc_sparse::{Cooc, Index};

/// Source count at which the Parallel engine additionally parallelises
/// *across* sources (each task owns its scratch vectors, contributions
/// are summed) — the scalable path for exact BC.
const SOURCE_PAR_THRESHOLD: usize = 16;

/// Component size below which the prep-routed CPU paths force the
/// Sequential engine for the per-component sub-run — rayon setup costs
/// more than a tiny component's whole BFS.
const SEQ_COMPONENT_THRESHOLD: usize = 256;

/// Forwards a component sub-run's trace events with vertex ids remapped
/// back to the original graph, suppressing the sub-run's framing events
/// (`RunStart`/`RunEnd`/`KernelChoice`) — the routed run emits one outer
/// frame covering every component.
struct PrepForward<'a> {
    inner: &'a mut dyn Observer,
    /// Original vertex id per sub-run-local id.
    verts: &'a [VertexId],
}

impl Observer for PrepForward<'_> {
    fn event(&mut self, event: TraceEvent) {
        use TraceEvent::*;
        match event {
            RunStart { .. } | RunEnd { .. } | KernelChoice { .. } => {}
            Level {
                source,
                depth,
                frontier,
                sigma_updates,
            } => self.inner.event(Level {
                source: self.verts[source as usize],
                depth,
                frontier,
                sigma_updates,
            }),
            Direction {
                source,
                depth,
                direction,
                frontier_edges,
                threshold,
            } => self.inner.event(Direction {
                source: self.verts[source as usize],
                depth,
                direction,
                frontier_edges,
                threshold,
            }),
            SourceDone {
                source,
                height,
                reached,
            } => self.inner.event(SourceDone {
                source: self.verts[source as usize],
                height,
                reached,
            }),
            Block {
                first_source,
                width,
                sweeps,
            } => self.inner.event(Block {
                first_source: self.verts[first_source as usize],
                width,
                sweeps,
            }),
            other => self.inner.event(other),
        }
    }

    fn wants_levels(&self) -> bool {
        self.inner.wants_levels()
    }
}

/// Sources grouped per component in first-appearance order, with the
/// sources translated to component-local ids.
struct PrepGroups {
    /// `(component index, component-local sources)` in the order the
    /// components first appear in the caller's source list.
    groups: Vec<(usize, Vec<VertexId>)>,
    /// Component of the caller's *last* source — the sub-run that
    /// surfaces `σ`/depths.
    last_comp: usize,
}

/// Folds one component sub-run's recovery log into the routed run's.
fn merge_recovery(acc: &mut RecoveryLog, r: &RecoveryLog) {
    acc.oom_degradations += r.oom_degradations;
    acc.kernel_retries += r.kernel_retries;
    acc.link_retries += r.link_retries;
    acc.device_requeues += r.device_requeues;
    acc.resumed_sources += r.resumed_sources;
    acc.cpu_fallback |= r.cpu_fallback;
    if r.degraded_to.is_some() {
        acc.degraded_to = r.degraded_to;
    }
}

fn group_sources(plan: &PrepPlan, sources: &[VertexId]) -> PrepGroups {
    let mut order: Vec<usize> = Vec::new();
    let mut locals: Vec<Vec<VertexId>> = vec![Vec::new(); plan.comps.len()];
    for &s in sources {
        let c = plan.comp_of[s as usize] as usize;
        if locals[c].is_empty() {
            order.push(c);
        }
        let local = plan.comps[c]
            .verts
            .binary_search(&s)
            .expect("source is a member of its component");
        locals[c].push(local as VertexId);
    }
    let last_comp = plan.comp_of[*sources.last().expect("sources non-empty") as usize] as usize;
    PrepGroups {
        groups: order
            .into_iter()
            .map(|c| (c, std::mem::take(&mut locals[c])))
            .collect(),
        last_comp,
    }
}

/// Engine-matched reusable scratch for the per-source CPU loops:
/// allocated once per run, cleared per source (not dropped), so the
/// source loop does no per-source allocation.
enum CpuScratch {
    Seq(SeqScratch),
    Par(ParScratch),
}

impl CpuScratch {
    fn for_engine(engine: Engine, n: usize) -> Self {
        match engine {
            Engine::Sequential => CpuScratch::Seq(SeqScratch::new(n)),
            Engine::Parallel => CpuScratch::Par(ParScratch::new(n)),
        }
    }
}

/// A prepared BC computation over one graph.
///
/// Construction validates the graph, resolves the kernel (running the
/// paper's §3.1 selection for [`Kernel::Auto`]) and materialises
/// **exactly one** sparse storage format — COOC for `scCOOC`, CSC for
/// `scCSC`/`veCSC` — per the paper's memory rule.
pub struct BcSolver {
    graph: Graph,
    storage: Storage,
    kernel: Kernel,
    options: BcOptions,
    symmetric: bool,
    scale: f64,
    n: usize,
    m: usize,
    stats: GraphStats,
    dir: DirectionEngine,
    /// Resolved graph-reduction plan; `None` runs the legacy path
    /// untouched (bit-identical to prep-less builds).
    prep: Option<PrepPlan>,
}

impl BcSolver {
    /// Prepares a solver for `graph` with the given options.
    ///
    /// Fails with [`TurboBcError::EmptyGraph`] on a zero-vertex graph —
    /// BC over nothing is a caller bug, not an all-zero answer.
    pub fn new(graph: &Graph, options: BcOptions) -> Result<Self, TurboBcError> {
        if graph.n() == 0 {
            return Err(TurboBcError::EmptyGraph);
        }
        let stats = GraphStats::compute(graph);
        let kernel = match options.kernel {
            Kernel::Auto => select_kernel(&stats),
            k => k,
        };
        let storage = match kernel {
            Kernel::ScCooc => Storage::Cooc(graph.to_cooc()),
            _ => Storage::Csc(graph.to_csc()),
        };
        let dir = DirectionEngine::new(graph, options.execution.direction);
        let prep = prep::build_plan(graph, options.prep);
        Ok(BcSolver {
            dir,
            prep,
            graph: graph.clone(),
            storage,
            kernel,
            // Undirected graphs are stored as their symmetric closure.
            symmetric: !graph.directed(),
            scale: graph.bc_scale(),
            n: graph.n(),
            m: graph.m(),
            stats,
            options,
        })
    }

    /// The kernel this solver resolved to.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The engine this solver runs on.
    pub fn engine(&self) -> Engine {
        self.options.engine
    }

    /// The recovery policy applied to SIMT and multi-GPU runs.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.options.recovery
    }

    /// The full options this solver was built with.
    pub fn options(&self) -> &BcOptions {
        &self.options
    }

    /// The graph this solver was prepared for (host-side; the device
    /// memory rule of §3.4 concerns device arrays only).
    pub(crate) fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored arc count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Graph statistics computed at construction (degree profile, scf).
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The reduction report of the resolved prep plan, or `None` when
    /// the plan is a passthrough (use [`crate::prep::analyze`] for a
    /// report that always exists).
    pub fn prep_report(&self) -> Option<&PrepReport> {
        self.prep.as_ref().map(|p| &p.report)
    }

    fn validate_sources(&self, sources: &[VertexId]) -> Result<(), TurboBcError> {
        for &s in sources {
            if s as usize >= self.n {
                return Err(TurboBcError::InvalidSource {
                    source: s,
                    n: self.n,
                });
            }
        }
        Ok(())
    }

    /// BC contribution of a single source (the paper's "BC/vertex"
    /// experiments, Tables 1–4).
    pub fn bc_single_source(&self, source: VertexId) -> Result<BcResult, TurboBcError> {
        self.bc_via_plan(&[source])
    }

    /// Exact BC: all `n` sources (Table 5).
    pub fn bc_exact(&self) -> Result<BcResult, TurboBcError> {
        let sources: Vec<VertexId> = (0..self.n as VertexId).collect();
        self.bc_via_plan(&sources)
    }

    /// Approximate BC from `k` evenly-spaced pivot sources (Brandes &
    /// Pich-style sampling; an extension beyond the paper used by the
    /// examples).
    pub fn bc_sampled(&self, k: usize) -> Result<BcResult, TurboBcError> {
        let k = k.clamp(1, self.n.max(1));
        let stride = (self.n / k).max(1);
        let sources: Vec<VertexId> = (0..self.n)
            .step_by(stride)
            .take(k)
            .map(|s| s as VertexId)
            .collect();
        self.bc_via_plan(&sources)
    }

    /// Plans and executes in one step — the shared path of the
    /// convenience entry points above.
    fn bc_via_plan(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        let plan = self.plan(sources)?;
        Ok(self
            .execute(&plan)?
            .into_bc()
            .expect("BC plans produce a BC result"))
    }

    // ------------------------------------------------------------------
    // The plan/execute API (see [`crate::dispatch`]).
    // ------------------------------------------------------------------

    /// Builds an [`ExecutionPlan`] for BC over `sources` under the
    /// configured [`DispatchMode`]
    /// (`BcOptions::builder().dispatch(..)`):
    ///
    /// * [`DispatchMode::Auto`] — one executor for the whole run, taken
    ///   from [`BcOptions::engine`] (the pre-plan static behaviour);
    /// * [`DispatchMode::Pinned`] — the named executor, unconditionally;
    /// * [`DispatchMode::CostModel`] — the calibrated
    ///   [`crate::dispatch::CostModel`] picks between the CPU engines,
    ///   block-parallel batched panels, and per-level hybrid CPU↔device
    ///   scheduling, with the `7n + m` footprint model as the device
    ///   admission criterion.
    ///
    /// Plans are plain data — inspect [`ExecutionPlan::summary`] before
    /// running [`BcSolver::execute`].
    pub fn plan(&self, sources: &[VertexId]) -> Result<ExecutionPlan, TurboBcError> {
        self.validate_sources(sources)?;
        Ok(match self.options.execution.dispatch {
            DispatchMode::Auto => {
                let kind = ExecutorKind::from_engine(self.options.engine);
                self.single_plan(
                    DispatchMode::Auto,
                    kind,
                    sources,
                    format!("static `{}` engine from BcOptions", kind.name()),
                )
            }
            DispatchMode::Pinned(kind) => self.pinned_plan(kind, sources),
            DispatchMode::CostModel => self.cost_plan(sources),
        })
    }

    /// A plan that runs every source on one named executor, regardless
    /// of the configured dispatch mode — what the deprecated
    /// engine-specific entry points build internally.
    pub fn plan_pinned(
        &self,
        kind: ExecutorKind,
        sources: &[VertexId],
    ) -> Result<ExecutionPlan, TurboBcError> {
        self.validate_sources(sources)?;
        Ok(self.pinned_plan(kind, sources))
    }

    /// Plans multi-source BFS work: the bit-parallel MS-BFS sweeps by
    /// default, per-source [`TurboBfs`] traversals when pinned to it.
    /// Any other pin is rejected — only those two executors produce
    /// depth vectors without the dependency stage.
    pub fn plan_ms_bfs(&self, sources: &[VertexId]) -> Result<ExecutionPlan, TurboBcError> {
        self.validate_sources(sources)?;
        let kind = match self.options.execution.dispatch {
            DispatchMode::Pinned(k) => k,
            _ => ExecutorKind::Batched,
        };
        match kind {
            ExecutorKind::Batched | ExecutorKind::TurboBfs => Ok(ExecutionPlan {
                work: PlanWork::MsBfs,
                mode: self.options.execution.dispatch,
                sources: sources.to_vec(),
                strategy: PlanStrategy::Single(kind),
                segments: vec![PlanSegment {
                    executor: kind,
                    first: 0,
                    len: sources.len(),
                    rationale: "BFS depths only; no dependency stage".to_string(),
                }],
            }),
            other => Err(TurboBcError::InvalidPlan {
                detail: format!(
                    "multi-source BFS runs on the batched sweeps or TurboBFS, not `{}`",
                    other.name()
                ),
            }),
        }
    }

    fn pinned_plan(&self, kind: ExecutorKind, sources: &[VertexId]) -> ExecutionPlan {
        let strategy = match kind {
            ExecutorKind::Hybrid => PlanStrategy::Hybrid,
            k => PlanStrategy::Single(k),
        };
        ExecutionPlan {
            work: PlanWork::Bc,
            mode: DispatchMode::Pinned(kind),
            sources: sources.to_vec(),
            strategy,
            segments: vec![PlanSegment {
                executor: kind,
                first: 0,
                len: sources.len(),
                rationale: "pinned by caller".to_string(),
            }],
        }
    }

    fn single_plan(
        &self,
        mode: DispatchMode,
        kind: ExecutorKind,
        sources: &[VertexId],
        rationale: String,
    ) -> ExecutionPlan {
        ExecutionPlan {
            work: PlanWork::Bc,
            mode,
            sources: sources.to_vec(),
            strategy: PlanStrategy::Single(kind),
            segments: vec![PlanSegment {
                executor: kind,
                first: 0,
                len: sources.len(),
                rationale,
            }],
        }
    }

    /// The cost-model planner. Request-size granularity first: few
    /// sources plan per BFS level (hybrid), many sources plan per source
    /// block. The batched panels win blocks on sparse scale-free graphs
    /// (short traversals amortise across wide panels, the paper's
    /// Table 5 regime) when the block's σ/δ panels stay cache-resident
    /// and the footprint model admits the width; everything else runs
    /// the per-source engines — rayon across sources when it models a
    /// speed-up over the sequential sweeps, sequential otherwise.
    fn cost_plan(&self, sources: &[VertexId]) -> ExecutionPlan {
        let cost = &self.options.execution.cost;
        let mk =
            |strategy: PlanStrategy, executor: ExecutorKind, rationale: String| ExecutionPlan {
                work: PlanWork::Bc,
                mode: DispatchMode::CostModel,
                sources: sources.to_vec(),
                strategy,
                segments: vec![PlanSegment {
                    executor,
                    first: 0,
                    len: sources.len(),
                    rationale,
                }],
            };
        if sources.len() < cost.block_sources {
            return mk(
                PlanStrategy::Hybrid,
                ExecutorKind::Hybrid,
                format!(
                    "{} source(s) under block granularity {}: schedule each level CPU↔device",
                    sources.len(),
                    cost.block_sources
                ),
            );
        }
        // Size batched blocks so every rayon worker gets one: a single
        // width-64 block on a 4-thread host leaves three workers idle,
        // while 4 × width-16 blocks keep them all sweeping.
        let threads = rayon::current_num_threads().max(1);
        let width = self
            .resolve_batch_width(sources.len())
            .min(sources.len().div_ceil(threads))
            .max(1);
        let seq_ns = executor_for(ExecutorKind::CpuSequential).estimate_ns(
            cost,
            &self.stats,
            sources.len(),
            width,
        );
        let par_ns = executor_for(ExecutorKind::CpuParallel).estimate_ns(
            cost,
            &self.stats,
            sources.len(),
            width,
        );
        let batched_ns = executor_for(ExecutorKind::Batched).estimate_ns(
            cost,
            &self.stats,
            sources.len(),
            width,
        );
        let batched_wins = width > 1
            && self.stats.is_scale_free()
            && self.stats.degree.mean <= cost.panel_degree_max
            && cost.panels_resident(self.n, width)
            && batched_ns < par_ns
            && executor_for(ExecutorKind::Batched).admits(
                self.n,
                self.m,
                self.kernel,
                width,
                self.options.device.global_mem_bytes,
            );
        if batched_wins {
            let rationale = format!(
                "scale-free (scf {:.1}, mean degree {:.1}) and {} KiB panels stay resident: \
                 width-{width} panels model {:.0}µs vs {:.0}µs parallel",
                self.stats.scf,
                self.stats.degree.mean,
                cost.panel_bytes(self.n, width) >> 10,
                batched_ns / 1e3,
                par_ns / 1e3
            );
            if self.prep.is_some() {
                // Reduction-routed runs keep the batched engine's own
                // per-component splitting.
                mk(
                    PlanStrategy::Single(ExecutorKind::Batched),
                    ExecutorKind::Batched,
                    rationale,
                )
            } else {
                mk(
                    PlanStrategy::BlockParallel { width },
                    ExecutorKind::Batched,
                    rationale,
                )
            }
        } else if par_ns < seq_ns {
            mk(
                PlanStrategy::Single(ExecutorKind::CpuParallel),
                ExecutorKind::CpuParallel,
                format!(
                    "panels decline the block (scf {:.1}, mean degree {:.1}, width {width}): \
                     rayon across sources models {:.0}µs",
                    self.stats.scf,
                    self.stats.degree.mean,
                    par_ns / 1e3
                ),
            )
        } else {
            // One worker thread: rayon models no speed-up, so the tie
            // breaks to the overhead-free sequential engine.
            mk(
                PlanStrategy::Single(ExecutorKind::CpuSequential),
                ExecutorKind::CpuSequential,
                format!(
                    "single host thread (scf {:.1}): sequential sweeps model {:.0}µs",
                    self.stats.scf,
                    seq_ns / 1e3
                ),
            )
        }
    }

    /// Runs a plan. A device is built from the options only when the
    /// plan needs one ([`ExecutionPlan::needs_device`]); use
    /// [`BcSolver::execute_on`] to target a caller-built device.
    pub fn execute(&self, plan: &ExecutionPlan) -> Result<Execution, TurboBcError> {
        self.execute_observed(plan, &mut NullObserver)
    }

    /// [`BcSolver::execute`] with the run traced into `obs`, including
    /// one [`TraceEvent::Dispatch`] event per scheduling decision (run,
    /// block and level granularity).
    pub fn execute_observed(
        &self,
        plan: &ExecutionPlan,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        if plan.needs_device() {
            let device = Device::new(self.options.device);
            self.execute_impl(Some(&device), plan, obs)
        } else {
            self.execute_impl(None, plan, obs)
        }
    }

    /// Runs a plan against a caller-built device (fault plans, capacity
    /// caps, shared metric ledgers).
    pub fn execute_on(
        &self,
        device: &Device,
        plan: &ExecutionPlan,
    ) -> Result<Execution, TurboBcError> {
        self.execute_impl(Some(device), plan, &mut NullObserver)
    }

    /// [`BcSolver::execute_on`] with the run traced into `obs`.
    pub fn execute_on_observed(
        &self,
        device: &Device,
        plan: &ExecutionPlan,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        self.execute_impl(Some(device), plan, obs)
    }

    fn execute_impl(
        &self,
        device: Option<&Device>,
        plan: &ExecutionPlan,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        let executor: &'static str = match &plan.strategy {
            PlanStrategy::Single(k) => k.name(),
            PlanStrategy::Hybrid => "hybrid",
            PlanStrategy::BlockParallel { .. } => "batched",
        };
        obs.event(TraceEvent::Dispatch {
            granularity: "run",
            executor,
            source: plan.sources().first().copied().unwrap_or(0),
            depth: 0,
            frontier: plan.sources().len(),
            reason: plan
                .segments()
                .first()
                .map(|s| s.rationale.clone())
                .unwrap_or_else(|| plan.mode().describe()),
        });
        match plan.work {
            PlanWork::MsBfs => match &plan.strategy {
                PlanStrategy::Single(ExecutorKind::TurboBfs) => Ok(Execution::from_ms_bfs(
                    self.exec_ms_bfs_turbobfs(plan.sources(), obs)?,
                )),
                PlanStrategy::Single(ExecutorKind::Batched) => Ok(Execution::from_ms_bfs(
                    ms_bfs_on_storage(&self.storage, self.kernel, plan.sources(), obs),
                )),
                _ => Err(TurboBcError::InvalidPlan {
                    detail: "BFS plans run on the batched sweeps or TurboBFS".to_string(),
                }),
            },
            PlanWork::Bc => match &plan.strategy {
                PlanStrategy::Single(k) => executor_for(*k).run(self, plan, device, obs),
                PlanStrategy::Hybrid => {
                    let (bc, report) = self.exec_bc_hybrid(device, plan.sources(), obs)?;
                    Ok(Execution {
                        bc: Some(bc),
                        simt: report,
                        ms_bfs: None,
                    })
                }
                PlanStrategy::BlockParallel { width } => Ok(Execution::from_bc(
                    self.exec_block_parallel(plan.sources(), *width, obs)?,
                )),
            },
        }
    }

    // ------------------------------------------------------------------
    // Deprecated 0.2 entry points — thin shims over plan/execute.
    // ------------------------------------------------------------------

    /// BC accumulated over an explicit source set. Every source must be
    /// a vertex of the graph ([`TurboBcError::InvalidSource`]).
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute`"
    )]
    pub fn bc_sources(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        #[allow(deprecated)]
        self.bc_sources_observed(sources, &mut NullObserver)
    }

    /// [`BcSolver::bc_sources`] with the run traced into `obs` — the
    /// observability entry point for the CPU engines. An observer that
    /// wants per-level events forces the across-sources parallel path
    /// off (per-kernel parallelism stays on), so the trace is an ordered
    /// per-source timeline.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute_observed`"
    )]
    pub fn bc_sources_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        let kind = ExecutorKind::from_engine(self.options.engine);
        let plan = self.plan_pinned(kind, sources)?;
        Ok(self
            .execute_observed(&plan, obs)?
            .into_bc()
            .expect("BC plans produce a BC result"))
    }

    /// Emits the [`TraceEvent::Prep`] summary for a routed run,
    /// including the kernel each component's sub-run resolves to.
    fn emit_prep_event(&self, plan: &PrepPlan, obs: &mut dyn Observer) {
        let component_kernels: Vec<&'static str> = plan
            .comps
            .iter()
            .map(|c| {
                let g = c.reduced.as_ref().map(|r| &r.graph).unwrap_or(&c.graph);
                match self.options.kernel {
                    Kernel::Auto => select_kernel(&GraphStats::compute(g)),
                    k => k,
                }
                .name()
            })
            .collect();
        obs.event(TraceEvent::Prep {
            mode: plan.report.mode,
            components: plan.report.components,
            n_reduced: plan.report.n_reduced,
            m_reduced: plan.report.m_reduced,
            folded: plan.report.folded_vertices,
            twin_classes: plan.report.twin_classes,
            twin_members: plan.report.twin_members_removed,
            fold_passes: plan.report.fold_passes,
            component_kernels,
        });
    }

    /// CPU run through the reduction plan. The fold/twin (weighted) path
    /// only covers exact BC — all `n` sources in identity order; any
    /// other source set runs through the component split alone, which is
    /// exact for arbitrary sources.
    fn run_prep_cpu(
        &self,
        plan: &PrepPlan,
        sources: &[VertexId],
        engine: Engine,
        obs: &mut dyn Observer,
    ) -> BcResult {
        let all_sources = plan.full
            && sources.len() == self.n
            && sources.iter().all(|&s| (s as usize) < self.n)
            && sources.iter().enumerate().all(|(i, &s)| s as usize == i);
        if all_sources {
            self.run_prep_full_cpu(plan, engine, obs)
        } else {
            self.run_prep_components_cpu(plan, sources, engine, obs)
        }
    }

    /// Component-split run: each component's sources run on its compacted
    /// sub-graph (bitwise-identical per-source arithmetic — compaction is
    /// monotone, so neighbour order and float op order are preserved),
    /// contributions scatter back, and cross-component pairs contribute
    /// their exact `0.0`.
    fn run_prep_components_cpu(
        &self,
        plan: &PrepPlan,
        sources: &[VertexId],
        engine: Engine,
        obs: &mut dyn Observer,
    ) -> BcResult {
        let start = Instant::now();
        self.emit_prep_event(plan, obs);
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: match engine {
                Engine::Sequential => "seq",
                Engine::Parallel => "par",
            },
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        let grouped = group_sources(plan, sources);
        for (c, locals) in &grouped.groups {
            let comp = &plan.comps[*c];
            let r = {
                let mut fwd = PrepForward {
                    inner: &mut *obs,
                    verts: &comp.verts,
                };
                let sub = self.component_solver(comp.verts.len(), &comp.graph, engine);
                sub.run_cpu_observed(locals, sub.options.engine, &mut fwd)
            };
            for (local, &orig) in comp.verts.iter().enumerate() {
                bc[orig as usize] += r.bc[local];
            }
            stats.max_depth = stats.max_depth.max(r.stats.max_depth);
            stats.total_levels += r.stats.total_levels;
            if *c == grouped.last_comp {
                // The caller's last source is this group's last local
                // source (order is preserved within a group), so this
                // sub-run holds the deterministic σ/S surface.
                for (local, &orig) in comp.verts.iter().enumerate() {
                    sigma[orig as usize] = r.sigma[local];
                    depths[orig as usize] = r.depths[local];
                }
                stats.last_reached = r.stats.last_reached;
            }
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        BcResult {
            bc,
            sigma,
            depths,
            stats,
        }
    }

    /// A prep-less sub-solver for one component, forcing the Sequential
    /// engine below [`SEQ_COMPONENT_THRESHOLD`] vertices.
    fn component_solver(&self, n_c: usize, graph: &Graph, engine: Engine) -> BcSolver {
        let engine = if n_c < SEQ_COMPONENT_THRESHOLD {
            Engine::Sequential
        } else {
            engine
        };
        let mut options = self.options.clone();
        options.prep = PrepMode::Off;
        options.engine = engine;
        options.checkpoint = None;
        BcSolver::new(graph, options).expect("component graphs are non-empty")
    }

    /// Exact BC through the full reduction: weighted engine runs over
    /// every component's reduced graph, closed-form corrections, and the
    /// σ/S surface rerun on the *original* graph for the last source.
    fn run_prep_full_cpu(
        &self,
        plan: &PrepPlan,
        engine: Engine,
        obs: &mut dyn Observer,
    ) -> BcResult {
        let start = Instant::now();
        self.emit_prep_event(plan, obs);
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: match engine {
                Engine::Sequential => "seq",
                Engine::Parallel => "par",
            },
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: self.n,
        });
        let mut bc = vec![0.0f64; self.n];
        let mut stats = RunStats {
            sources: self.n,
            ..Default::default()
        };
        for comp in &plan.comps {
            let rc = comp
                .reduced
                .as_ref()
                .expect("full plan reduces every component");
            let (max_d, levels) = self.run_weighted_component(rc, engine, obs, &mut bc);
            stats.max_depth = stats.max_depth.max(max_d);
            stats.total_levels += levels;
        }
        for (v, &c) in plan.corrections.iter().enumerate() {
            if c != 0.0 {
                bc[v] += c;
            }
        }
        // Deterministic σ/S surface: the last source, rerun on the
        // original graph (not counted in total_levels, like the
        // across-sources parallel path's rerun).
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut scratch_bc = vec![0.0f64; self.n];
        let mut scratch = CpuScratch::for_engine(engine, self.n);
        let run = self.one_source(
            self.n - 1,
            engine,
            &mut scratch_bc,
            &mut sigma,
            &mut depths,
            &mut scratch,
            &mut |_| {},
        );
        stats.last_reached = run.reached;
        stats.max_depth = stats.max_depth.max(run.height);
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        BcResult {
            bc,
            sigma,
            depths,
            stats,
        }
    }

    /// All-sources weighted BC over one reduced component, scattered to
    /// every represented original vertex. Returns `(max height, levels)`.
    fn run_weighted_component(
        &self,
        rc: &ReducedComponent,
        engine: Engine,
        obs: &mut dyn Observer,
        bc_out: &mut [f64],
    ) -> (u32, u64) {
        let rn = rc.graph.n();
        let kernel = match self.options.kernel {
            Kernel::Auto => select_kernel(&GraphStats::compute(&rc.graph)),
            k => k,
        };
        let storage = match kernel {
            Kernel::ScCooc => Storage::Cooc(rc.graph.to_cooc()),
            _ => Storage::Csc(rc.graph.to_csc()),
        };
        let dir = DirectionEngine::new(&rc.graph, self.options.execution.direction);
        let scale = rc.graph.bc_scale();
        let weights = &rc.weights;
        let engine = if rn < SEQ_COMPONENT_THRESHOLD {
            Engine::Sequential
        } else {
            engine
        };
        let mut bc_c = vec![0.0f64; rn];
        let mut sigma_c = vec![0i64; rn];
        let mut depths_c = vec![0u32; rn];
        let mut max_d = 0u32;
        let mut levels = 0u64;
        let wants = obs.wants_levels();
        match engine {
            Engine::Parallel if rn >= SOURCE_PAR_THRESHOLD && !wants => {
                use rayon::prelude::*;
                let storage = match &storage {
                    Storage::Csc(csc) => ParStorage::Csc {
                        csc,
                        symmetric: true,
                    },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                let chunk = rn.div_ceil(rayon::current_num_threads().max(1));
                let (sum_bc, depth, lvls) = (0..rn as VertexId)
                    .collect::<Vec<_>>()
                    .par_chunks(chunk.max(1))
                    .map(|batch| {
                        let mut local_bc = vec![0.0f64; rn];
                        let mut local_sigma = vec![0i64; rn];
                        let mut local_depths = vec![0u32; rn];
                        let mut scratch = ParScratch::new(rn);
                        let mut max_d = 0u32;
                        let mut levels = 0u64;
                        for &s in batch {
                            let run = bc_source_par(
                                &storage,
                                &dir,
                                s as usize,
                                scale,
                                &mut local_bc,
                                &mut local_sigma,
                                &mut local_depths,
                                &mut scratch,
                                Some(weights),
                            );
                            max_d = max_d.max(run.height);
                            levels += run.height as u64;
                        }
                        (local_bc, max_d, levels)
                    })
                    .reduce(
                        || (vec![0.0f64; rn], 0u32, 0u64),
                        |(mut a, da, la), (b, db, lb)| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            (a, da.max(db), la + lb)
                        },
                    );
                bc_c = sum_bc;
                max_d = depth;
                levels = lvls;
            }
            _ => {
                let reps: Vec<VertexId> = rc.members.iter().map(|ms| ms[0]).collect();
                let threshold = dir.threshold();
                let mut scratch = CpuScratch::for_engine(engine, rn);
                for s in 0..rn {
                    let run = {
                        let rep = reps[s];
                        let mut on_level = |lr: LevelReport| {
                            if wants {
                                obs.event(TraceEvent::Level {
                                    source: rep,
                                    depth: lr.depth,
                                    frontier: lr.frontier,
                                    sigma_updates: lr.frontier as u64,
                                });
                                obs.event(TraceEvent::Direction {
                                    source: rep,
                                    depth: lr.depth,
                                    direction: lr.direction.name(),
                                    frontier_edges: lr.frontier_edges,
                                    threshold,
                                });
                            }
                        };
                        match (engine, &mut scratch) {
                            (Engine::Sequential, CpuScratch::Seq(scratch)) => bc_source_seq_traced(
                                &storage,
                                &dir,
                                s,
                                scale,
                                &mut bc_c,
                                &mut sigma_c,
                                &mut depths_c,
                                scratch,
                                Some(weights),
                                &mut on_level,
                            ),
                            (Engine::Parallel, CpuScratch::Par(scratch)) => {
                                let pstorage = match &storage {
                                    Storage::Csc(csc) => ParStorage::Csc {
                                        csc,
                                        symmetric: true,
                                    },
                                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                                };
                                bc_source_par_traced(
                                    &pstorage,
                                    &dir,
                                    s,
                                    scale,
                                    &mut bc_c,
                                    &mut sigma_c,
                                    &mut depths_c,
                                    scratch,
                                    Some(weights),
                                    &mut on_level,
                                )
                            }
                            _ => unreachable!("scratch built for a different engine"),
                        }
                    };
                    max_d = max_d.max(run.height);
                    levels += run.height as u64;
                    obs.event(TraceEvent::SourceDone {
                        source: reps[s],
                        height: run.height,
                        reached: run.reached,
                    });
                }
            }
        }
        // Every member of a twin class shares the representative's
        // engine-derived BC.
        for (r, members) in rc.members.iter().enumerate() {
            for &orig in members {
                bc_out[orig as usize] += bc_c[r];
            }
        }
        (max_d, levels)
    }

    /// One source on the CPU (engine-selected kernel structure),
    /// accumulating into the caller's buffers. `scratch` must have been
    /// built by [`CpuScratch::for_engine`] with the same engine — the
    /// source loops allocate it once and reuse it across sources.
    #[allow(clippy::too_many_arguments)]
    fn one_source(
        &self,
        source: usize,
        engine: Engine,
        bc: &mut [f64],
        sigma: &mut [i64],
        depths: &mut [u32],
        scratch: &mut CpuScratch,
        on_level: &mut dyn FnMut(LevelReport),
    ) -> SourceRun {
        match (engine, scratch) {
            (Engine::Sequential, CpuScratch::Seq(scratch)) => bc_source_seq_traced(
                &self.storage,
                &self.dir,
                source,
                self.scale,
                bc,
                sigma,
                depths,
                scratch,
                None,
                on_level,
            ),
            (Engine::Parallel, CpuScratch::Par(scratch)) => {
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc {
                        csc,
                        symmetric: self.symmetric,
                    },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                bc_source_par_traced(
                    &storage, &self.dir, source, self.scale, bc, sigma, depths, scratch, None,
                    on_level,
                )
            }
            _ => unreachable!("scratch built for a different engine"),
        }
    }

    /// The CPU engines with the run traced into `obs` (validation
    /// already done).
    fn run_cpu_observed(
        &self,
        sources: &[VertexId],
        engine: Engine,
        obs: &mut dyn Observer,
    ) -> BcResult {
        let start = Instant::now();
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: match engine {
                Engine::Sequential => "seq",
                Engine::Parallel => "par",
            },
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        match engine {
            Engine::Parallel if sources.len() >= SOURCE_PAR_THRESHOLD && !obs.wants_levels() => {
                // Exact/sampled runs: parallelise across sources too —
                // each task owns its scratch, contributions are summed.
                use rayon::prelude::*;
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc {
                        csc,
                        symmetric: self.symmetric,
                    },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                let n = self.n;
                let chunk = sources.len().div_ceil(rayon::current_num_threads().max(1));
                let (sum_bc, max_depth, total_levels) = sources
                    .par_chunks(chunk.max(1))
                    .map(|batch| {
                        let mut local_bc = vec![0.0f64; n];
                        let mut local_sigma = vec![0i64; n];
                        let mut local_depths = vec![0u32; n];
                        // One scratch per chunk, reused across the
                        // chunk's sources.
                        let mut scratch = ParScratch::new(n);
                        let mut max_d = 0u32;
                        let mut levels = 0u64;
                        for &s in batch {
                            let run = bc_source_par(
                                &storage,
                                &self.dir,
                                s as usize,
                                self.scale,
                                &mut local_bc,
                                &mut local_sigma,
                                &mut local_depths,
                                &mut scratch,
                                None,
                            );
                            max_d = max_d.max(run.height);
                            levels += run.height as u64;
                        }
                        (local_bc, max_d, levels)
                    })
                    .reduce(
                        || (vec![0.0f64; n], 0u32, 0u64),
                        |(mut a, da, la), (b, db, lb)| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            (a, da.max(db), la + lb)
                        },
                    );
                bc = sum_bc;
                stats.max_depth = max_depth;
                stats.total_levels = total_levels;
                // Deterministic σ/S surface: rerun the last source once
                // into the output buffers (without re-accumulating bc).
                if let Some(&last) = sources.last() {
                    let mut scratch_bc = vec![0.0f64; n];
                    let run = bc_source_par(
                        &storage,
                        &self.dir,
                        last as usize,
                        self.scale,
                        &mut scratch_bc,
                        &mut sigma,
                        &mut depths,
                        &mut ParScratch::new(n),
                        None,
                    );
                    stats.last_reached = run.reached;
                }
            }
            _ => {
                // Sequential engine, small parallel runs, and every
                // level-observed run: ordered per-source loop (the
                // Parallel engine still parallelises within each
                // kernel), so the trace is a clean timeline.
                let wants = obs.wants_levels();
                let threshold = self.dir.threshold();
                let mut scratch = CpuScratch::for_engine(engine, self.n);
                for &s in sources {
                    let run = {
                        let mut on_level = |lr: LevelReport| {
                            if wants {
                                obs.event(TraceEvent::Level {
                                    source: s,
                                    depth: lr.depth,
                                    frontier: lr.frontier,
                                    sigma_updates: lr.frontier as u64,
                                });
                                obs.event(TraceEvent::Direction {
                                    source: s,
                                    depth: lr.depth,
                                    direction: lr.direction.name(),
                                    frontier_edges: lr.frontier_edges,
                                    threshold,
                                });
                            }
                        };
                        self.one_source(
                            s as usize,
                            engine,
                            &mut bc,
                            &mut sigma,
                            &mut depths,
                            &mut scratch,
                            &mut on_level,
                        )
                    };
                    stats.max_depth = stats.max_depth.max(run.height);
                    stats.total_levels += run.height as u64;
                    stats.last_reached = run.reached;
                    obs.event(TraceEvent::SourceDone {
                        source: s,
                        height: run.height,
                        reached: run.reached,
                    });
                }
            }
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        BcResult {
            bc,
            sigma,
            depths,
            stats,
        }
    }

    /// The block width [`BcSolver::bc_batched`] will use for a run over
    /// `n_sources` sources: [`BatchWidth::Fixed`] verbatim (floored at
    /// 1), [`BatchWidth::Auto`] from the `7n + m`-style footprint model
    /// against the configured device's memory
    /// ([`footprint::auto_batch_width`]), both clamped to the source
    /// count — a block never holds dead lanes.
    pub fn resolve_batch_width(&self, n_sources: usize) -> usize {
        let width = match self.options.execution.batch_width {
            BatchWidth::Fixed(b) => b.max(1),
            BatchWidth::Auto => footprint::auto_batch_width(
                self.n,
                self.m,
                self.kernel,
                self.options.device.global_mem_bytes,
            ),
        };
        width.min(n_sources.max(1))
    }

    /// Batched multi-source BC: sources are processed in blocks of
    /// [`BcOptions::batch_width`] lanes over a bit-sliced `n×b` frontier,
    /// so each BFS level costs **one** masked SpMM for the whole block
    /// instead of one sweep per source — the per-source matrix traffic
    /// drops by the block's height spread. `σ` and the depth vector
    /// become `n×b` panels; the backward stage batches the dependency
    /// accumulation the same way and folds the `δ` panels into the
    /// shared `bc` vector.
    ///
    /// The result is numerically equivalent to [`BcSolver::bc_sources`]
    /// (and bit-identical to the Sequential engine for the CSC kernels —
    /// the panels preserve per-lane operation order); `stats.total_levels`
    /// counts *matrix sweeps*, so comparing it against a per-source
    /// run's count shows the amortization directly.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute`"
    )]
    pub fn bc_batched(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        let plan = self.plan_pinned(ExecutorKind::Batched, sources)?;
        Ok(self
            .execute(&plan)?
            .into_bc()
            .expect("BC plans produce a BC result"))
    }

    /// [`BcSolver::bc_batched`] with the run traced into `obs`: one
    /// [`TraceEvent::Block`] per block (its width and matrix-sweep
    /// count), per-level events under the block's first source, and the
    /// usual per-source completions.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute_observed`"
    )]
    pub fn bc_batched_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        let plan = self.plan_pinned(ExecutorKind::Batched, sources)?;
        Ok(self
            .execute_observed(&plan, obs)?
            .into_bc()
            .expect("BC plans produce a BC result"))
    }

    /// Warms the incremental-update cache ([`crate::dynamic`]): one
    /// batched run over `sources`, keeping every block's depth/`σ`
    /// panels and BC contribution vector so later update batches can
    /// be mapped onto the blocks they invalidate
    /// ([`BcSolver::apply_updates`]) and only those re-swept
    /// ([`BcSolver::recompute_dirty`]).
    ///
    /// The cache's modelled size is admitted against the cost model's
    /// `update_cache_bytes` budget up front, and prep-routed solvers
    /// are rejected — the reduction pipeline rewrites the vertex space
    /// the cached panels are keyed on; build the solver with
    /// [`PrepMode::Off`] to stream updates.
    pub fn warm_cache(&self, sources: &[VertexId]) -> Result<BcCache, TurboBcError> {
        self.validate_sources(sources)?;
        if sources.is_empty() {
            return Err(TurboBcError::InvalidPlan {
                detail: "warm_cache needs at least one source".to_string(),
            });
        }
        if self.prep.is_some() {
            return Err(TurboBcError::InvalidPlan {
                detail: "the incremental cache indexes the original vertex space, which the \
                         prep pipeline rewrites; build the solver with PrepMode::Off"
                    .to_string(),
            });
        }
        let width = self.resolve_batch_width(sources.len());
        let budget = self.options.execution.cost.update_cache_bytes;
        let need = BcCache::modelled_bytes(self.n, sources.len(), width);
        if need > budget {
            return Err(TurboBcError::InvalidPlan {
                detail: format!(
                    "incremental cache would hold {need} modelled bytes for {} sources at \
                     width {width}, over the cost model's update_cache_bytes budget ({budget})",
                    sources.len()
                ),
            });
        }
        let graph_fp = dynamic::graph_fingerprint(&self.graph);
        let mut cache = BcCache {
            fingerprint: dynamic::cache_fingerprint(graph_fp, self.scale, width, sources),
            sources: sources.to_vec(),
            width,
            n: self.n,
            scale: self.scale,
            blocks: Vec::with_capacity(sources.len().div_ceil(width)),
            bc: vec![0.0; self.n],
        };
        let mut scratch = BatchScratch::new(self.n, width);
        for (first, len) in block_ranges(sources.len(), width) {
            let block = &sources[first..first + len];
            let mut bc_tmp = vec![0.0f64; self.n];
            let run = bc_block_traced(
                &self.storage,
                self.kernel,
                &self.dir,
                block,
                self.scale,
                &mut bc_tmp,
                &mut scratch,
                None,
                &mut |_| {},
            );
            let mut sigma = Vec::new();
            let mut depths = Vec::new();
            scratch.extract_block(self.n, len, &mut sigma, &mut depths);
            cache.blocks.push(CachedBlock {
                first,
                len,
                depths,
                sigma,
                bc: bc_tmp,
                sweeps: run.sweeps,
                height: run.heights.iter().copied().max().unwrap_or(1),
            });
        }
        cache.resum();
        Ok(cache)
    }

    /// Maps one update batch onto a warm cache: which cached source
    /// blocks the batch invalidates (scanning the cached depth panels
    /// against the changed arcs) and whether the cost model's
    /// `update_full_fraction` escalates to a full recompute.
    ///
    /// `self` must be the solver over the *updated* graph; `updates`
    /// is the edge diff that turned the cache's graph into this one
    /// (as produced effective-change by [`crate::dynamic::DynamicGraph`]).
    /// The plan re-keys the cache to this graph's content fingerprint
    /// when executed by [`BcSolver::recompute_dirty`].
    pub fn apply_updates(
        &self,
        cache: &BcCache,
        updates: &[EdgeUpdate],
    ) -> Result<UpdatePlan, TurboBcError> {
        if cache.n != self.n {
            return Err(TurboBcError::InvalidPlan {
                detail: format!(
                    "cache covers {} vertices, this solver's graph has {}",
                    cache.n, self.n
                ),
            });
        }
        let arcs = dynamic::expand_updates(self.n, self.graph.directed(), updates)?;
        let new_fp = dynamic::cache_fingerprint(
            dynamic::graph_fingerprint(&self.graph),
            cache.scale,
            cache.width,
            &cache.sources,
        );
        Ok(dynamic::plan_updates(
            cache,
            &arcs.ins_arcs,
            &arcs.del_arcs,
            arcs.inserts,
            arcs.deletes,
            self.options.execution.cost.update_full_fraction,
            new_fp,
        ))
    }

    /// Executes an [`UpdatePlan`]: re-sweeps the invalidated blocks
    /// over this solver's (updated) storage, folds the fresh
    /// contributions into the cached BC vector and re-keys the cache.
    /// Dispatch-mode aware — `Pinned(CpuSequential)` / `Pinned(Batched)`
    /// force the sequential sweep, `Pinned(CpuParallel)` the
    /// block-parallel one, `Auto` / `CostModel` pick per batch; other
    /// pins are rejected. Emits a [`TraceEvent::Update`] plus the
    /// usual dispatch/run framing into `obs`.
    pub fn recompute_dirty(
        &self,
        cache: &mut BcCache,
        plan: &UpdatePlan,
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        if cache.n != self.n {
            return Err(TurboBcError::InvalidPlan {
                detail: format!(
                    "cache covers {} vertices, this solver's graph has {}",
                    cache.n, self.n
                ),
            });
        }
        if self.prep.is_some() {
            return Err(TurboBcError::InvalidPlan {
                detail: "dirty-block recompute needs the original vertex space; build the \
                         solver with PrepMode::Off"
                    .to_string(),
            });
        }
        let (parallel, exec_reason) = dynamic::choose_update_executor(
            &self.options.execution.dispatch,
            plan.recompute_count(),
        )?;
        let mat = PanelMat::Static {
            storage: &self.storage,
            kernel: self.kernel,
        };
        let reason = format!("{}; {}", plan.rationale(), exec_reason);
        let stats = dynamic::run_update(
            &mat,
            &self.dir,
            self.kernel,
            self.m,
            parallel,
            &reason,
            cache,
            plan,
            obs,
        );
        Ok(cache.result(stats))
    }

    /// The batched executor body: bit-sliced `n×b` panels, one masked
    /// SpMM per BFS level for the whole block. Sources are pre-validated
    /// at plan time.
    pub(crate) fn exec_bc_batched(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        if let Some(plan) = &self.prep {
            if !sources.is_empty() {
                return Ok(self.run_prep_batched(plan, sources, obs));
            }
        }
        let start = Instant::now();
        let width = self.resolve_batch_width(sources.len());
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: "batched",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        let mut scratch = BatchScratch::new(self.n, width);
        let wants = obs.wants_levels();
        let threshold = self.dir.threshold();
        for block in sources.chunks(width) {
            let first = block[0];
            let run = {
                let mut on_level = |lr: LevelReport| {
                    if wants {
                        obs.event(TraceEvent::Level {
                            source: first,
                            depth: lr.depth,
                            frontier: lr.frontier,
                            sigma_updates: lr.frontier as u64,
                        });
                        obs.event(TraceEvent::Direction {
                            source: first,
                            depth: lr.depth,
                            direction: lr.direction.name(),
                            frontier_edges: lr.frontier_edges,
                            threshold,
                        });
                    }
                };
                bc_block_traced(
                    &self.storage,
                    self.kernel,
                    &self.dir,
                    block,
                    self.scale,
                    &mut bc,
                    &mut scratch,
                    None,
                    &mut on_level,
                )
            };
            // One matrix sweep advanced every lane of the block — this
            // is the amortization the engine exists for.
            stats.total_levels += run.sweeps as u64;
            obs.event(TraceEvent::Block {
                first_source: first,
                width: block.len(),
                sweeps: run.sweeps,
            });
            for (k, &s) in block.iter().enumerate() {
                stats.max_depth = stats.max_depth.max(run.heights[k]);
                stats.last_reached = run.reached[k];
                obs.event(TraceEvent::SourceDone {
                    source: s,
                    height: run.heights[k],
                    reached: run.reached[k],
                });
            }
        }
        // Deterministic σ/S surface: the last source's lane is still in
        // the scratch panels of the final block.
        if !sources.is_empty() {
            scratch.extract_lane(
                (sources.len() - 1) % scratch.width(),
                &mut sigma,
                &mut depths,
            );
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        Ok(BcResult {
            bc,
            sigma,
            depths,
            stats,
        })
    }

    /// Batched run through the reduction plan: the weighted fold/twin
    /// path for exact BC (block width auto-sized from the *reduced*
    /// `n`, `m`), the component split otherwise.
    fn run_prep_batched(
        &self,
        plan: &PrepPlan,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> BcResult {
        let start = Instant::now();
        self.emit_prep_event(plan, obs);
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: "batched",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        let all_sources = plan.full
            && sources.len() == self.n
            && sources.iter().enumerate().all(|(i, &s)| s as usize == i);
        if all_sources {
            for comp in &plan.comps {
                let rc = comp
                    .reduced
                    .as_ref()
                    .expect("full plan reduces every component");
                let (max_d, sweeps) = self.run_weighted_component_batched(rc, obs, &mut bc);
                stats.max_depth = stats.max_depth.max(max_d);
                stats.total_levels += sweeps;
            }
            for (v, &c) in plan.corrections.iter().enumerate() {
                if c != 0.0 {
                    bc[v] += c;
                }
            }
            // σ/S surface: a single-lane block of the last source on the
            // original storage (not counted in total_levels).
            let mut scratch_bc = vec![0.0f64; self.n];
            let mut scratch = BatchScratch::new(self.n, 1);
            let run = bc_block_traced(
                &self.storage,
                self.kernel,
                &self.dir,
                &[(self.n - 1) as VertexId],
                self.scale,
                &mut scratch_bc,
                &mut scratch,
                None,
                &mut |_| {},
            );
            scratch.extract_lane(0, &mut sigma, &mut depths);
            stats.last_reached = run.reached[0];
            stats.max_depth = stats.max_depth.max(run.heights[0]);
        } else {
            let grouped = group_sources(plan, sources);
            for (c, locals) in &grouped.groups {
                let comp = &plan.comps[*c];
                let r = {
                    let mut fwd = PrepForward {
                        inner: &mut *obs,
                        verts: &comp.verts,
                    };
                    let sub =
                        self.component_solver(comp.verts.len(), &comp.graph, self.options.engine);
                    sub.exec_bc_batched(locals, &mut fwd)
                        .expect("component-local sources are valid")
                };
                for (local, &orig) in comp.verts.iter().enumerate() {
                    bc[orig as usize] += r.bc[local];
                }
                stats.max_depth = stats.max_depth.max(r.stats.max_depth);
                stats.total_levels += r.stats.total_levels;
                if *c == grouped.last_comp {
                    for (local, &orig) in comp.verts.iter().enumerate() {
                        sigma[orig as usize] = r.sigma[local];
                        depths[orig as usize] = r.depths[local];
                    }
                    stats.last_reached = r.stats.last_reached;
                }
            }
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        BcResult {
            bc,
            sigma,
            depths,
            stats,
        }
    }

    /// All-sources weighted batched BC over one reduced component.
    /// Returns `(max height, matrix sweeps)`.
    fn run_weighted_component_batched(
        &self,
        rc: &ReducedComponent,
        obs: &mut dyn Observer,
        bc_out: &mut [f64],
    ) -> (u32, u64) {
        let rn = rc.graph.n();
        let kernel = match self.options.kernel {
            Kernel::Auto => select_kernel(&GraphStats::compute(&rc.graph)),
            k => k,
        };
        let storage = match kernel {
            Kernel::ScCooc => Storage::Cooc(rc.graph.to_cooc()),
            _ => Storage::Csc(rc.graph.to_csc()),
        };
        let dir = DirectionEngine::new(&rc.graph, self.options.execution.direction);
        let scale = rc.graph.bc_scale();
        let width = match self.options.execution.batch_width {
            BatchWidth::Fixed(b) => b.max(1),
            BatchWidth::Auto => footprint::auto_batch_width(
                rn,
                rc.graph.m(),
                kernel,
                self.options.device.global_mem_bytes,
            ),
        }
        .min(rn.max(1));
        let reps: Vec<VertexId> = rc.members.iter().map(|ms| ms[0]).collect();
        let srcs: Vec<VertexId> = (0..rn as VertexId).collect();
        let mut bc_c = vec![0.0f64; rn];
        let mut scratch = BatchScratch::new(rn, width);
        let wants = obs.wants_levels();
        let threshold = dir.threshold();
        let mut max_d = 0u32;
        let mut sweeps = 0u64;
        for block in srcs.chunks(width) {
            let first = reps[block[0] as usize];
            let run = {
                let mut on_level = |lr: LevelReport| {
                    if wants {
                        obs.event(TraceEvent::Level {
                            source: first,
                            depth: lr.depth,
                            frontier: lr.frontier,
                            sigma_updates: lr.frontier as u64,
                        });
                        obs.event(TraceEvent::Direction {
                            source: first,
                            depth: lr.depth,
                            direction: lr.direction.name(),
                            frontier_edges: lr.frontier_edges,
                            threshold,
                        });
                    }
                };
                bc_block_traced(
                    &storage,
                    kernel,
                    &dir,
                    block,
                    scale,
                    &mut bc_c,
                    &mut scratch,
                    Some(&rc.weights),
                    &mut on_level,
                )
            };
            sweeps += run.sweeps as u64;
            obs.event(TraceEvent::Block {
                first_source: first,
                width: block.len(),
                sweeps: run.sweeps,
            });
            for (k, &s) in block.iter().enumerate() {
                max_d = max_d.max(run.heights[k]);
                obs.event(TraceEvent::SourceDone {
                    source: reps[s as usize],
                    height: run.heights[k],
                    reached: run.reached[k],
                });
            }
        }
        for (r, members) in rc.members.iter().enumerate() {
            for &orig in members {
                bc_out[orig as usize] += bc_c[r];
            }
        }
        (max_d, sweeps)
    }

    /// Multi-source BC with periodic checkpoints and resume.
    ///
    /// Sources are processed in batches of `ckpt.every`; after each
    /// batch the accumulated `bc` and the completed-source count are
    /// atomically snapshotted to `ckpt.path`. A run restarted with
    /// [`CheckpointConfig::resume`] skips the completed prefix and
    /// produces **bit-identical** `bc` to an uninterrupted checkpointed
    /// run: batches are always summed source-by-source into a
    /// batch-local vector and folded into the accumulator in batch
    /// order, so the floating-point association never depends on where
    /// a kill happened.
    ///
    /// `stats.recovery.resumed_sources` records how many sources the
    /// checkpoint covered; `stats.max_depth`/`total_levels` cover only
    /// the work done by *this* process.
    ///
    /// The checkpoint configuration comes from the solver's options
    /// (`BcOptions::builder().checkpoint(..)`); calling this on a solver
    /// without one fails with [`CheckpointError::NotConfigured`].
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute_checkpointed`"
    )]
    pub fn bc_sources_checkpointed(&self, sources: &[VertexId]) -> Result<BcResult, TurboBcError> {
        let kind = ExecutorKind::from_engine(self.options.engine);
        let plan = self.plan_pinned(kind, sources)?;
        self.execute_checkpointed(&plan)
    }

    /// Runs a BC plan with periodic checkpoints and resume — any
    /// executor plan is checkpointable through this entry point (see the
    /// batch semantics on the struct-level checkpoint docs above).
    ///
    /// The checkpoint configuration comes from the solver's options;
    /// calling this on a solver without one fails with
    /// [`CheckpointError::NotConfigured`]. BFS plans are rejected with
    /// [`TurboBcError::InvalidPlan`] — only BC work accumulates a
    /// checkpointable `bc` vector.
    pub fn execute_checkpointed(&self, plan: &ExecutionPlan) -> Result<BcResult, TurboBcError> {
        let ckpt = self
            .options
            .checkpoint
            .as_ref()
            .ok_or(CheckpointError::NotConfigured)?;
        if plan.work != PlanWork::Bc {
            return Err(TurboBcError::InvalidPlan {
                detail: "only BC plans are checkpointable".to_string(),
            });
        }
        match &plan.strategy {
            PlanStrategy::Single(ExecutorKind::CpuSequential) => {
                self.checkpointed_cpu(ckpt, plan.sources(), Engine::Sequential)
            }
            PlanStrategy::Single(ExecutorKind::CpuParallel) => {
                self.checkpointed_cpu(ckpt, plan.sources(), Engine::Parallel)
            }
            _ => self.checkpointed_plan(ckpt, plan),
        }
    }

    /// The original per-source CPU checkpoint loop — byte-identical to
    /// the 0.2 `bc_sources_checkpointed` behaviour.
    fn checkpointed_cpu(
        &self,
        ckpt: &CheckpointConfig,
        sources: &[VertexId],
        engine: Engine,
    ) -> Result<BcResult, TurboBcError> {
        let start = Instant::now();
        let every = ckpt.every.max(1);
        let fp = checkpoint::fingerprint(self.n, self.m, self.symmetric, self.scale, sources);

        let mut bc = vec![0.0f64; self.n];
        let mut done = 0usize;
        if ckpt.resume {
            if let Some(snap) = checkpoint::load(&ckpt.path, fp, self.n)? {
                done = snap.done.min(sources.len());
                bc = snap.bc;
            }
        }
        let mut stats = RunStats {
            sources: sources.len(),
            recovery: RecoveryLog {
                resumed_sources: done,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut scratch = CpuScratch::for_engine(engine, self.n);
        let mut batches_done = 0u32;
        while done < sources.len() {
            let hi = (done + every).min(sources.len());
            let mut batch_bc = vec![0.0f64; self.n];
            for &s in &sources[done..hi] {
                let run = self.one_source(
                    s as usize,
                    engine,
                    &mut batch_bc,
                    &mut sigma,
                    &mut depths,
                    &mut scratch,
                    &mut |_| {},
                );
                stats.max_depth = stats.max_depth.max(run.height);
                stats.total_levels += run.height as u64;
            }
            for (acc, x) in bc.iter_mut().zip(&batch_bc) {
                *acc += x;
            }
            done = hi;
            checkpoint::save(&ckpt.path, fp, done, &bc)?;
            batches_done += 1;
            if let Some(kill) = ckpt.fail_after_batches {
                if batches_done >= kill {
                    return Err(CheckpointError::InjectedKill { batches_done }.into());
                }
            }
        }
        // σ/S surface the last source deterministically — also when the
        // checkpoint already covered every source.
        if let Some(&last) = sources.last() {
            let mut scratch_bc = vec![0.0f64; self.n];
            let run = self.one_source(
                last as usize,
                engine,
                &mut scratch_bc,
                &mut sigma,
                &mut depths,
                &mut scratch,
                &mut |_| {},
            );
            stats.last_reached = run.reached;
            stats.max_depth = stats.max_depth.max(run.height);
        }
        stats.elapsed = start.elapsed();
        Ok(BcResult {
            bc,
            sigma,
            depths,
            stats,
        })
    }

    /// The generic checkpoint loop: slices the plan's sources into
    /// batches of `ckpt.every` and runs each batch as a sub-plan of the
    /// same strategy, snapshotting the accumulated `bc` after each. The
    /// fold stays batch-ordered, so resume is bit-identical regardless
    /// of where a kill happened — the same guarantee as the CPU loop.
    fn checkpointed_plan(
        &self,
        ckpt: &CheckpointConfig,
        plan: &ExecutionPlan,
    ) -> Result<BcResult, TurboBcError> {
        let sources = plan.sources();
        let start = Instant::now();
        let every = ckpt.every.max(1);
        let fp = checkpoint::fingerprint(self.n, self.m, self.symmetric, self.scale, sources);
        let mut bc = vec![0.0f64; self.n];
        let mut done = 0usize;
        if ckpt.resume {
            if let Some(snap) = checkpoint::load(&ckpt.path, fp, self.n)? {
                done = snap.done.min(sources.len());
                bc = snap.bc;
            }
        }
        let mut stats = RunStats {
            sources: sources.len(),
            recovery: RecoveryLog {
                resumed_sources: done,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let owned_device = plan
            .needs_device()
            .then(|| Device::new(self.options.device));
        let mut batches_done = 0u32;
        let mut ran_batches = false;
        while done < sources.len() {
            let hi = (done + every).min(sources.len());
            let sub = self.subplan(plan, &sources[done..hi]);
            let r = self
                .execute_impl(owned_device.as_ref(), &sub, &mut NullObserver)?
                .into_bc()
                .expect("BC plans produce a BC result");
            for (acc, x) in bc.iter_mut().zip(&r.bc) {
                *acc += x;
            }
            // The sub-run surfaces its own last source's σ/S — on the
            // final batch that is the overall last source.
            sigma.copy_from_slice(&r.sigma);
            depths.copy_from_slice(&r.depths);
            stats.max_depth = stats.max_depth.max(r.stats.max_depth);
            stats.total_levels += r.stats.total_levels;
            stats.last_reached = r.stats.last_reached;
            stats.recovery.oom_degradations += r.stats.recovery.oom_degradations;
            stats.recovery.kernel_retries += r.stats.recovery.kernel_retries;
            stats.recovery.link_retries += r.stats.recovery.link_retries;
            stats.recovery.device_requeues += r.stats.recovery.device_requeues;
            stats.recovery.cpu_fallback |= r.stats.recovery.cpu_fallback;
            if r.stats.recovery.degraded_to.is_some() {
                stats.recovery.degraded_to = r.stats.recovery.degraded_to;
            }
            ran_batches = true;
            done = hi;
            checkpoint::save(&ckpt.path, fp, done, &bc)?;
            batches_done += 1;
            if let Some(kill) = ckpt.fail_after_batches {
                if batches_done >= kill {
                    return Err(CheckpointError::InjectedKill { batches_done }.into());
                }
            }
        }
        // When the checkpoint already covered every source, still
        // surface the last source's σ/S deterministically.
        if !ran_batches {
            if let Some(&last) = sources.last() {
                let sub = self.subplan(plan, &[last]);
                let r = self
                    .execute_impl(owned_device.as_ref(), &sub, &mut NullObserver)?
                    .into_bc()
                    .expect("BC plans produce a BC result");
                sigma.copy_from_slice(&r.sigma);
                depths.copy_from_slice(&r.depths);
                stats.last_reached = r.stats.last_reached;
                stats.max_depth = stats.max_depth.max(r.stats.max_depth);
            }
        }
        stats.elapsed = start.elapsed();
        Ok(BcResult {
            bc,
            sigma,
            depths,
            stats,
        })
    }

    /// A batch-sized slice of `plan`: same work and strategy over a
    /// source subrange (block-parallel widths clamp to the slice).
    fn subplan(&self, plan: &ExecutionPlan, sources: &[VertexId]) -> ExecutionPlan {
        let strategy = match &plan.strategy {
            PlanStrategy::BlockParallel { width } => PlanStrategy::BlockParallel {
                width: (*width).min(sources.len().max(1)),
            },
            s => s.clone(),
        };
        ExecutionPlan {
            work: plan.work,
            mode: plan.mode(),
            sources: sources.to_vec(),
            strategy,
            segments: vec![],
        }
    }

    /// Rebuilds the storage a degraded kernel needs. Degradation only
    /// steps *down* the ladder (veCSC → scCSC → scCOOC), so the only
    /// conversion is CSC → COOC.
    fn storage_for(&self, kernel: Kernel) -> Storage {
        match (kernel, &self.storage) {
            (Kernel::ScCooc, Storage::Csc(csc)) => {
                let nnz = csc.nnz();
                let mut rows = Vec::with_capacity(nnz);
                let mut cols = Vec::with_capacity(nnz);
                for j in 0..csc.n_cols() {
                    for k in csc.col_ptr()[j]..csc.col_ptr()[j + 1] {
                        rows.push(csc.row_idx()[k]);
                        cols.push(j as Index);
                    }
                }
                Storage::Cooc(
                    Cooc::from_entries(csc.n_rows(), csc.n_cols(), rows, cols)
                        .expect("CSC entries are in range"),
                )
            }
            (_, s) => s.clone(),
        }
    }

    /// Runs the same computation on the SIMT simulator, returning both
    /// the BC result and the device-level report (memory peak, per-kernel
    /// transactions, modelled time/GLT). The device is built from the
    /// solver's options (`BcOptions::builder().device(..)`, default
    /// Titan Xp); use [`BcSolver::run_simt_on`] to target a caller-built
    /// device (fault plans, capacity caps).
    ///
    /// The solver's [`RecoveryPolicy`] governs what happens when the
    /// device misbehaves:
    ///
    /// * transient kernel faults are retried in place with bounded
    ///   exponential backoff (`stats.recovery.kernel_retries`);
    /// * on [`DeviceError::OutOfMemory`] the run degrades veCSC → scCSC
    ///   → scCOOC (`stats.recovery.oom_degradations`, `degraded_to`) and
    ///   finally falls back to the CPU Parallel engine
    ///   (`stats.recovery.cpu_fallback`);
    /// * with [`RecoveryPolicy::strict`] every fault surfaces
    ///   immediately — the paper's *OOM* table entries.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute`"
    )]
    pub fn run_simt(&self, sources: &[VertexId]) -> Result<(BcResult, SimtReport), TurboBcError> {
        let plan = self.plan_pinned(ExecutorKind::Simt, sources)?;
        let ex = self.execute(&plan)?;
        Ok(unpack_simt(ex))
    }

    /// [`BcSolver::run_simt`] with the run traced into `obs`.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute_observed`"
    )]
    pub fn run_simt_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        let plan = self.plan_pinned(ExecutorKind::Simt, sources)?;
        let ex = self.execute_observed(&plan, obs)?;
        Ok(unpack_simt(ex))
    }

    /// [`BcSolver::run_simt`] on a caller-built device (fault plans,
    /// capacity caps, shared metric ledgers).
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute_on`"
    )]
    pub fn run_simt_on(
        &self,
        device: &Device,
        sources: &[VertexId],
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        let plan = self.plan_pinned(ExecutorKind::Simt, sources)?;
        let ex = self.execute_on(device, &plan)?;
        Ok(unpack_simt(ex))
    }

    /// [`BcSolver::run_simt_on`] with the run traced into `obs`: each
    /// attempt emits `RunStart`/`Level`/`SourceDone`/`Metrics`/`Memory`
    /// events, degradations and CPU fallback land as `Recovery` events,
    /// and the final `RunEnd` carries the wall-clock time.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan`/`plan_pinned` and run `execute_on_observed`"
    )]
    pub fn run_simt_on_observed(
        &self,
        device: &Device,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        let plan = self.plan_pinned(ExecutorKind::Simt, sources)?;
        let ex = self.execute_on_observed(device, &plan, obs)?;
        Ok(unpack_simt(ex))
    }

    /// The SIMT executor body: the device run with retry/degrade/fallback
    /// recovery. Sources are pre-validated at plan time.
    pub(crate) fn exec_bc_simt(
        &self,
        device: &Device,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        // SIMT routes through the component split only on an *explicit*
        // prep request: under `PrepMode::Auto` the device run stays
        // whole-graph so footprint planning matches the real run. The
        // fold/twin weighted stages are CPU/batched-only — a full plan
        // runs its component split here.
        if !matches!(self.options.prep, PrepMode::Auto) {
            if let Some(plan) = &self.prep {
                if !sources.is_empty() {
                    return self.run_prep_simt(plan, device, sources, obs);
                }
            }
        }
        let start = Instant::now();
        let policy = self.options.recovery;
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        let mut recovery = RecoveryLog::default();
        let mut kernel = self.kernel;
        let mut degraded_storage: Option<Storage> = None;
        // Explicit push ships the CSR to the device; Auto resolves to
        // pull there so the §3.4 footprint model keeps holding.
        let push_csr = match self.options.execution.direction {
            DirectionMode::PushOnly => self.dir.csr(),
            _ => None,
        };
        loop {
            let storage = degraded_storage.as_ref().unwrap_or(&self.storage);
            match bc_simt(
                device,
                storage,
                kernel,
                self.symmetric,
                sources,
                self.scale,
                &policy,
                self.options.execution.direction,
                push_csr,
                obs,
            ) {
                Ok(out) => {
                    recovery.kernel_retries += out.kernel_retries;
                    if out.kernel_retries > 0 {
                        obs.event(TraceEvent::Recovery {
                            kind: "kernel_retry",
                            detail: format!(
                                "{} transient kernel fault(s) retried in place",
                                out.kernel_retries
                            ),
                        });
                    }
                    let stats = RunStats {
                        sources: sources.len(),
                        max_depth: out.max_depth,
                        total_levels: out.total_levels,
                        last_reached: out.last_reached,
                        elapsed: start.elapsed(),
                        recovery,
                    };
                    obs.event(TraceEvent::RunEnd {
                        elapsed_s: stats.elapsed.as_secs_f64(),
                    });
                    return Ok((
                        BcResult {
                            bc: out.bc,
                            sigma: out.sigma,
                            depths: out.depths,
                            stats,
                        },
                        out.report,
                    ));
                }
                Err(TurboBcError::Device(DeviceError::OutOfMemory { .. }))
                    if policy.allow_degradation || policy.allow_cpu_fallback =>
                {
                    let next = if policy.allow_degradation {
                        degrade(kernel)
                    } else {
                        None
                    };
                    match next {
                        Some(next) => {
                            recovery.oom_degradations += 1;
                            recovery.degraded_to = Some(next.name());
                            obs.event(TraceEvent::Recovery {
                                kind: "oom_degradation",
                                detail: format!(
                                    "{} out of device memory, degrading to {}",
                                    kernel.name(),
                                    next.name()
                                ),
                            });
                            degraded_storage = Some(self.storage_for(next));
                            kernel = next;
                        }
                        None if policy.allow_cpu_fallback => {
                            recovery.cpu_fallback = true;
                            obs.event(TraceEvent::Recovery {
                                kind: "cpu_fallback",
                                detail: "degradation ladder exhausted, rerunning on the CPU \
                                         Parallel engine"
                                    .to_string(),
                            });
                            let mut result = self.run_cpu_observed(sources, Engine::Parallel, obs);
                            result.stats.recovery = recovery;
                            // The device never completed a run: report
                            // whatever it measured before giving up.
                            let report = SimtReport {
                                metrics: device.metrics(),
                                memory: device.memory(),
                                modelled_time_s: 0.0,
                                glt_gbs: 0.0,
                            };
                            return Ok((result, report));
                        }
                        None => {
                            return Err(TurboBcError::Device(DeviceError::OutOfMemory {
                                requested: 0,
                                free: 0,
                            }))
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// SIMT run through the component split: each component's sources
    /// run on its compacted sub-graph on the same device, recovery logs
    /// are merged, and the device's cumulative metric ledger is reported
    /// once at the end.
    fn run_prep_simt(
        &self,
        plan: &PrepPlan,
        device: &Device,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, SimtReport), TurboBcError> {
        let start = Instant::now();
        self.emit_prep_event(plan, obs);
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: "simt",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        let mut report = SimtReport {
            metrics: device.metrics(),
            memory: device.memory(),
            modelled_time_s: 0.0,
            glt_gbs: 0.0,
        };
        let mut glt_time_weighted = 0.0f64;
        let grouped = group_sources(plan, sources);
        for (c, locals) in &grouped.groups {
            let comp = &plan.comps[*c];
            let (r, sub_report) = {
                let mut fwd = PrepForward {
                    inner: &mut *obs,
                    verts: &comp.verts,
                };
                let sub = self.component_solver(comp.verts.len(), &comp.graph, self.options.engine);
                sub.exec_bc_simt(device, locals, &mut fwd)?
            };
            for (local, &orig) in comp.verts.iter().enumerate() {
                bc[orig as usize] += r.bc[local];
            }
            stats.max_depth = stats.max_depth.max(r.stats.max_depth);
            stats.total_levels += r.stats.total_levels;
            merge_recovery(&mut stats.recovery, &r.stats.recovery);
            glt_time_weighted += sub_report.glt_gbs * sub_report.modelled_time_s;
            report.modelled_time_s += sub_report.modelled_time_s;
            report.memory = sub_report.memory;
            if *c == grouped.last_comp {
                for (local, &orig) in comp.verts.iter().enumerate() {
                    sigma[orig as usize] = r.sigma[local];
                    depths[orig as usize] = r.depths[local];
                }
                stats.last_reached = r.stats.last_reached;
            }
        }
        // Cumulative device ledger across every component run.
        report.metrics = device.metrics();
        if report.modelled_time_s > 0.0 {
            report.glt_gbs = glt_time_weighted / report.modelled_time_s;
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        Ok((
            BcResult {
                bc,
                sigma,
                depths,
                stats,
            },
            report,
        ))
    }

    /// Approximate BC by uniform source sampling (Brandes–Pich style):
    /// `k = sample_size(n, epsilon, delta)` sources drawn with
    /// replacement, contributions scaled by `n / k`. Returns the sampled
    /// estimate plus the sampling parameters used.
    pub fn approx(
        &self,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Result<ApproxBcResult, TurboBcError> {
        bc_approx_with_solver(self, epsilon, delta, seed)
    }

    /// Edge betweenness centrality over all sources (Girvan–Newman's
    /// edge score; an extension beyond the paper used by the examples).
    pub fn edge_bc(&self) -> Result<EdgeBcResult, TurboBcError> {
        let sources: Vec<VertexId> = (0..self.n as VertexId).collect();
        self.edge_bc_sources(&sources)
    }

    /// Edge BC accumulated over an explicit source set.
    pub fn edge_bc_sources(&self, sources: &[VertexId]) -> Result<EdgeBcResult, TurboBcError> {
        self.validate_sources(sources)?;
        edge_bc_with_solver(self, sources)
    }

    /// Harmonic and classic closeness centrality for every vertex,
    /// computed by multi-source BFS sweeps over this solver's graph.
    pub fn closeness(&self) -> Result<ClosenessResult, TurboBcError> {
        closeness_with_solver(self, None)
    }

    /// Closeness restricted to an explicit source set (landmark
    /// approximation).
    pub fn closeness_for_sources(
        &self,
        sources: &[VertexId],
    ) -> Result<ClosenessResult, TurboBcError> {
        self.validate_sources(sources)?;
        closeness_with_solver(self, Some(sources))
    }

    /// Multi-source BFS: all `sources` swept concurrently in 64-source
    /// batches over one bit-parallel frontier (the MS-BFS extension).
    /// Returns per-source depth vectors and sweep statistics.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan_ms_bfs` and run `execute`"
    )]
    pub fn ms_bfs(&self, sources: &[VertexId]) -> Result<MsBfsResult, TurboBcError> {
        let plan = self.plan_ms_bfs(sources)?;
        Ok(self
            .execute(&plan)?
            .into_ms_bfs()
            .expect("BFS plans produce a BFS result"))
    }

    /// [`BcSolver::ms_bfs`] with per-sweep trace events into `obs`.
    #[deprecated(
        since = "0.3.0",
        note = "build a plan with `plan_ms_bfs` and run `execute_observed`"
    )]
    pub fn ms_bfs_observed(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<MsBfsResult, TurboBcError> {
        let plan = self.plan_ms_bfs(sources)?;
        Ok(self
            .execute_observed(&plan, obs)?
            .into_ms_bfs()
            .expect("BFS plans produce a BFS result"))
    }

    /// The TurboBFS executor body: one [`TurboBfs`] traversal per
    /// source, assembled into the MS-BFS result shape.
    pub(crate) fn exec_ms_bfs_turbobfs(
        &self,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<MsBfsResult, TurboBcError> {
        let start = Instant::now();
        obs.event(TraceEvent::RunStart {
            engine: "turbobfs",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let bfs = TurboBfs::new(self.graph(), self.options.clone());
        let mut depths = Vec::with_capacity(sources.len());
        let mut heights = Vec::with_capacity(sources.len());
        let mut sweeps = 0usize;
        for &s in sources {
            let run = bfs.run(s);
            sweeps += run.height as usize;
            obs.event(TraceEvent::SourceDone {
                source: s,
                height: run.height,
                reached: run.reached,
            });
            depths.push(run.depths);
            heights.push(run.height);
        }
        let elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: elapsed.as_secs_f64(),
        });
        Ok(MsBfsResult {
            depths,
            heights,
            sweeps,
            elapsed,
        })
    }

    /// The CPU executor body (Sequential or Parallel engine), with
    /// reduction routing. Sources are pre-validated at plan time.
    pub(crate) fn exec_bc_cpu(
        &self,
        sources: &[VertexId],
        engine: Engine,
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        if let Some(plan) = &self.prep {
            if !sources.is_empty() {
                return Ok(self.run_prep_cpu(plan, sources, engine, obs));
            }
        }
        Ok(self.run_cpu_observed(sources, engine, obs))
    }

    /// The hybrid executor body: each source's traversal is scheduled
    /// level-by-level between the host and the device by the cost model
    /// — shallow ramp-up and sparse tail levels on the CPU, the dense
    /// middle on the device, with frontier/σ state handed off across the
    /// boundary ([`crate::dispatch::hybrid`]). The device takes part
    /// only when one is supplied *and* the `7n + m` hybrid segment
    /// footprint fits its global memory; otherwise every level runs on
    /// the host and the decision trail says why not.
    pub(crate) fn exec_bc_hybrid(
        &self,
        device: Option<&Device>,
        sources: &[VertexId],
        obs: &mut dyn Observer,
    ) -> Result<(BcResult, Option<SimtReport>), TurboBcError> {
        let start = Instant::now();
        let admitted = device.filter(|_| {
            footprint::hybrid_segment_bytes(self.n, self.m, self.kernel)
                <= self.options.device.global_mem_bytes
        });
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: "hybrid",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let ctx = hybrid::HybridCtx {
            storage: &self.storage,
            dir: &self.dir,
            kernel: self.kernel,
            policy: &self.options.recovery,
            device: admitted,
            cost: &self.options.execution.cost,
        };
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        let mut scratch = SeqScratch::new(self.n);
        let mut retries = 0u64;
        let wants = obs.wants_levels();
        let threshold = self.dir.threshold();
        let mut reports: Vec<LevelReport> = Vec::new();
        for &s in sources {
            reports.clear();
            let run = hybrid::bc_source_hybrid(
                &ctx,
                s as usize,
                self.scale,
                &mut bc,
                &mut sigma,
                &mut depths,
                &mut scratch,
                &mut retries,
                obs,
                // `obs` is already borrowed by the call: buffer the level
                // reports and emit them right after the source returns.
                &mut |lr| {
                    if wants {
                        reports.push(lr);
                    }
                },
            )?;
            for lr in reports.drain(..) {
                obs.event(TraceEvent::Level {
                    source: s,
                    depth: lr.depth,
                    frontier: lr.frontier,
                    sigma_updates: lr.frontier as u64,
                });
                obs.event(TraceEvent::Direction {
                    source: s,
                    depth: lr.depth,
                    direction: lr.direction.name(),
                    frontier_edges: lr.frontier_edges,
                    threshold,
                });
            }
            stats.max_depth = stats.max_depth.max(run.height);
            stats.total_levels += run.height as u64;
            stats.last_reached = run.reached;
            obs.event(TraceEvent::SourceDone {
                source: s,
                height: run.height,
                reached: run.reached,
            });
        }
        stats.recovery.kernel_retries = retries;
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        let report = admitted.map(|d| SimtReport {
            metrics: d.metrics(),
            memory: d.memory(),
            modelled_time_s: 0.0,
            glt_gbs: 0.0,
        });
        Ok((
            BcResult {
                bc,
                sigma,
                depths,
                stats,
            },
            report,
        ))
    }

    /// The block-parallel executor body: sources are split into
    /// width-`width` blocks, each block runs the bit-sliced batched
    /// panels, and the blocks run in parallel across host threads. All
    /// trace events are emitted after the parallel section in block
    /// order, so the trace is deterministic; per-level events are folded
    /// into the per-block [`TraceEvent::Block`] sweep counts.
    pub(crate) fn exec_block_parallel(
        &self,
        sources: &[VertexId],
        width: usize,
        obs: &mut dyn Observer,
    ) -> Result<BcResult, TurboBcError> {
        let start = Instant::now();
        let width = width.max(1);
        obs.event(TraceEvent::KernelChoice {
            kernel: self.kernel,
            scf: self.stats.scf,
            mean_degree: self.stats.degree.mean,
            direction: self.options.execution.direction.name(),
        });
        obs.event(TraceEvent::RunStart {
            engine: "block-par",
            kernel: self.kernel,
            n: self.n,
            m: self.m,
            sources: sources.len(),
        });
        let ranges = block_ranges(sources.len(), width);
        for &(first, len) in &ranges {
            obs.event(TraceEvent::Dispatch {
                granularity: "block",
                executor: "batched",
                source: sources[first],
                depth: 0,
                frontier: len,
                reason: format!("block {}..{} on width-{width} panels", first, first + len),
            });
        }
        struct BlockOut {
            bc: Vec<f64>,
            sigma: Vec<i64>,
            depths: Vec<u32>,
            sweeps: u32,
            heights: Vec<u32>,
            reached: Vec<usize>,
        }
        let run_block = |&(first, len): &(usize, usize)| -> BlockOut {
            let block = &sources[first..first + len];
            let mut bc = vec![0.0f64; self.n];
            let mut sigma = vec![0i64; self.n];
            let mut depths = vec![0u32; self.n];
            let mut scratch = BatchScratch::new(self.n, block.len());
            let run = bc_block_traced(
                &self.storage,
                self.kernel,
                &self.dir,
                block,
                self.scale,
                &mut bc,
                &mut scratch,
                None,
                &mut |_| {},
            );
            scratch.extract_lane(block.len() - 1, &mut sigma, &mut depths);
            BlockOut {
                bc,
                sigma,
                depths,
                sweeps: run.sweeps,
                heights: run.heights,
                reached: run.reached,
            }
        };
        let outs: Vec<BlockOut> = {
            use rayon::prelude::*;
            ranges.par_iter().map(run_block).collect()
        };
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats {
            sources: sources.len(),
            ..Default::default()
        };
        for (&(first, len), out) in ranges.iter().zip(&outs) {
            for (acc, x) in bc.iter_mut().zip(&out.bc) {
                *acc += x;
            }
            stats.total_levels += out.sweeps as u64;
            obs.event(TraceEvent::Block {
                first_source: sources[first],
                width: len,
                sweeps: out.sweeps,
            });
            for k in 0..len {
                stats.max_depth = stats.max_depth.max(out.heights[k]);
                stats.last_reached = out.reached[k];
                obs.event(TraceEvent::SourceDone {
                    source: sources[first + k],
                    height: out.heights[k],
                    reached: out.reached[k],
                });
            }
        }
        if let Some(last) = outs.last() {
            sigma.copy_from_slice(&last.sigma);
            depths.copy_from_slice(&last.depths);
        }
        stats.elapsed = start.elapsed();
        obs.event(TraceEvent::RunEnd {
            elapsed_s: stats.elapsed.as_secs_f64(),
        });
        Ok(BcResult {
            bc,
            sigma,
            depths,
            stats,
        })
    }
}

/// Splits a SIMT execution into the legacy `(BcResult, SimtReport)`
/// pair the deprecated entry points return.
fn unpack_simt(ex: Execution) -> (BcResult, SimtReport) {
    let report = ex
        .simt
        .clone()
        .expect("SIMT plans always carry a device report");
    let bc = ex.into_bc().expect("BC plans produce a BC result");
    (bc, report)
}

#[cfg(test)]
mod tests {
    // The 0.2 entry points stay covered by these tests until removal.
    #![allow(deprecated)]

    use super::*;
    use turbobc_baselines::{brandes_all_sources, brandes_single_source};
    use turbobc_graph::gen;

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < tol, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn quickstart_path_graph() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_exact().unwrap();
        assert_close(&r.bc, &[0.0, 3.0, 4.0, 3.0, 0.0], 1e-12);
        assert_eq!(r.stats.sources, 5);
        assert_eq!(r.stats.max_depth, 5);
        assert!(r.stats.recovery.is_clean());
    }

    #[test]
    fn every_engine_and_kernel_matches_oracle() {
        let graphs = [gen::gnm(60, 180, true, 1), gen::gnm(60, 180, false, 2)];
        for g in &graphs {
            let s = g.default_source();
            let want = brandes_single_source(g, s);
            for engine in [Engine::Sequential, Engine::Parallel] {
                for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
                    let solver = BcSolver::new(
                        g,
                        BcOptions {
                            kernel,
                            engine,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    let r = solver.bc_single_source(s).unwrap();
                    assert_close(&r.bc, &want, 1e-9);
                }
            }
        }
    }

    #[test]
    fn exact_bc_matches_oracle_all_engines() {
        let g = gen::small_world(80, 3, 0.3, 9);
        let want = brandes_all_sources(&g);
        for engine in [Engine::Sequential, Engine::Parallel] {
            let solver = BcSolver::new(
                &g,
                BcOptions {
                    kernel: Kernel::Auto,
                    engine,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_close(&solver.bc_exact().unwrap().bc, &want, 1e-6);
        }
    }

    #[test]
    fn auto_kernel_resolution_is_exposed() {
        let dense = gen::mycielski(9);
        assert_eq!(
            BcSolver::new(&dense, BcOptions::default())
                .unwrap()
                .kernel(),
            Kernel::VeCsc
        );
        let mesh = gen::grid2d(10, 10);
        assert_eq!(
            BcSolver::new(&mesh, BcOptions::default()).unwrap().kernel(),
            Kernel::ScCsc
        );
    }

    #[test]
    fn sampled_bc_uses_k_sources() {
        let g = gen::gnm(100, 400, false, 5);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_sampled(25).unwrap();
        assert_eq!(r.stats.sources, 25);
        // Sampled BC approximates the full ordering: top-exact vertex
        // should rank highly in the sample.
        let exact = brandes_all_sources(&g);
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let mut order: Vec<usize> = (0..g.n()).collect();
        order.sort_by(|&a, &b| r.bc[b].total_cmp(&r.bc[a]));
        let rank = order.iter().position(|&v| v == top_exact).unwrap();
        assert!(rank < g.n() / 4, "top vertex ranked {rank}");
    }

    #[test]
    fn simt_run_agrees_with_cpu_run() {
        let g = gen::delaunay(120, 4);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let s = g.default_source();
        let cpu = solver.bc_single_source(s).unwrap();
        let (gpu, report) = solver.run_simt(&[s]).unwrap();
        assert_close(&gpu.bc, &cpu.bc, 1e-9);
        assert_eq!(gpu.stats.max_depth, cpu.stats.max_depth);
        assert!(report.memory.peak > 0);
        assert!(gpu.stats.recovery.is_clean());
    }

    #[test]
    fn run_stats_depth_matches_bfs() {
        let g = gen::road_network(6, 6, 5, 3);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let s = g.default_source();
        let r = solver.bc_single_source(s).unwrap();
        let bfs = turbobc_graph::bfs(&g, s);
        assert_eq!(r.stats.max_depth, bfs.height);
        assert_eq!(r.stats.last_reached, bfs.reached);
        assert_eq!(r.depths, bfs.depths);
    }

    #[test]
    fn source_parallel_exact_matches_oracle() {
        // 80 sources crosses the across-sources parallel threshold.
        let g = gen::gnm(80, 260, false, 12);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_exact().unwrap();
        let want = brandes_all_sources(&g);
        assert_close(&r.bc, &want, 1e-7);
        // σ/S surface the last source deterministically.
        let last = (g.n() - 1) as u32;
        let bfs = turbobc_graph::bfs(&g, last);
        assert_eq!(r.depths, bfs.depths);
        assert_eq!(r.stats.last_reached, bfs.reached);
    }

    #[test]
    fn empty_graph_is_rejected_at_construction() {
        let g = Graph::from_edges(0, true, &[]);
        match BcSolver::new(&g, BcOptions::default()) {
            Err(TurboBcError::EmptyGraph) => {}
            other => panic!("want EmptyGraph, got {:?}", other.err()),
        }
    }

    #[test]
    fn out_of_range_source_is_rejected() {
        let g = Graph::from_edges(4, false, &[(0, 1), (1, 2), (2, 3)]);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        match solver.bc_single_source(4) {
            Err(TurboBcError::InvalidSource { source: 4, n: 4 }) => {}
            other => panic!("want InvalidSource, got {:?}", other.err()),
        }
        match solver.bc_sources(&[0, 99]) {
            Err(TurboBcError::InvalidSource { source: 99, .. }) => {}
            other => panic!("want InvalidSource, got {:?}", other.err()),
        }
        assert!(matches!(
            solver.run_simt(&[7]),
            Err(TurboBcError::InvalidSource { source: 7, .. })
        ));
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let g = gen::gnm(60, 200, false, 31);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let dir = std::env::temp_dir().join("turbobc_solver_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.ckpt");
        let _ = std::fs::remove_file(&path);
        let options = BcOptions::builder()
            .checkpoint(crate::checkpoint::CheckpointConfig::new(&path, 7))
            .build();
        let solver = BcSolver::new(&g, options).unwrap();
        let ck = solver.bc_sources_checkpointed(&sources).unwrap();
        let plain = solver.bc_sources(&sources).unwrap();
        assert_close(&ck.bc, &plain.bc, 1e-9);
        assert_eq!(ck.depths, plain.depths);
        assert_eq!(ck.sigma, plain.sigma);
    }

    #[test]
    fn batched_matches_per_source_and_reports_blocks() {
        let g = gen::gnm(90, 320, false, 21);
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let solver = BcSolver::new(&g, BcOptions::builder().batch_width(64).build()).unwrap();
        let want = solver.bc_sources(&sources).unwrap();
        let mut obs = crate::observe::ProfileObserver::new();
        let got = solver.bc_batched_observed(&sources, &mut obs).unwrap();
        assert_close(&got.bc, &want.bc, 1e-9);
        assert_eq!(got.sigma, want.sigma, "last-source σ surface matches");
        assert_eq!(got.depths, want.depths);
        assert_eq!(got.stats.last_reached, want.stats.last_reached);
        assert_eq!(got.stats.max_depth, want.stats.max_depth);
        let p = obs.profile();
        assert_eq!(p.engine, "batched");
        assert_eq!(p.blocks.len(), 90usize.div_ceil(64));
        assert_eq!(p.source_runs.len(), 90);
        // The point of the engine: 90 sources advanced in far fewer
        // matrix sweeps than the sum of their BFS heights.
        let sweeps: u64 = p.blocks.iter().map(|b| u64::from(b.sweeps)).sum();
        assert_eq!(sweeps, got.stats.total_levels);
        assert!(
            sweeps < want.stats.total_levels / 4,
            "sweeps {sweeps} vs per-source levels {}",
            want.stats.total_levels
        );
    }

    #[test]
    fn batched_width_resolution() {
        let g = gen::gnm(200, 800, false, 7);
        // Auto on the default (Titan Xp-sized) device takes 64 lanes,
        // clamped to the source count.
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        assert_eq!(solver.resolve_batch_width(200), 64);
        assert_eq!(solver.resolve_batch_width(10), 10);
        assert_eq!(solver.resolve_batch_width(0), 1);
        // Fixed is taken verbatim (floored at 1), still clamped.
        let solver = BcSolver::new(&g, BcOptions::builder().batch_width(17).build()).unwrap();
        assert_eq!(solver.resolve_batch_width(200), 17);
        let solver = BcSolver::new(&g, BcOptions::builder().batch_width(0).build()).unwrap();
        assert_eq!(solver.resolve_batch_width(200), 1);
    }

    #[test]
    fn batched_rejects_bad_sources_and_handles_empty() {
        let g = gen::gnm(30, 90, true, 3);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        assert!(matches!(
            solver.bc_batched(&[0, 30]),
            Err(TurboBcError::InvalidSource { source: 30, .. })
        ));
        let r = solver.bc_batched(&[]).unwrap();
        assert!(r.bc.iter().all(|&x| x == 0.0));
        assert_eq!(r.stats.sources, 0);
    }

    #[test]
    fn checkpoint_without_config_is_rejected() {
        let g = Graph::from_edges(3, false, &[(0, 1), (1, 2)]);
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        assert!(matches!(
            solver.bc_sources_checkpointed(&[0]),
            Err(TurboBcError::Checkpoint(CheckpointError::NotConfigured))
        ));
    }

    /// A G(n, m) core with a pendant 3-chain hung off every third core
    /// vertex and a twin pair glued to `{0, 1, 2}` — exercises folding,
    /// twin compression, and the weighted reconstruction together.
    fn tree_heavy_fixture() -> Graph {
        let core = gen::gnm(30, 90, false, 17);
        let mut edges: Vec<(u32, u32)> = core.edges().collect();
        let mut next = 30u32;
        for v in (0u32..30).step_by(3) {
            edges.push((v, next));
            edges.push((next, next + 1));
            edges.push((next + 1, next + 2));
            next += 3;
        }
        for t in [next, next + 1] {
            for u in [0u32, 1, 2] {
                edges.push((t, u));
            }
        }
        Graph::from_edges((next + 2) as usize, false, &edges)
    }

    /// Union of two G(n, m) graphs with no edges between them.
    fn two_component_fixture() -> Graph {
        let a = gen::gnm(40, 120, false, 3);
        let mut edges: Vec<(u32, u32)> = a.edges().collect();
        let b = gen::gnm(30, 80, false, 4);
        edges.extend(b.edges().map(|(u, v)| (u + 40, v + 40)));
        Graph::from_edges(70, false, &edges)
    }

    #[test]
    fn prep_full_matches_off_on_tree_heavy_graph() {
        let g = tree_heavy_fixture();
        let want = brandes_all_sources(&g);
        for prep in [
            PrepMode::Off,
            PrepMode::Auto,
            PrepMode::ComponentsOnly,
            PrepMode::Full,
        ] {
            for engine in [Engine::Sequential, Engine::Parallel] {
                let solver =
                    BcSolver::new(&g, BcOptions::builder().prep(prep).engine(engine).build())
                        .unwrap();
                let r = solver.bc_exact().unwrap();
                assert_close(&r.bc, &want, 1e-6);
            }
        }
    }

    #[test]
    fn prep_components_split_matches_plain_run() {
        // The split must be exact and surface the last source's σ/S
        // exactly like the legacy path does.
        let g = two_component_fixture();
        let off = BcSolver::new(&g, BcOptions::builder().prep(PrepMode::Off).build()).unwrap();
        let want = off.bc_exact().unwrap();
        for engine in [Engine::Sequential, Engine::Parallel] {
            let solver = BcSolver::new(
                &g,
                BcOptions::builder()
                    .prep(PrepMode::ComponentsOnly)
                    .engine(engine)
                    .build(),
            )
            .unwrap();
            let r = solver.bc_exact().unwrap();
            assert_close(&r.bc, &want.bc, 1e-9);
            assert_eq!(r.sigma, want.sigma);
            assert_eq!(r.depths, want.depths);
            assert_eq!(r.stats.last_reached, want.stats.last_reached);
        }
    }

    #[test]
    fn prep_full_subset_sources_fall_back_exactly() {
        // Non-identity source sets route through the components grouping
        // even under a full plan: σ/S conventions stay bit-identical.
        let g = tree_heavy_fixture();
        let srcs: Vec<u32> = vec![0, 5, 17, 33, 40];
        let off = BcSolver::new(&g, BcOptions::builder().prep(PrepMode::Off).build()).unwrap();
        let want = off.bc_sources(&srcs).unwrap();
        let solver = BcSolver::new(&g, BcOptions::builder().prep(PrepMode::Full).build()).unwrap();
        let r = solver.bc_sources(&srcs).unwrap();
        assert_close(&r.bc, &want.bc, 1e-9);
        assert_eq!(r.sigma, want.sigma);
        assert_eq!(r.depths, want.depths);
    }

    #[test]
    fn prep_report_and_profile_event() {
        let g = tree_heavy_fixture();
        let solver = BcSolver::new(&g, BcOptions::builder().prep(PrepMode::Full).build()).unwrap();
        let report = solver.prep_report().expect("full plan");
        assert_eq!(report.mode, "full");
        // Ten pendant 3-chains fold, plus whatever degree-1 vertices the
        // gnm core happens to carry.
        assert!(report.folded_vertices >= 30);
        assert!(report.twin_members_removed >= 1, "the glued twin pair");
        assert!(report.reduction_ratio() > 0.0);
        let mut obs = crate::observe::ProfileObserver::new();
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        solver.bc_sources_observed(&sources, &mut obs).unwrap();
        let p = obs.profile();
        let prep = p.prep.as_ref().expect("prep trace in the profile");
        assert_eq!(prep.mode, "full");
        assert_eq!(prep.components, report.components);
        assert_eq!(prep.component_kernels.len(), report.components);
        assert_eq!(prep.folded, report.folded_vertices);
        p.to_json_string(); // serialises without panicking
    }

    #[test]
    fn prep_batched_full_matches_plain_batched() {
        let g = tree_heavy_fixture();
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let off = BcSolver::new(
            &g,
            BcOptions::builder()
                .prep(PrepMode::Off)
                .batch_width(16)
                .build(),
        )
        .unwrap();
        let want = off.bc_batched(&sources).unwrap();
        let solver = BcSolver::new(
            &g,
            BcOptions::builder()
                .prep(PrepMode::Full)
                .batch_width(16)
                .build(),
        )
        .unwrap();
        let r = solver.bc_batched(&sources).unwrap();
        assert_close(&r.bc, &want.bc, 1e-6);
        assert_eq!(r.depths, want.depths);
        assert_eq!(r.stats.last_reached, want.stats.last_reached);
    }

    #[test]
    fn prep_batched_components_split_matches_plain_batched() {
        let g = two_component_fixture();
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let off = BcSolver::new(
            &g,
            BcOptions::builder()
                .prep(PrepMode::Off)
                .batch_width(32)
                .build(),
        )
        .unwrap();
        let want = off.bc_batched(&sources).unwrap();
        let solver = BcSolver::new(
            &g,
            BcOptions::builder()
                .prep(PrepMode::ComponentsOnly)
                .batch_width(32)
                .build(),
        )
        .unwrap();
        let r = solver.bc_batched(&sources).unwrap();
        assert_close(&r.bc, &want.bc, 1e-9);
        assert_eq!(r.sigma, want.sigma);
        assert_eq!(r.depths, want.depths);
    }

    #[test]
    fn prep_simt_explicit_components_matches_cpu() {
        let g = two_component_fixture();
        let opts = BcOptions::builder().prep(PrepMode::ComponentsOnly).build();
        let solver = BcSolver::new(&g, opts).unwrap();
        let cpu = solver.bc_exact().unwrap();
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let (gpu, report) = solver.run_simt(&sources).unwrap();
        assert_close(&gpu.bc, &cpu.bc, 1e-9);
        assert_eq!(gpu.depths, cpu.depths);
        assert!(report.memory.peak > 0);
        assert!(gpu.stats.recovery.is_clean());
    }
}

//! The public solver: ties storage, kernel selection and engines
//! together.

use crate::options::{select_kernel, BcOptions, Engine, Kernel};
use crate::par::{bc_source_par, ParStorage};
use crate::result::{BcResult, RunStats, SimtReport};
use crate::seq::{bc_source_seq, Storage};
use crate::simt_engine::bc_simt;
use std::time::Instant;
use turbobc_graph::{Graph, GraphStats, VertexId};
use turbobc_simt::{Device, DeviceError};

/// Source count at which the Parallel engine additionally parallelises
/// *across* sources (each task owns its scratch vectors, contributions
/// are summed) — the scalable path for exact BC.
const SOURCE_PAR_THRESHOLD: usize = 16;

/// A prepared BC computation over one graph.
///
/// Construction resolves the kernel (running the paper's §3.1 selection
/// for [`Kernel::Auto`]) and materialises **exactly one** sparse storage
/// format — COOC for `scCOOC`, CSC for `scCSC`/`veCSC` — per the paper's
/// memory rule.
pub struct BcSolver {
    storage: Storage,
    kernel: Kernel,
    engine: Engine,
    symmetric: bool,
    scale: f64,
    n: usize,
    m: usize,
    stats: GraphStats,
}

impl BcSolver {
    /// Prepares a solver for `graph` with the given options.
    pub fn new(graph: &Graph, options: BcOptions) -> Self {
        let stats = GraphStats::compute(graph);
        let kernel = match options.kernel {
            Kernel::Auto => select_kernel(&stats),
            k => k,
        };
        let storage = match kernel {
            Kernel::ScCooc => Storage::Cooc(graph.to_cooc()),
            _ => Storage::Csc(graph.to_csc()),
        };
        BcSolver {
            storage,
            kernel,
            engine: options.engine,
            // Undirected graphs are stored as their symmetric closure.
            symmetric: !graph.directed(),
            scale: graph.bc_scale(),
            n: graph.n(),
            m: graph.m(),
            stats,
        }
    }

    /// The kernel this solver resolved to.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The engine this solver runs on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored arc count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Graph statistics computed at construction (degree profile, scf).
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    /// BC contribution of a single source (the paper's "BC/vertex"
    /// experiments, Tables 1–4).
    pub fn bc_single_source(&self, source: VertexId) -> BcResult {
        self.bc_sources(&[source])
    }

    /// Exact BC: all `n` sources (Table 5).
    pub fn bc_exact(&self) -> BcResult {
        let sources: Vec<VertexId> = (0..self.n as VertexId).collect();
        self.bc_sources(&sources)
    }

    /// Approximate BC from `k` evenly-spaced pivot sources (Brandes &
    /// Pich-style sampling; an extension beyond the paper used by the
    /// examples).
    pub fn bc_sampled(&self, k: usize) -> BcResult {
        let k = k.clamp(1, self.n.max(1));
        let stride = (self.n / k).max(1);
        let sources: Vec<VertexId> =
            (0..self.n).step_by(stride).take(k).map(|s| s as VertexId).collect();
        self.bc_sources(&sources)
    }

    /// BC accumulated over an explicit source set.
    pub fn bc_sources(&self, sources: &[VertexId]) -> BcResult {
        let start = Instant::now();
        let mut bc = vec![0.0f64; self.n];
        let mut sigma = vec![0i64; self.n];
        let mut depths = vec![0u32; self.n];
        let mut stats = RunStats { sources: sources.len(), ..Default::default() };
        match self.engine {
            Engine::Sequential => {
                for &s in sources {
                    let run = bc_source_seq(
                        &self.storage,
                        s as usize,
                        self.scale,
                        &mut bc,
                        &mut sigma,
                        &mut depths,
                    );
                    stats.max_depth = stats.max_depth.max(run.height);
                    stats.total_levels += run.height as u64;
                    stats.last_reached = run.reached;
                }
            }
            Engine::Parallel if sources.len() >= SOURCE_PAR_THRESHOLD => {
                // Exact/sampled runs: parallelise across sources too —
                // each task owns its scratch, contributions are summed.
                use rayon::prelude::*;
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc { csc, symmetric: self.symmetric },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                let n = self.n;
                let chunk = sources.len().div_ceil(rayon::current_num_threads().max(1));
                let (sum_bc, max_depth, total_levels) = sources
                    .par_chunks(chunk.max(1))
                    .map(|batch| {
                        let mut local_bc = vec![0.0f64; n];
                        let mut local_sigma = vec![0i64; n];
                        let mut local_depths = vec![0u32; n];
                        let mut max_d = 0u32;
                        let mut levels = 0u64;
                        for &s in batch {
                            let run = bc_source_par(
                                &storage,
                                s as usize,
                                self.scale,
                                &mut local_bc,
                                &mut local_sigma,
                                &mut local_depths,
                            );
                            max_d = max_d.max(run.height);
                            levels += run.height as u64;
                        }
                        (local_bc, max_d, levels)
                    })
                    .reduce(
                        || (vec![0.0f64; n], 0u32, 0u64),
                        |(mut a, da, la), (b, db, lb)| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            (a, da.max(db), la + lb)
                        },
                    );
                bc = sum_bc;
                stats.max_depth = max_depth;
                stats.total_levels = total_levels;
                // Deterministic σ/S surface: rerun the last source once
                // into the output buffers (without re-accumulating bc).
                if let Some(&last) = sources.last() {
                    let mut scratch_bc = vec![0.0f64; n];
                    let run = bc_source_par(
                        &storage,
                        last as usize,
                        self.scale,
                        &mut scratch_bc,
                        &mut sigma,
                        &mut depths,
                    );
                    stats.last_reached = run.reached;
                }
            }
            Engine::Parallel => {
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc { csc, symmetric: self.symmetric },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                for &s in sources {
                    let run = bc_source_par(
                        &storage,
                        s as usize,
                        self.scale,
                        &mut bc,
                        &mut sigma,
                        &mut depths,
                    );
                    stats.max_depth = stats.max_depth.max(run.height);
                    stats.total_levels += run.height as u64;
                    stats.last_reached = run.reached;
                }
            }
        }
        stats.elapsed = start.elapsed();
        BcResult { bc, sigma, depths, stats }
    }

    /// Runs the same computation on the SIMT simulator, returning both
    /// the BC result and the device-level report (memory peak, per-kernel
    /// transactions, modelled time/GLT). Fails with
    /// [`DeviceError::OutOfMemory`] when the working set does not fit the
    /// device — the paper's *OOM* entries.
    pub fn run_simt(
        &self,
        device: &Device,
        sources: &[VertexId],
    ) -> Result<(BcResult, SimtReport), DeviceError> {
        let start = Instant::now();
        let out = bc_simt(device, &self.storage, self.kernel, self.symmetric, sources, self.scale)?;
        let stats = RunStats {
            sources: sources.len(),
            max_depth: out.max_depth,
            total_levels: out.total_levels,
            last_reached: out.last_reached,
            elapsed: start.elapsed(),
        };
        Ok((
            BcResult { bc: out.bc, sigma: out.sigma, depths: out.depths, stats },
            out.report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::{brandes_all_sources, brandes_single_source};
    use turbobc_graph::gen;

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < tol, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn quickstart_path_graph() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let solver = BcSolver::new(&g, BcOptions::default());
        let r = solver.bc_exact();
        assert_close(&r.bc, &[0.0, 3.0, 4.0, 3.0, 0.0], 1e-12);
        assert_eq!(r.stats.sources, 5);
        assert_eq!(r.stats.max_depth, 5);
    }

    #[test]
    fn every_engine_and_kernel_matches_oracle() {
        let graphs = [gen::gnm(60, 180, true, 1), gen::gnm(60, 180, false, 2)];
        for g in &graphs {
            let s = g.default_source();
            let want = brandes_single_source(g, s);
            for engine in [Engine::Sequential, Engine::Parallel] {
                for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
                    let solver = BcSolver::new(g, BcOptions { kernel, engine });
                    let r = solver.bc_single_source(s);
                    assert_close(&r.bc, &want, 1e-9);
                }
            }
        }
    }

    #[test]
    fn exact_bc_matches_oracle_all_engines() {
        let g = gen::small_world(80, 3, 0.3, 9);
        let want = brandes_all_sources(&g);
        for engine in [Engine::Sequential, Engine::Parallel] {
            let solver = BcSolver::new(&g, BcOptions { kernel: Kernel::Auto, engine });
            assert_close(&solver.bc_exact().bc, &want, 1e-6);
        }
    }

    #[test]
    fn auto_kernel_resolution_is_exposed() {
        let dense = gen::mycielski(9);
        assert_eq!(BcSolver::new(&dense, BcOptions::default()).kernel(), Kernel::VeCsc);
        let mesh = gen::grid2d(10, 10);
        assert_eq!(BcSolver::new(&mesh, BcOptions::default()).kernel(), Kernel::ScCsc);
    }

    #[test]
    fn sampled_bc_uses_k_sources() {
        let g = gen::gnm(100, 400, false, 5);
        let solver = BcSolver::new(&g, BcOptions::default());
        let r = solver.bc_sampled(10);
        assert_eq!(r.stats.sources, 10);
        // Sampled BC approximates the full ordering: top-exact vertex
        // should rank highly in the sample.
        let exact = brandes_all_sources(&g);
        let top_exact =
            exact.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let mut order: Vec<usize> = (0..g.n()).collect();
        order.sort_by(|&a, &b| r.bc[b].total_cmp(&r.bc[a]));
        let rank = order.iter().position(|&v| v == top_exact).unwrap();
        assert!(rank < g.n() / 4, "top vertex ranked {rank}");
    }

    #[test]
    fn simt_run_agrees_with_cpu_run() {
        let g = gen::delaunay(120, 4);
        let solver = BcSolver::new(&g, BcOptions::default());
        let s = g.default_source();
        let cpu = solver.bc_single_source(s);
        let dev = Device::titan_xp();
        let (gpu, report) = solver.run_simt(&dev, &[s]).unwrap();
        assert_close(&gpu.bc, &cpu.bc, 1e-9);
        assert_eq!(gpu.stats.max_depth, cpu.stats.max_depth);
        assert!(report.memory.peak > 0);
    }

    #[test]
    fn run_stats_depth_matches_bfs() {
        let g = gen::road_network(6, 6, 5, 3);
        let solver = BcSolver::new(&g, BcOptions::default());
        let s = g.default_source();
        let r = solver.bc_single_source(s);
        let bfs = turbobc_graph::bfs(&g, s);
        assert_eq!(r.stats.max_depth, bfs.height);
        assert_eq!(r.stats.last_reached, bfs.reached);
        assert_eq!(r.depths, bfs.depths);
    }

    #[test]
    fn source_parallel_exact_matches_oracle() {
        // 80 sources crosses the across-sources parallel threshold.
        let g = gen::gnm(80, 260, false, 12);
        let solver = BcSolver::new(&g, BcOptions::default());
        let r = solver.bc_exact();
        let want = brandes_all_sources(&g);
        assert_close(&r.bc, &want, 1e-7);
        // σ/S surface the last source deterministically.
        let last = (g.n() - 1) as u32;
        let bfs = turbobc_graph::bfs(&g, last);
        assert_eq!(r.depths, bfs.depths);
        assert_eq!(r.stats.last_reached, bfs.reached);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, true, &[]);
        let solver = BcSolver::new(&g, BcOptions::default());
        let r = solver.bc_sources(&[]);
        assert!(r.bc.is_empty());
    }
}

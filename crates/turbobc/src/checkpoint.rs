//! Checkpoint/resume for long multi-source exact-BC runs.
//!
//! A checkpointed run processes its sources in fixed batches and, after
//! each batch, durably snapshots the accumulated `bc` vector plus the
//! number of completed sources. A killed run restarted with
//! [`CheckpointConfig::resume`] skips the completed prefix and produces
//! **bit-identical** output to an uninterrupted run, because batches are
//! always accumulated in the same order with the same per-batch
//! summation (see `BcSolver::bc_sources_checkpointed`).
//!
//! The file format is a small fixed-endian binary record:
//!
//! ```text
//! magic    u64  "TBCKPT01" (little-endian bytes)
//! fingerprint u64  FNV-1a over (n, m, symmetric, scale bits, sources)
//! n        u64  vertex count
//! done     u64  completed sources (a prefix of the source list)
//! bc[n]    u64  f64 bit patterns (bit-exact round trip)
//! ```
//!
//! Saves are atomic: the record is written to `<path>.tmp` and renamed
//! over `path`, so a kill mid-write never leaves a torn checkpoint.

use crate::error::CheckpointError;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File magic: `TBCKPT01` as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"TBCKPT01");

/// Configuration for a checkpointed multi-source run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Where the checkpoint file lives.
    pub path: PathBuf,
    /// Snapshot every `every` completed sources (also the batch size of
    /// the deterministic accumulation). Clamped to at least 1.
    pub every: usize,
    /// Resume from `path` if it holds a matching checkpoint; without
    /// this flag an existing file is overwritten.
    pub resume: bool,
    /// Test-harness kill switch: abort the run (with
    /// [`CheckpointError::InjectedKill`]) after this many batches have
    /// been durably checkpointed. `None` in production.
    pub fail_after_batches: Option<u32>,
}

impl CheckpointConfig {
    /// A fresh (non-resuming) checkpoint at `path`, snapshotting every
    /// `every` sources.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointConfig {
            path: path.into(),
            every,
            resume: false,
            fail_after_batches: None,
        }
    }

    /// Enables resuming from an existing checkpoint file.
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Arms the injected kill switch (testing only).
    pub fn fail_after_batches(mut self, batches: u32) -> Self {
        self.fail_after_batches = Some(batches);
        self
    }
}

/// FNV-1a fingerprint binding a checkpoint to one (graph, source-set)
/// run: vertex/arc counts, directedness, the BC scale factor's exact
/// bits, and the full source list in order.
pub fn fingerprint(n: usize, m: usize, symmetric: bool, scale: f64, sources: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(n as u64);
    eat(m as u64);
    eat(symmetric as u64);
    eat(scale.to_bits());
    eat(sources.len() as u64);
    for &s in sources {
        eat(s as u64);
    }
    h
}

/// A loaded snapshot: how many sources of the run's source list are
/// complete, and the `bc` accumulated over exactly that prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Completed-source count (prefix of the source list).
    pub done: usize,
    /// Accumulated BC over the completed prefix.
    pub bc: Vec<f64>,
}

/// Atomically writes a snapshot to `path` (`path.tmp` + rename).
pub fn save(path: &Path, fp: u64, done: usize, bc: &[f64]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
    {
        let mut f = fs::File::create(&tmp).map_err(io)?;
        let mut buf = Vec::with_capacity(32 + 8 * bc.len());
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&fp.to_le_bytes());
        buf.extend_from_slice(&(bc.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(done as u64).to_le_bytes());
        for &x in bc {
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        f.write_all(&buf).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    fs::rename(&tmp, path).map_err(io)
}

/// Loads and validates a snapshot. `Ok(None)` when no file exists yet
/// (a fresh resume); errors on corruption or a fingerprint/size
/// mismatch with the run being resumed.
pub fn load(path: &Path, fp: u64, n: usize) -> Result<Option<Snapshot>, CheckpointError> {
    let mut f = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(e.to_string())),
    };
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)
        .map_err(|e| CheckpointError::Io(e.to_string()))?;
    if buf.len() < 32 {
        return Err(CheckpointError::Corrupt(format!(
            "{} bytes, header needs 32",
            buf.len()
        )));
    }
    let word = |i: usize| u64::from_le_bytes(buf[8 * i..8 * i + 8].try_into().unwrap());
    if word(0) != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let found = word(1);
    if found != fp {
        return Err(CheckpointError::Mismatch {
            found,
            expected: fp,
        });
    }
    let len = word(2) as usize;
    let done = word(3) as usize;
    if len != n {
        return Err(CheckpointError::Corrupt(format!(
            "bc length {len}, graph has {n} vertices"
        )));
    }
    if buf.len() != 32 + 8 * len {
        return Err(CheckpointError::Corrupt(format!(
            "{} bytes, expected {}",
            buf.len(),
            32 + 8 * len
        )));
    }
    let bc = (0..len).map(|i| f64::from_bits(word(4 + i))).collect();
    Ok(Some(Snapshot { done, bc }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("turbobc_ckpt_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_bit_exact() {
        let path = temp("rt.ckpt");
        let bc = vec![0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, -0.0];
        let fp = fingerprint(5, 8, true, 0.5, &[0, 1, 2]);
        save(&path, fp, 3, &bc).unwrap();
        let snap = load(&path, fp, 5).unwrap().unwrap();
        assert_eq!(snap.done, 3);
        assert_eq!(snap.bc.len(), bc.len());
        for (a, b) in snap.bc.iter().zip(&bc) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
        }
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = temp("nope.ckpt");
        let _ = fs::remove_file(&path);
        assert_eq!(load(&path, 1, 4).unwrap(), None);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let path = temp("fp.ckpt");
        save(&path, 111, 1, &[0.0; 4]).unwrap();
        match load(&path, 222, 4) {
            Err(CheckpointError::Mismatch {
                found: 111,
                expected: 222,
            }) => {}
            other => panic!("want Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_files_are_corrupt_not_panics() {
        let path = temp("bad.ckpt");
        fs::write(&path, b"short").unwrap();
        assert!(matches!(
            load(&path, 0, 4),
            Err(CheckpointError::Corrupt(_))
        ));
        fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(
            load(&path, 0, 4),
            Err(CheckpointError::Corrupt(_))
        ));
        // Right magic + fingerprint but a torn body.
        let fp = 7u64;
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&fp.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        fs::write(&path, &buf).unwrap();
        assert!(matches!(
            load(&path, fp, 4),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn fingerprint_distinguishes_runs() {
        let a = fingerprint(10, 20, true, 0.5, &[0, 1]);
        assert_ne!(
            a,
            fingerprint(10, 20, true, 0.5, &[1, 0]),
            "source order matters"
        );
        assert_ne!(a, fingerprint(10, 20, false, 0.5, &[0, 1]));
        assert_ne!(a, fingerprint(11, 20, true, 0.5, &[0, 1]));
        assert_ne!(a, fingerprint(10, 20, true, 1.0, &[0, 1]));
    }
}

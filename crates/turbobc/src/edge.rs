//! Edge betweenness centrality — an extension beyond the paper's vertex
//! BC, in the same linear-algebraic frame.
//!
//! Brandes' backward recurrence already computes, for every
//! shortest-path-DAG edge `u → w` (with `depth(w) = depth(u) + 1`), the
//! per-edge dependency `σ_u · (1 + δ_w) / σ_w` — Algorithm 1's SpMV sums
//! these into `δ_ut(u)`. Keeping the addends *per edge* instead of
//! summing them yields Girvan–Newman edge betweenness for free: the COOC
//! format is ideal because every stored arc has a slot `k` to accumulate
//! into. Cost and memory match the vertex algorithm plus one `m`-length
//! output vector.

use crate::error::TurboBcError;
use crate::result::RunStats;
use crate::solver::BcSolver;
use std::time::Instant;
use turbobc_graph::{Graph, VertexId};
use turbobc_sparse::ops;

/// Edge-betweenness output.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBcResult {
    /// The stored arcs, in the graph's arc order (same order as
    /// `Graph::edges()`).
    pub arcs: Vec<(VertexId, VertexId)>,
    /// Betweenness per stored arc. For undirected graphs the classic
    /// edge betweenness of `{u, v}` is the sum of its two arc entries.
    pub ebc: Vec<f64>,
    /// Run statistics.
    pub stats: RunStats,
}

impl EdgeBcResult {
    /// The `k` arcs with the highest betweenness, descending — the
    /// Girvan–Newman community-detection cut candidates.
    pub fn top_arcs(&self, k: usize) -> Vec<((VertexId, VertexId), f64)> {
        let mut order: Vec<usize> = (0..self.ebc.len()).collect();
        order.sort_by(|&a, &b| self.ebc[b].total_cmp(&self.ebc[a]));
        order
            .into_iter()
            .take(k)
            .map(|i| (self.arcs[i], self.ebc[i]))
            .collect()
    }
}

/// Computes exact edge betweenness over all sources (sequential
/// COOC-format engine).
#[deprecated(since = "0.2.0", note = "use `BcSolver::edge_bc` instead")]
pub fn edge_bc(graph: &Graph) -> EdgeBcResult {
    let sources: Vec<VertexId> = (0..graph.n() as VertexId).collect();
    edge_bc_on_graph(graph, &sources)
}

/// Edge betweenness accumulated over an explicit source set.
#[deprecated(since = "0.2.0", note = "use `BcSolver::edge_bc_sources` instead")]
pub fn edge_bc_sources(graph: &Graph, sources: &[VertexId]) -> EdgeBcResult {
    edge_bc_on_graph(graph, sources)
}

/// What [`BcSolver::edge_bc_sources`] runs (sources already validated).
pub(crate) fn edge_bc_with_solver(
    solver: &BcSolver,
    sources: &[VertexId],
) -> Result<EdgeBcResult, TurboBcError> {
    Ok(edge_bc_on_graph(solver.graph(), sources))
}

/// The edge-BC engine proper: always COOC storage, because every stored
/// arc needs a slot to accumulate into.
fn edge_bc_on_graph(graph: &Graph, sources: &[VertexId]) -> EdgeBcResult {
    let start = Instant::now();
    let cooc = graph.to_cooc();
    let arcs: Vec<(VertexId, VertexId)> = cooc.iter().collect();
    let n = graph.n();
    let scale = graph.bc_scale();
    let mut ebc = vec![0.0f64; arcs.len()];
    let mut stats = RunStats {
        sources: sources.len(),
        ..Default::default()
    };

    let mut sigma = vec![0i64; n];
    let mut depths = vec![0u32; n];
    let mut f = vec![0i64; n];
    let mut f_t = vec![0i64; n];
    let mut delta = vec![0.0f64; n];
    let mut delta_u = vec![0.0f64; n];

    for &source in sources {
        if n == 0 {
            break;
        }
        sigma.fill(0);
        depths.fill(0);
        f.fill(0);
        // Forward stage (Algorithm 1 lines 11–28, COOC storage).
        f[source as usize] = 1;
        sigma[source as usize] = 1;
        depths[source as usize] = 1;
        let mut d = 1u32;
        let mut reached = 1usize;
        loop {
            f_t.fill(0);
            cooc.spmv_t(&f, &mut f_t);
            let count = ops::mask_new_frontier(&f_t, &sigma, &mut f);
            if count == 0 {
                break;
            }
            d += 1;
            ops::update_sigma_depth(&f, d, &mut depths, &mut sigma);
            reached += count;
        }
        let height = d;
        stats.max_depth = stats.max_depth.max(height);
        stats.total_levels += height as u64;
        stats.last_reached = reached;

        // Backward stage with per-edge accumulation: the SpMV's addends
        // are the edge dependencies.
        delta.fill(0.0);
        let mut depth = height;
        while depth > 1 {
            ops::seed_delta_u(&depths, &sigma, &delta, depth, &mut delta_u);
            for (k, &(r, c)) in arcs.iter().enumerate() {
                // DAG edge r → c with c one level deeper.
                if depths[c as usize] == depth && depths[r as usize] == depth - 1 {
                    let contribution = sigma[r as usize] as f64 * delta_u[c as usize];
                    if contribution != 0.0 {
                        ebc[k] += contribution * scale;
                        delta[r as usize] += contribution;
                    }
                }
            }
            depth -= 1;
        }
    }
    stats.elapsed = start.elapsed();
    EdgeBcResult { arcs, ebc, stats }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the shims so downstream callers stay covered
    use super::*;
    use turbobc_baselines::brandes::brandes_edge_bc;
    use turbobc_graph::gen;

    /// The oracle reports per-arc values in `Graph::edges()` order, which
    /// is the COOC order — align and compare.
    fn assert_matches_oracle(graph: &Graph) {
        let got = edge_bc(graph);
        let want = brandes_edge_bc(graph);
        let want_arcs: Vec<(u32, u32)> = graph.edges().collect();
        assert_eq!(got.arcs, want_arcs, "arc order must match");
        for (k, (g, w)) in got.ebc.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "arc {:?}: {g} vs {w}", got.arcs[k]);
        }
    }

    #[test]
    fn path_graph_edge_bc() {
        // Undirected P4: 0-1-2-3. Edge {1,2} carries pairs
        // {0,1}×{2,3} = 4 crossings.
        let g = Graph::from_edges(4, false, &[(0, 1), (1, 2), (2, 3)]);
        let r = edge_bc(&g);
        let total: f64 = r
            .arcs
            .iter()
            .zip(&r.ebc)
            .filter(|((u, v), _)| (*u, *v) == (1, 2) || (*u, *v) == (2, 1))
            .map(|(_, &x)| x)
            .sum();
        assert!(
            (total - 4.0).abs() < 1e-9,
            "middle edge carries 4, got {total}"
        );
        assert_matches_oracle(&g);
    }

    #[test]
    fn star_spokes_carry_equal_load() {
        let g = gen::star(6);
        let r = edge_bc(&g);
        // Every spoke {0, v} carries: its own endpoint pair + 4 pairs
        // through the hub = 1 + 4 = 5.
        for ((u, v), &x) in r.arcs.iter().zip(&r.ebc) {
            let undirected = if *u == 0 {
                x + r.ebc[r.arcs.iter().position(|a| a == &(*v, *u)).unwrap()]
            } else {
                continue;
            };
            assert!(
                (undirected - 5.0).abs() < 1e-9,
                "spoke {u}-{v}: {undirected}"
            );
        }
        assert_matches_oracle(&g);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for (seed, directed) in [(1u64, true), (2, false), (3, true), (4, false)] {
            let g = gen::gnm(30, 90, directed, seed);
            assert_matches_oracle(&g);
        }
    }

    #[test]
    fn disconnected_and_empty() {
        let g = Graph::from_edges(5, false, &[(0, 1), (2, 3)]);
        assert_matches_oracle(&g);
        let e = Graph::from_edges(0, true, &[]);
        assert!(edge_bc(&e).ebc.is_empty());
    }

    #[test]
    fn top_arcs_finds_the_bridge() {
        // Two triangles joined by a bridge (2, 3): the classic
        // Girvan-Newman cut.
        let g = Graph::from_edges(
            6,
            false,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        );
        let r = edge_bc(&g);
        let top = r.top_arcs(2);
        for ((u, v), _) in top {
            assert!(
                (u, v) == (2, 3) || (u, v) == (3, 2),
                "bridge must rank first, got {u}-{v}"
            );
        }
        assert_matches_oracle(&g);
    }

    #[test]
    fn vertex_bc_is_recoverable_from_edge_bc() {
        // δ_s(v) = Σ_{(v,w)} edge-dependency, so BC(v) equals the sum of
        // its outgoing arc betweenness minus terminal-pair credit; for a
        // sanity check use the identity Σ_arcs ebc = Σ_pairs (path length
        // − 1) aggregated — here just verify totals are positive and
        // finite on a generated graph.
        let g = gen::small_world(60, 2, 0.2, 5);
        let r = edge_bc(&g);
        assert!(r.ebc.iter().all(|x| x.is_finite() && *x >= -1e-9));
        assert!(r.ebc.iter().sum::<f64>() > 0.0);
    }
}

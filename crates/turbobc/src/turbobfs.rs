//! **TurboBFS** — the authors' companion system (Artiles & Saeed,
//! IPDPSW '21, the paper's reference [1]): GPU BFS in the language of
//! linear algebra. TurboBC's forward stage *is* TurboBFS with
//! shortest-path counting bolted on; this module exposes the BFS by
//! itself, over the same three kernels and engines.
//!
//! The output is the depth vector `S` (source depth 1, unreached 0 — the
//! paper's convention), the shortest-path counts `σ` its masked SpMV
//! accumulates for free, and the BFS-tree height `d`.

use crate::error::TurboBcError;
use crate::frontier::{DirectionEngine, DirectionMode, LevelDirection};
use crate::options::{select_kernel, BcOptions, Engine, Kernel, RecoveryPolicy};
use crate::par::{bc_source_par, ParStorage};
use crate::result::SimtReport;
use crate::seq::Storage;
use crate::simt_engine::bc_simt;
use std::time::{Duration, Instant};
use turbobc_graph::{Graph, GraphStats, VertexId};
use turbobc_simt::Device;

/// Result of a linear-algebraic BFS.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsRun {
    /// Discovery depth per vertex (source 1, unreached 0).
    pub depths: Vec<u32>,
    /// Shortest-path counts from the source (saturating at `i64::MAX`).
    pub sigma: Vec<i64>,
    /// BFS-tree height `d`.
    pub height: u32,
    /// Vertices reached, including the source.
    pub reached: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl BfsRun {
    /// Frontier size per level (index 0 = the source level) — the
    /// expansion curve GPU BFS papers plot.
    pub fn frontier_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.height as usize];
        for &d in &self.depths {
            if d > 0 {
                sizes[(d - 1) as usize] += 1;
            }
        }
        sizes
    }
}

/// A prepared linear-algebraic BFS over one graph (one storage format,
/// per the TurboBFS memory rule).
///
/// ```
/// use turbobc::{BcOptions, TurboBfs};
/// use turbobc_graph::Graph;
///
/// let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let bfs = TurboBfs::new(&g, BcOptions::default());
/// let run = bfs.run(0);
/// assert_eq!(run.depths, vec![1, 2, 2, 3]);
/// assert_eq!(run.sigma[3], 2, "two shortest paths reach vertex 3");
/// ```
pub struct TurboBfs {
    storage: Storage,
    kernel: Kernel,
    engine: Engine,
    recovery: RecoveryPolicy,
    dir: DirectionEngine,
    symmetric: bool,
    n: usize,
}

impl TurboBfs {
    /// Prepares the solver; `Kernel::Auto` resolves per §3.1 and the
    /// forward direction (push/pull/auto) comes from
    /// `options.direction`.
    pub fn new(graph: &Graph, options: BcOptions) -> Self {
        let kernel = match options.kernel {
            Kernel::Auto => select_kernel(&GraphStats::compute(graph)),
            k => k,
        };
        let storage = match kernel {
            Kernel::ScCooc => Storage::Cooc(graph.to_cooc()),
            _ => Storage::Csc(graph.to_csc()),
        };
        TurboBfs {
            storage,
            kernel,
            engine: options.engine,
            recovery: options.recovery,
            dir: DirectionEngine::new(graph, options.execution.direction),
            symmetric: !graph.directed(),
            n: graph.n(),
        }
    }

    /// The resolved kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Runs the BFS from `source`.
    ///
    /// Implementation note: the Sequential engine runs a dedicated
    /// forward-only loop; the Parallel engine reuses the shared BC
    /// pipeline with a zero BC scale (its backward sweep contributes
    /// nothing and costs one extra pass — the price of one verified
    /// code path; kept in sync by the equivalence tests).
    pub fn run(&self, source: VertexId) -> BfsRun {
        let start = Instant::now();
        let n = self.n;
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        if n == 0 {
            return BfsRun {
                depths,
                sigma,
                height: 0,
                reached: 0,
                elapsed: start.elapsed(),
            };
        }
        // The forward stage is the part of Algorithm 1 the BC engines
        // share; run it via the engine with a throwaway bc vector of
        // zero scale (the backward stage contributes nothing at scale 0
        // but still costs sweeps, so for the Sequential engine we inline
        // the forward loop directly).
        let (height, reached) = match self.engine {
            Engine::Sequential => forward_only_seq(
                &self.storage,
                &self.dir,
                source as usize,
                &mut sigma,
                &mut depths,
            ),
            Engine::Parallel => {
                let storage = match &self.storage {
                    Storage::Csc(csc) => ParStorage::Csc {
                        csc,
                        symmetric: self.symmetric,
                    },
                    Storage::Cooc(cooc) => ParStorage::Cooc(cooc),
                };
                let mut bc = vec![0.0; n];
                let run = bc_source_par(
                    &storage,
                    &self.dir,
                    source as usize,
                    0.0,
                    &mut bc,
                    &mut sigma,
                    &mut depths,
                    &mut crate::par::ParScratch::new(n),
                    None,
                );
                (run.height, run.reached)
            }
        };
        BfsRun {
            depths,
            sigma,
            height,
            reached,
            elapsed: start.elapsed(),
        }
    }

    /// Runs the BFS on the SIMT simulator, returning the device report.
    pub fn run_simt(
        &self,
        device: &Device,
        source: VertexId,
    ) -> Result<(BfsRun, SimtReport), TurboBcError> {
        let start = Instant::now();
        let push_csr = match self.dir.mode() {
            DirectionMode::PushOnly => self.dir.csr(),
            _ => None,
        };
        let out = bc_simt(
            device,
            &self.storage,
            self.kernel,
            self.symmetric,
            &[source],
            0.0,
            &self.recovery,
            self.dir.mode(),
            push_csr,
            &mut crate::observe::NullObserver,
        )?;
        Ok((
            BfsRun {
                depths: out.depths,
                sigma: out.sigma,
                height: out.max_depth,
                reached: out.last_reached,
                elapsed: start.elapsed(),
            },
            out.report,
        ))
    }
}

/// Sequential forward stage only (Algorithm 1 lines 5–29), with the
/// per-level push/pull decision made by `dir` — the same loop shape as
/// `bc_source_seq_traced`, minus the backward sweep.
fn forward_only_seq(
    storage: &Storage,
    dir: &DirectionEngine,
    source: usize,
    sigma: &mut [i64],
    depths: &mut [u32],
) -> (u32, usize) {
    let n = sigma.len();
    sigma.fill(0);
    depths.fill(0);
    let mut f = vec![0i64; n];
    let mut f_t = vec![0i64; n];
    f[source] = 1;
    sigma[source] = 1;
    depths[source] = 1;
    let mut d = 1u32;
    let mut reached = 1usize;
    let mut frontier_list: Vec<u32> = Vec::new();
    let mut have_list = dir.needs_sparse();
    if have_list {
        frontier_list.push(source as u32);
    }
    let mut frontier_len = 1usize;
    loop {
        let frontier_edges = if have_list {
            dir.frontier_edges(&frontier_list)
        } else {
            0
        };
        f_t.fill(0);
        match dir.choose(frontier_len, frontier_edges, have_list) {
            LevelDirection::Push => dir.push_seq(&frontier_list, &f, &mut f_t),
            LevelDirection::Pull => match storage {
                Storage::Csc(c) => c.masked_spmv_t(&f, |j| sigma[j] == 0, &mut f_t),
                Storage::Cooc(c) => c.spmv_t(&f, &mut f_t),
            },
        }
        let count = turbobc_sparse::ops::mask_new_frontier(&f_t, sigma, &mut f);
        if count == 0 {
            break;
        }
        d += 1;
        turbobc_sparse::ops::update_sigma_depth(&f, d, depths, sigma);
        reached += count;
        have_list = dir.needs_sparse()
            && (matches!(dir.mode(), DirectionMode::PushOnly) || count <= dir.threshold());
        if have_list {
            frontier_list.clear();
            frontier_list.extend(
                f.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, _)| i as u32),
            );
        }
        frontier_len = count;
    }
    (d, reached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_graph::gen;

    #[test]
    fn matches_reference_bfs_on_every_kernel_and_engine() {
        for (seed, directed) in [(3u64, false), (4, true)] {
            let g = gen::gnm(90, 300, directed, seed);
            let s = g.default_source();
            let want = turbobc_graph::bfs(&g, s);
            for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
                for engine in [Engine::Sequential, Engine::Parallel] {
                    for direction in [
                        DirectionMode::Auto,
                        DirectionMode::PushOnly,
                        DirectionMode::PullOnly,
                    ] {
                        let bfs = TurboBfs::new(
                            &g,
                            BcOptions::builder()
                                .kernel(kernel)
                                .engine(engine)
                                .direction(direction)
                                .build(),
                        );
                        let r = bfs.run(s);
                        assert_eq!(r.depths, want.depths, "{kernel:?}/{engine:?}/{direction:?}");
                        assert_eq!(r.height, want.height);
                        assert_eq!(r.reached, want.reached);
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_counts_shortest_paths() {
        // Diamond 0→{1,2}→3: two shortest paths to 3.
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let bfs = TurboBfs::new(&g, BcOptions::default());
        let r = bfs.run(0);
        assert_eq!(r.sigma, vec![1, 1, 1, 2]);
    }

    #[test]
    fn simt_bfs_matches_and_reports() {
        let g = gen::delaunay(200, 6);
        let s = g.default_source();
        let bfs = TurboBfs::new(&g, BcOptions::default());
        let dev = Device::titan_xp();
        let (r, report) = bfs.run_simt(&dev, s).unwrap();
        let want = turbobc_graph::bfs(&g, s);
        assert_eq!(r.depths, want.depths);
        assert!(report.metrics.kernel("bfs_update").is_some());
        assert!(report.modelled_time_s > 0.0);
    }

    #[test]
    fn frontier_curve_sums_to_reached() {
        let g = gen::small_world(300, 3, 0.1, 2);
        let bfs = TurboBfs::new(&g, BcOptions::default());
        let r = bfs.run(g.default_source());
        let sizes = r.frontier_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), r.reached);
        assert_eq!(sizes[0], 1, "the source is alone at level 1");
        assert_eq!(sizes.len(), r.height as usize);
    }

    #[test]
    fn auto_kernel_resolves() {
        let g = gen::mycielski(8);
        let bfs = TurboBfs::new(&g, BcOptions::default());
        assert_eq!(bfs.kernel(), Kernel::VeCsc);
    }
}

//! The unified error type for every fallible TurboBC entry point.
//!
//! Device faults ([`DeviceError`]), interconnect faults ([`LinkError`]),
//! input-validation failures and checkpoint problems all surface as one
//! [`TurboBcError`], so callers match a single enum instead of chasing
//! panics through the engine layers.

use std::fmt;
use turbobc_simt::{DeviceError, LinkError};

/// Everything that can go wrong in a BC run.
#[derive(Debug, Clone, PartialEq)]
pub enum TurboBcError {
    /// A simulated device failed (OOM, injected kernel fault, device
    /// lost) and the recovery policy could not absorb it.
    Device(DeviceError),
    /// An interconnect exchange failed (dropped or corrupted transfer)
    /// beyond the retry budget.
    Link(LinkError),
    /// The graph has no vertices; BC over nothing is a caller bug, not
    /// an all-zero answer.
    EmptyGraph,
    /// A requested source vertex does not exist.
    InvalidSource {
        /// The offending source id.
        source: u32,
        /// Vertex count of the graph.
        n: usize,
    },
    /// The resolved kernel does not match the materialised storage
    /// format (an internal invariant; surfaced instead of panicking).
    StorageMismatch {
        /// Display name of the kernel that was requested.
        kernel: &'static str,
    },
    /// The operation only supports undirected graphs.
    DirectedUnsupported {
        /// Which operation rejected the graph.
        what: &'static str,
    },
    /// A multi-GPU run was asked for zero devices.
    NoDevices,
    /// Every device in a multi-GPU run was lost; there is nowhere left
    /// to requeue the failed partitions.
    AllDevicesLost,
    /// A checkpoint file could not be written, read, or trusted.
    Checkpoint(CheckpointError),
    /// An [`crate::dispatch::ExecutionPlan`] asks for something the
    /// target executor cannot do (e.g. BC on the dependency-free
    /// TurboBFS executor).
    InvalidPlan {
        /// What the plan asked for and why it was rejected.
        detail: String,
    },
}

/// Why a checkpoint save or resume failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem failure (message carries the underlying `io::Error`).
    Io(String),
    /// The file exists but is not a valid TurboBC checkpoint.
    Corrupt(String),
    /// The checkpoint belongs to a different graph/source-set (the
    /// fingerprint over `n`, `m`, directedness, scale and the source
    /// list does not match).
    Mismatch {
        /// Fingerprint recorded in the file.
        found: u64,
        /// Fingerprint of the run being resumed.
        expected: u64,
    },
    /// The injected `fail_after_batches` kill-switch fired (test
    /// harness for the kill/resume scenario).
    InjectedKill {
        /// How many batches were durably checkpointed before the kill.
        batches_done: u32,
    },
    /// A checkpointed entry point was called on a solver whose
    /// [`crate::BcOptions`] carries no
    /// [`crate::CheckpointConfig`] — set one through
    /// `BcOptions::builder().checkpoint(..)`.
    NotConfigured,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint file is corrupt: {why}"),
            CheckpointError::Mismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different run (fingerprint {found:#018x}, \
                 expected {expected:#018x})"
            ),
            CheckpointError::InjectedKill { batches_done } => {
                write!(
                    f,
                    "injected kill after {batches_done} checkpointed batch(es)"
                )
            }
            CheckpointError::NotConfigured => write!(
                f,
                "checkpointed run requested but the solver options carry no CheckpointConfig"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl fmt::Display for TurboBcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurboBcError::Device(e) => write!(f, "device error: {e}"),
            TurboBcError::Link(e) => write!(f, "interconnect error: {e}"),
            TurboBcError::EmptyGraph => write!(f, "graph has no vertices"),
            TurboBcError::InvalidSource { source, n } => {
                write!(
                    f,
                    "source {source} out of range for a graph with {n} vertices"
                )
            }
            TurboBcError::StorageMismatch { kernel } => {
                write!(f, "storage format does not match kernel {kernel}")
            }
            TurboBcError::DirectedUnsupported { what } => {
                write!(f, "{what} supports undirected graphs only")
            }
            TurboBcError::NoDevices => write!(f, "multi-GPU run needs at least one device"),
            TurboBcError::AllDevicesLost => {
                write!(
                    f,
                    "all devices lost; no survivors to requeue partitions onto"
                )
            }
            TurboBcError::Checkpoint(e) => write!(f, "{e}"),
            TurboBcError::InvalidPlan { detail } => {
                write!(f, "invalid execution plan: {detail}")
            }
        }
    }
}

impl std::error::Error for TurboBcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TurboBcError::Device(e) => Some(e),
            TurboBcError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for TurboBcError {
    fn from(e: DeviceError) -> Self {
        TurboBcError::Device(e)
    }
}

impl From<LinkError> for TurboBcError {
    fn from(e: LinkError) -> Self {
        TurboBcError::Link(e)
    }
}

impl From<CheckpointError> for TurboBcError {
    fn from(e: CheckpointError) -> Self {
        TurboBcError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TurboBcError::InvalidSource { source: 9, n: 4 };
        assert_eq!(
            e.to_string(),
            "source 9 out of range for a graph with 4 vertices"
        );
        let e: TurboBcError = DeviceError::DeviceLost.into();
        assert!(e.to_string().starts_with("device error:"));
        let e: TurboBcError = LinkError::Dropped { transfer_index: 3 }.into();
        assert!(e.to_string().contains("transfer #3"), "{e}");
        let e = TurboBcError::Checkpoint(CheckpointError::Mismatch {
            found: 1,
            expected: 2,
        });
        assert!(e.to_string().contains("different run"));
        let e = TurboBcError::InvalidPlan {
            detail: "BC on turbobfs".to_string(),
        };
        assert!(e.to_string().starts_with("invalid execution plan:"));
    }

    #[test]
    fn source_chains_to_device_error() {
        use std::error::Error as _;
        let e = TurboBcError::Device(DeviceError::DeviceLost);
        assert!(e.source().is_some());
        assert!(TurboBcError::EmptyGraph.source().is_none());
    }
}

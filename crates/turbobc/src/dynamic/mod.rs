//! Streaming/incremental BC on dynamic graphs.
//!
//! A [`DynamicGraph`] layers delta edge buffers — an insert log and a
//! delete log of canonical edges (tombstones) — over the static
//! CSR/CSC pair the solver already materialises, compacting the logs
//! back into static form once they grow past a threshold. Between
//! compactions the sparse operand presented to the batched engine is a
//! [`DeltaCsc`] view (base CSC + sorted overlays merged per column),
//! whose SpMM kernels are bit-identical to a CSC rebuilt from the
//! updated edge list — so an incremental run is *exactly* a batched
//! run on the updated graph, restricted to the blocks that need it.
//!
//! The incremental mode keys a [`BcCache`] — per 64-wide source block,
//! the batched engine's depth/`σ` panels plus that block's BC
//! contribution vector — by a content fingerprint of the graph. When
//! an update batch arrives, the cached depth panels decide which
//! blocks the batch *invalidates*:
//!
//! * **insert** `x → y` dirties lane `k` iff `d(x) ≠ 0` and (`d(y) = 0`
//!   or `d(y) > d(x)`) — the new arc could discover `y` earlier (or at
//!   all) or add a shortest path into `y`;
//! * **delete** `x → y` dirties lane `k` iff `d(x) ≠ 0` and
//!   `d(y) = d(x) + 1` — the arc was part of the shortest-path DAG.
//!
//! Undirected edges test both orientations. A lane whose depths pass
//! every arc of the batch has a bitwise-stable BFS, `σ` and `δ` on the
//! updated graph: inserts that fail both conditions are non-DAG arcs
//! the masked forward stage never uses and the backward stage never
//! sums over, and deletes that fail them remove arcs the traversal
//! never took. Clean blocks therefore keep their cached panels and BC
//! contribution verbatim; only dirty blocks are re-swept (over the
//! delta view), and the total BC is re-summed from the per-block
//! contributions in block order.
//!
//! The re-summed total can differ from a monolithic full recompute in
//! the last float bits (the per-block partial sums associate the same
//! additions differently); the differential oracle in the test suite
//! bounds it at the usual `1e-6` graded tolerance.
//!
//! The dirty fraction at which incremental recompute stops paying for
//! itself is a [`CostModel`](crate::dispatch::CostModel) knob
//! (`update_full_fraction`), and the recompute itself is
//! [`DispatchMode`](crate::dispatch::DispatchMode)-aware: pinned
//! executors force the sequential or block-parallel path, `Auto` /
//! `CostModel` pick per batch.

use std::collections::BTreeSet;
use std::time::Instant;

use crate::batched::{bc_block_mat_traced, BatchScratch, PanelMat};
use crate::dispatch::{DispatchMode, ExecutorKind};
use crate::error::TurboBcError;
use crate::frontier::DirectionEngine;
use crate::observe::{NullObserver, Observer, TraceEvent};
use crate::options::{BcOptions, Kernel, PrepMode};
use crate::result::{BcResult, RunStats};
use crate::solver::BcSolver;
use turbobc_graph::Graph;
use turbobc_sparse::{ops, Csc, DeltaCsc, Index};

/// One streamed edge change. Endpoints are vertex ids of the graph the
/// update applies to; for undirected graphs `(u, v)` and `(v, u)` name
/// the same edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Add the edge `u – v` (arc `u → v` for directed graphs).
    Insert(u32, u32),
    /// Remove the edge `u – v` (arc `u → v` for directed graphs).
    Delete(u32, u32),
}

impl EdgeUpdate {
    /// The `(u, v)` endpoint pair, whichever direction the change goes.
    pub fn endpoints(self) -> (u32, u32) {
        match self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }
}

/// What one update batch did: how many changes took effect, how many
/// were no-ops, and what the incremental engine recomputed for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Edge insertions that took effect (the edge was absent).
    pub inserts: usize,
    /// Edge deletions that took effect (the edge was present).
    pub deletes: usize,
    /// No-op updates: duplicate inserts of live edges and deletes of
    /// absent edges. Tolerated, not errors — streams are messy.
    pub ignored: usize,
    /// Cached source blocks the batch invalidated.
    pub dirty_blocks: usize,
    /// Cached source blocks in total.
    pub total_blocks: usize,
    /// Blocks actually re-swept (`dirty_blocks`, or `total_blocks`
    /// when the cost model escalated to a full recompute).
    pub recomputed_blocks: usize,
    /// `"incremental"`, `"full"`, `"noop"` — or `"graph-only"` for
    /// [`DynamicGraph::apply`], which maintains no BC state.
    pub strategy: &'static str,
    /// Whether this batch tripped the delta-log threshold and folded
    /// the logs back into static CSR/CSC form.
    pub compacted: bool,
}

/// Default number of pending log entries (canonical edges across both
/// logs) at which [`DynamicGraph`] folds its deltas back into a static
/// base. Each pending edge costs two binary-searched overlay probes
/// per touched column in the merged sweep, so the view stays within a
/// small constant of the static kernels until well past this.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 4096;

/// `(row, col)` arc overlays expanded from a pending edge log.
type ArcList = Vec<(Index, Index)>;

/// One re-swept block's result, carried back from a rayon worker:
/// block index, depth words, σ panel, BC contribution, level count and
/// direction-switch count.
type SweptBlock = (usize, Vec<u32>, Vec<i64>, Vec<f64>, u32, u32);

/// SplitMix64-style avalanche of one arc; XORed into the running edge
/// hash so membership changes compose incrementally and order-free.
fn mix_arc(u: u32, v: u32) -> u64 {
    let mut z = ((u as u64) << 32) | v as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in words {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Content fingerprint of a static graph: a 64-bit digest of
/// `(n, directedness, arc count, edge membership)` that two graphs
/// share **iff** they describe the same topology, regardless of how
/// they were built.
///
/// The edge-membership term XORs a SplitMix64 avalanche of every arc,
/// so it is order-free and composes incrementally — inserting then
/// deleting an edge restores the original digest. [`DynamicGraph`]
/// maintains the same value across `apply`/`compact` without rescans
/// ([`DynamicGraph::fingerprint`] agrees with this function applied to
/// [`DynamicGraph::snapshot`]), which makes the fingerprint a stable
/// cache key for derived results: the serve layer keys its result
/// cache on `(graph_fingerprint, options fingerprint)` and invalidates
/// by fingerprint when an update batch lands.
///
/// The value is pinned — it is part of the on-disk/wire contract for
/// caches keyed on it and changes only with a schema bump.
///
/// ```
/// use turbobc::graph_fingerprint;
/// use turbobc_graph::Graph;
/// let a = Graph::from_edges(4, false, &[(0, 1), (1, 2), (2, 3)]);
/// let b = Graph::from_edges(4, false, &[(2, 3), (0, 1), (1, 2)]);
/// assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
/// ```
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut edge_hash = 0u64;
    for (u, v) in g.edges() {
        edge_hash ^= mix_arc(u, v);
    }
    content_fingerprint(g.n(), g.directed(), g.m(), edge_hash)
}

fn content_fingerprint(n: usize, directed: bool, m_arcs: usize, edge_hash: u64) -> u64 {
    fnv(&[n as u64, directed as u64, m_arcs as u64, edge_hash])
}

/// The key a [`BcCache`] is valid for: graph content plus the run
/// parameters that shape the cached panels.
pub(crate) fn cache_fingerprint(graph_fp: u64, scale: f64, width: usize, sources: &[u32]) -> u64 {
    let mut words = vec![
        graph_fp,
        scale.to_bits(),
        width as u64,
        sources.len() as u64,
    ];
    words.extend(sources.iter().map(|&s| s as u64));
    fnv(&words)
}

// ---------------------------------------------------------------------
// DynamicGraph: delta logs over a static base
// ---------------------------------------------------------------------

/// A staged (validated, not yet committed) update batch: the
/// post-batch logs plus the effective arc lists detection runs on.
pub(crate) struct StagedBatch {
    inserts_log: BTreeSet<(u32, u32)>,
    deletes_log: BTreeSet<(u32, u32)>,
    edge_hash: u64,
    m_arcs: usize,
    /// Directed arcs of the effective insertions (both orientations
    /// for undirected edges).
    pub(crate) ins_arcs: Vec<(u32, u32)>,
    /// Directed arcs of the effective deletions.
    pub(crate) del_arcs: Vec<(u32, u32)>,
    /// Effective edge insertions.
    pub(crate) inserts: usize,
    /// Effective edge deletions.
    pub(crate) deletes: usize,
    /// No-op updates.
    pub(crate) ignored: usize,
}

/// An evolving graph: a static base (the last compaction's CSR/CSC
/// snapshot) plus insert/delete logs of canonical edges. Queries and
/// the incremental engine see base ⊕ logs through a [`DeltaCsc`] view;
/// [`DynamicGraph::compact`] folds the logs back into the base.
///
/// Self-loops are rejected (the static builders drop them silently,
/// but a streamed self-loop is almost certainly a bug in the stream);
/// duplicate inserts and deletes of absent edges are tolerated no-ops.
pub struct DynamicGraph {
    directed: bool,
    n: usize,
    base: Graph,
    base_csc: Csc,
    inserts: BTreeSet<(u32, u32)>,
    deletes: BTreeSet<(u32, u32)>,
    edge_hash: u64,
    m_arcs: usize,
    compact_threshold: usize,
}

impl DynamicGraph {
    /// Wraps a static graph as the initial base with empty logs.
    pub fn from_graph(g: &Graph) -> Self {
        let mut edge_hash = 0u64;
        for (u, v) in g.edges() {
            edge_hash ^= mix_arc(u, v);
        }
        DynamicGraph {
            directed: g.directed(),
            n: g.n(),
            base: g.clone(),
            base_csc: g.to_csc(),
            inserts: BTreeSet::new(),
            deletes: BTreeSet::new(),
            edge_hash,
            m_arcs: g.m(),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        }
    }

    /// Replaces the auto-compaction threshold (pending canonical edges
    /// across both logs). `0` compacts after every effective batch.
    pub fn with_compact_threshold(mut self, edges: usize) -> Self {
        self.compact_threshold = edges;
        self
    }

    /// Vertex count `n` (fixed for the lifetime of the graph).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored arcs in the *current* (base ⊕ logs) graph — both
    /// orientations for undirected graphs, matching [`Graph::m`].
    pub fn m(&self) -> usize {
        self.m_arcs
    }

    /// Whether the graph is directed.
    pub fn directed(&self) -> bool {
        self.directed
    }

    /// The static base snapshot (as of the last compaction).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Pending log entries (canonical edges across both logs).
    pub fn pending(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Content fingerprint of the current graph. Stable across
    /// [`DynamicGraph::compact`] (the content does not change) and
    /// equal to what a static rebuild of the same edge set hashes to.
    pub fn fingerprint(&self) -> u64 {
        content_fingerprint(self.n, self.directed, self.m_arcs, self.edge_hash)
    }

    fn key(&self, u: u32, v: u32) -> (u32, u32) {
        if self.directed || u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn arcs_per_edge(&self) -> usize {
        if self.directed {
            1
        } else {
            2
        }
    }

    fn push_arcs(&self, (u, v): (u32, u32), out: &mut Vec<(u32, u32)>) {
        out.push((u, v));
        if !self.directed {
            out.push((v, u));
        }
    }

    fn base_has(&self, (u, v): (u32, u32)) -> bool {
        self.base_csc.column(v as usize).binary_search(&u).is_ok()
    }

    /// Whether the edge `u – v` (arc `u → v` if directed) is present
    /// in the current graph.
    pub fn contains(&self, u: u32, v: u32) -> bool {
        if u as usize >= self.n || v as usize >= self.n {
            return false;
        }
        let k = self.key(u, v);
        self.inserts.contains(&k) || (self.base_has(k) && !self.deletes.contains(&k))
    }

    /// Validates a batch and computes its effect without mutating the
    /// graph — [`DynamicGraph::commit`] applies the result atomically,
    /// so a rejected update leaves no partial state behind.
    pub(crate) fn stage(&self, updates: &[EdgeUpdate]) -> Result<StagedBatch, TurboBcError> {
        let mut staged = StagedBatch {
            inserts_log: self.inserts.clone(),
            deletes_log: self.deletes.clone(),
            edge_hash: self.edge_hash,
            m_arcs: self.m_arcs,
            ins_arcs: Vec::new(),
            del_arcs: Vec::new(),
            inserts: 0,
            deletes: 0,
            ignored: 0,
        };
        for (idx, &up) in updates.iter().enumerate() {
            let (u, v) = up.endpoints();
            for x in [u, v] {
                if x as usize >= self.n {
                    return Err(TurboBcError::InvalidPlan {
                        detail: format!(
                            "update {}: endpoint {} out of range for {} vertices",
                            idx + 1,
                            x,
                            self.n
                        ),
                    });
                }
            }
            if u == v {
                return Err(TurboBcError::InvalidPlan {
                    detail: format!("update {}: self-loop {} → {} rejected", idx + 1, u, v),
                });
            }
            let k = self.key(u, v);
            let present = staged.inserts_log.contains(&k)
                || (self.base_has(k) && !staged.deletes_log.contains(&k));
            match up {
                EdgeUpdate::Insert(..) => {
                    if present {
                        staged.ignored += 1;
                        continue;
                    }
                    // Insert shadows a tombstone: delete-then-insert
                    // restores the base entry.
                    if !staged.deletes_log.remove(&k) {
                        staged.inserts_log.insert(k);
                    }
                    staged.edge_hash ^= mix_arc(k.0, k.1);
                    if !self.directed {
                        staged.edge_hash ^= mix_arc(k.1, k.0);
                    }
                    staged.m_arcs += self.arcs_per_edge();
                    staged.inserts += 1;
                    self.push_arcs(k, &mut staged.ins_arcs);
                }
                EdgeUpdate::Delete(..) => {
                    if !present {
                        staged.ignored += 1;
                        continue;
                    }
                    if !staged.inserts_log.remove(&k) {
                        staged.deletes_log.insert(k);
                    }
                    staged.edge_hash ^= mix_arc(k.0, k.1);
                    if !self.directed {
                        staged.edge_hash ^= mix_arc(k.1, k.0);
                    }
                    staged.m_arcs -= self.arcs_per_edge();
                    staged.deletes += 1;
                    self.push_arcs(k, &mut staged.del_arcs);
                }
            }
        }
        Ok(staged)
    }

    /// Adopts a staged batch's logs, hash and arc count.
    pub(crate) fn commit(&mut self, staged: &StagedBatch) {
        self.inserts = staged.inserts_log.clone();
        self.deletes = staged.deletes_log.clone();
        self.edge_hash = staged.edge_hash;
        self.m_arcs = staged.m_arcs;
    }

    /// Applies a batch of updates to the graph alone (no BC state),
    /// compacting when the logs grow past the threshold. The returned
    /// report's BC fields are zero with strategy `"graph-only"`.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> Result<UpdateReport, TurboBcError> {
        let staged = self.stage(updates)?;
        let (inserts, deletes, ignored) = (staged.inserts, staged.deletes, staged.ignored);
        self.commit(&staged);
        let compacted = self.should_compact();
        if compacted {
            self.compact();
        }
        Ok(UpdateReport {
            inserts,
            deletes,
            ignored,
            dirty_blocks: 0,
            total_blocks: 0,
            recomputed_blocks: 0,
            strategy: "graph-only",
            compacted,
        })
    }

    /// Whether the pending logs have outgrown the threshold.
    pub fn should_compact(&self) -> bool {
        self.pending() > self.compact_threshold
    }

    /// Materialises the current (base ⊕ logs) graph as a static
    /// [`Graph`] without touching the logs.
    pub fn snapshot(&self) -> Graph {
        let mut edges: Vec<(u32, u32)> =
            Vec::with_capacity(self.m_arcs / self.arcs_per_edge().max(1) + self.inserts.len());
        for (u, v) in self.base.edges() {
            // Undirected bases store both orientations; keep each edge
            // once, in canonical order.
            if self.directed || u <= v {
                let k = (u, v);
                if !self.deletes.contains(&k) {
                    edges.push(k);
                }
            }
        }
        edges.extend(self.inserts.iter().copied());
        Graph::from_edges(self.n, self.directed, &edges)
    }

    /// Folds the pending logs into a fresh static base (new CSR/CSC),
    /// leaving the logs empty. A no-op when nothing is pending.
    pub fn compact(&mut self) {
        if self.pending() == 0 {
            return;
        }
        self.base = self.snapshot();
        self.base_csc = self.base.to_csc();
        self.inserts.clear();
        self.deletes.clear();
        debug_assert_eq!(self.base.m(), self.m_arcs);
    }

    /// Expands the pending logs into `(row, col)` arc overlays.
    fn log_arcs(&self) -> (ArcList, ArcList) {
        let mut ins = Vec::with_capacity(self.inserts.len() * self.arcs_per_edge());
        let mut del = Vec::with_capacity(self.deletes.len() * self.arcs_per_edge());
        for &k in &self.inserts {
            self.push_arcs(k, &mut ins);
        }
        for &k in &self.deletes {
            self.push_arcs(k, &mut del);
        }
        (ins, del)
    }

    /// The delta-aware CSC view of the current graph — the sparse
    /// operand the incremental engine sweeps between compactions.
    pub(crate) fn delta_view(&self) -> DeltaCsc<'_> {
        let (ins, del) = self.log_arcs();
        DeltaCsc::new(&self.base_csc, &ins, &del).expect("staged arcs are bounds-checked")
    }
}

// ---------------------------------------------------------------------
// BcCache: the incremental engine's state
// ---------------------------------------------------------------------

/// One cached source block: the batched engine's per-lane panels plus
/// the block's BC contribution, exactly as a fresh batched run of the
/// block would produce them.
pub(crate) struct CachedBlock {
    /// Index of the block's first source in the cache's source list.
    pub(crate) first: usize,
    /// Lanes in the block.
    pub(crate) len: usize,
    /// Discovery-depth panel, `n × len` (stride `len`).
    pub(crate) depths: Vec<u32>,
    /// Shortest-path-count panel, `n × len` (stride `len`).
    pub(crate) sigma: Vec<i64>,
    /// This block's BC contribution vector (length `n`).
    pub(crate) bc: Vec<f64>,
    /// Matrix sweeps the block's last recompute cost.
    pub(crate) sweeps: u32,
    /// Max BFS height over the block's lanes.
    pub(crate) height: u32,
}

/// Cached per-block BC state keyed by a graph-content fingerprint:
/// what [`BcSolver::warm_cache`] builds and the incremental engine
/// patches batch by batch.
pub struct BcCache {
    pub(crate) fingerprint: u64,
    pub(crate) sources: Vec<u32>,
    pub(crate) width: usize,
    pub(crate) n: usize,
    pub(crate) scale: f64,
    pub(crate) blocks: Vec<CachedBlock>,
    pub(crate) bc: Vec<f64>,
}

impl BcCache {
    /// The cached BC vector (sum of the per-block contributions in
    /// block order).
    pub fn bc(&self) -> &[f64] {
        &self.bc
    }

    /// The source list the cache covers, in run order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Batch width the cached panels were swept at.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of cached source blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The graph + run-parameter fingerprint the cache is valid for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Actual bytes the cached panels and contribution vectors hold.
    pub fn resident_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| (b.depths.len() * 4 + b.sigma.len() * 8 + b.bc.len() * 8) as u64)
            .sum::<u64>()
            + self.bc.len() as u64 * 8
    }

    /// Modelled bytes a cache for `n_sources` sources over an
    /// `n`-vertex graph at batch width `width` will hold — what
    /// [`BcSolver::warm_cache`] admits against the cost model's
    /// `update_cache_bytes` budget before sweeping anything.
    pub fn modelled_bytes(n: usize, n_sources: usize, width: usize) -> u64 {
        let blocks = n_sources.div_ceil(width.max(1)) as u64;
        // depth (u32) + σ (i64) panels per source, one f64 contribution
        // vector per block, one f64 total.
        n as u64 * n_sources as u64 * 12 + (blocks + 1) * n as u64 * 8
    }

    /// Rebuilds the total from the per-block contributions, in block
    /// order (deterministic float summation).
    pub(crate) fn resum(&mut self) {
        self.bc.fill(0.0);
        for blk in &self.blocks {
            for (acc, &c) in self.bc.iter_mut().zip(&blk.bc) {
                *acc += c;
            }
        }
    }

    /// Assembles a [`BcResult`] surface from the cache: the total BC,
    /// and `σ`/depths of the run's last source from its cached panel.
    pub(crate) fn result(&self, mut stats: RunStats) -> BcResult {
        let n = self.n;
        let mut sigma = vec![0i64; n];
        let mut depths = vec![0u32; n];
        if let Some(blk) = self.blocks.last() {
            let (w, lane) = (blk.len, blk.len - 1);
            for v in 0..n {
                sigma[v] = blk.sigma[v * w + lane];
                depths[v] = blk.depths[v * w + lane];
            }
        }
        stats.last_reached = depths.iter().filter(|&&d| d != ops::UNDISCOVERED).count();
        stats.max_depth = self.blocks.iter().map(|b| b.height).max().unwrap_or(0);
        BcResult {
            bc: self.bc.clone(),
            sigma,
            depths,
            stats,
        }
    }
}

// ---------------------------------------------------------------------
// Dirty-block detection and the update plan
// ---------------------------------------------------------------------

fn insert_dirties(dx: u32, dy: u32) -> bool {
    dx != ops::UNDISCOVERED && (dy == ops::UNDISCOVERED || dy > dx)
}

fn delete_dirties(dx: u32, dy: u32) -> bool {
    dx != ops::UNDISCOVERED && dy == dx + 1
}

/// Scans the cached depth panels against a batch's effective arcs and
/// returns the indices of invalidated blocks, in block order.
pub(crate) fn detect_dirty(
    cache: &BcCache,
    ins_arcs: &[(u32, u32)],
    del_arcs: &[(u32, u32)],
) -> Vec<usize> {
    let mut dirty = Vec::new();
    'blocks: for (bi, blk) in cache.blocks.iter().enumerate() {
        let w = blk.len;
        for &(x, y) in ins_arcs {
            let (xb, yb) = (x as usize * w, y as usize * w);
            for k in 0..w {
                if insert_dirties(blk.depths[xb + k], blk.depths[yb + k]) {
                    dirty.push(bi);
                    continue 'blocks;
                }
            }
        }
        for &(x, y) in del_arcs {
            let (xb, yb) = (x as usize * w, y as usize * w);
            for k in 0..w {
                if delete_dirties(blk.depths[xb + k], blk.depths[yb + k]) {
                    dirty.push(bi);
                    continue 'blocks;
                }
            }
        }
    }
    dirty
}

/// How one update batch maps onto the cached blocks: which blocks to
/// re-sweep and whether the cost model escalated to a full recompute.
/// Built by [`BcSolver::apply_updates`], consumed by
/// [`BcSolver::recompute_dirty`].
pub struct UpdatePlan {
    pub(crate) dirty: Vec<usize>,
    pub(crate) total_blocks: usize,
    pub(crate) full: bool,
    pub(crate) rationale: String,
    pub(crate) new_fingerprint: u64,
    pub(crate) inserts: usize,
    pub(crate) deletes: usize,
}

impl UpdatePlan {
    /// Cached blocks the batch invalidated.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty.len()
    }

    /// Cached blocks in total.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Whether the cost model escalated to recomputing every block.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Whether the batch touches no cached block at all.
    pub fn is_noop(&self) -> bool {
        !self.full && self.dirty.is_empty()
    }

    /// The cost-model rationale behind the strategy choice.
    pub fn rationale(&self) -> &str {
        &self.rationale
    }

    /// `"incremental"`, `"full"` or `"noop"`.
    pub fn strategy(&self) -> &'static str {
        if self.full {
            "full"
        } else if self.dirty.is_empty() {
            "noop"
        } else {
            "incremental"
        }
    }

    /// Blocks the plan will re-sweep.
    pub(crate) fn recompute_count(&self) -> usize {
        if self.full {
            self.total_blocks
        } else {
            self.dirty.len()
        }
    }
}

/// Builds an [`UpdatePlan`] from detection plus the cost model's
/// incremental-vs-full rule.
pub(crate) fn plan_updates(
    cache: &BcCache,
    ins_arcs: &[(u32, u32)],
    del_arcs: &[(u32, u32)],
    inserts: usize,
    deletes: usize,
    full_fraction: f64,
    new_fingerprint: u64,
) -> UpdatePlan {
    let dirty = detect_dirty(cache, ins_arcs, del_arcs);
    let total = cache.blocks.len();
    let frac = if total == 0 {
        0.0
    } else {
        dirty.len() as f64 / total as f64
    };
    let full = !dirty.is_empty() && frac >= full_fraction;
    let rationale = if dirty.is_empty() {
        format!(
            "no cached block sees the {} changed arc(s); cache kept as-is",
            ins_arcs.len() + del_arcs.len()
        )
    } else if full {
        format!(
            "{}/{} blocks dirty ({:.0}%) ≥ update_full_fraction ({:.0}%): recomputing every block",
            dirty.len(),
            total,
            frac * 100.0,
            full_fraction * 100.0
        )
    } else {
        format!(
            "{}/{} blocks dirty ({:.0}%) < update_full_fraction ({:.0}%): incremental recompute",
            dirty.len(),
            total,
            frac * 100.0,
            full_fraction * 100.0
        )
    };
    UpdatePlan {
        dirty,
        total_blocks: total,
        full,
        rationale,
        new_fingerprint,
        inserts,
        deletes,
    }
}

/// Deduplicated, validated arc expansion of a raw update list — the
/// staging step for [`BcSolver::apply_updates`], where the caller (not
/// a [`DynamicGraph`]) asserts the updates are the diff between the
/// cached graph and the solver's.
pub(crate) struct ArcSets {
    pub(crate) ins_arcs: Vec<(u32, u32)>,
    pub(crate) del_arcs: Vec<(u32, u32)>,
    pub(crate) inserts: usize,
    pub(crate) deletes: usize,
}

pub(crate) fn expand_updates(
    n: usize,
    directed: bool,
    updates: &[EdgeUpdate],
) -> Result<ArcSets, TurboBcError> {
    let canon = |u: u32, v: u32| if directed || u <= v { (u, v) } else { (v, u) };
    let mut ins: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut del: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (idx, &up) in updates.iter().enumerate() {
        let (u, v) = up.endpoints();
        for x in [u, v] {
            if x as usize >= n {
                return Err(TurboBcError::InvalidPlan {
                    detail: format!(
                        "update {}: endpoint {} out of range for {} vertices",
                        idx + 1,
                        x,
                        n
                    ),
                });
            }
        }
        if u == v {
            return Err(TurboBcError::InvalidPlan {
                detail: format!("update {}: self-loop {} → {} rejected", idx + 1, u, v),
            });
        }
        match up {
            EdgeUpdate::Insert(..) => ins.insert(canon(u, v)),
            EdgeUpdate::Delete(..) => del.insert(canon(u, v)),
        };
    }
    let expand = |set: &BTreeSet<(u32, u32)>| {
        let mut arcs = Vec::with_capacity(set.len() * if directed { 1 } else { 2 });
        for &(u, v) in set {
            arcs.push((u, v));
            if !directed {
                arcs.push((v, u));
            }
        }
        arcs
    };
    Ok(ArcSets {
        ins_arcs: expand(&ins),
        del_arcs: expand(&del),
        inserts: ins.len(),
        deletes: del.len(),
    })
}

// ---------------------------------------------------------------------
// Recompute: the DispatchMode-aware dirty-block re-sweep
// ---------------------------------------------------------------------

/// Picks the host executor for a dirty-block recompute under the run's
/// dispatch mode: `(parallel?, reason)`.
pub(crate) fn choose_update_executor(
    mode: &DispatchMode,
    blocks: usize,
) -> Result<(bool, String), TurboBcError> {
    match mode {
        DispatchMode::Pinned(ExecutorKind::CpuSequential)
        | DispatchMode::Pinned(ExecutorKind::Batched) => {
            Ok((false, "pinned sequential block sweep".to_string()))
        }
        DispatchMode::Pinned(ExecutorKind::CpuParallel) => {
            Ok((true, "pinned block-parallel recompute".to_string()))
        }
        DispatchMode::Pinned(other) => Err(TurboBcError::InvalidPlan {
            detail: format!(
                "dirty-block recompute cannot run on the {} executor; \
                 pin seq, par or batched — or use Auto / CostModel",
                other.name()
            ),
        }),
        DispatchMode::Auto | DispatchMode::CostModel => {
            let threads = rayon::current_num_threads().max(1);
            if blocks > 1 && threads > 1 {
                Ok((
                    true,
                    format!("{blocks} block(s) across {threads} rayon threads"),
                ))
            } else {
                Ok((
                    false,
                    format!("{blocks} block(s), {threads} thread(s): sequential sweep"),
                ))
            }
        }
    }
}

/// Re-sweeps `targets` (cache block indices) over `mat`, replacing
/// each block's cached panels and contribution vector. Returns the
/// total matrix sweeps spent. Parallel runs give every block its own
/// scratch and fold results back in block order, so the cache contents
/// are identical to the sequential path's.
fn recompute_blocks(
    mat: &PanelMat<'_>,
    dir: &DirectionEngine,
    cache: &mut BcCache,
    targets: &[usize],
    parallel: bool,
    obs: &mut dyn Observer,
) -> u64 {
    let n = cache.n;
    let width = cache.width;
    let scale = cache.scale;
    let sources = &cache.sources;
    let blocks = &mut cache.blocks;
    let mut total = 0u64;
    if parallel {
        use rayon::prelude::*;
        let spans: Vec<(usize, usize, usize)> = targets
            .iter()
            .map(|&bi| (bi, blocks[bi].first, blocks[bi].len))
            .collect();
        let swept: Vec<SweptBlock> = spans
            .par_iter()
            .map(|&(bi, first, len)| {
                let block = &sources[first..first + len];
                let mut scratch = BatchScratch::new(n, width);
                let mut bc_tmp = vec![0.0f64; n];
                let run = bc_block_mat_traced(
                    mat,
                    dir,
                    block,
                    scale,
                    &mut bc_tmp,
                    &mut scratch,
                    None,
                    &mut |_| {},
                );
                let mut depths = Vec::new();
                let mut sigma = Vec::new();
                scratch.extract_block(n, len, &mut sigma, &mut depths);
                let height = run.heights.iter().copied().max().unwrap_or(1);
                (bi, depths, sigma, bc_tmp, run.sweeps, height)
            })
            .collect();
        for (bi, depths, sigma, bc_tmp, sweeps, height) in swept {
            let blk = &mut blocks[bi];
            blk.depths = depths;
            blk.sigma = sigma;
            blk.bc = bc_tmp;
            blk.sweeps = sweeps;
            blk.height = height;
            total += sweeps as u64;
            obs.event(TraceEvent::Block {
                first_source: sources[blk.first],
                width: blk.len,
                sweeps,
            });
        }
    } else {
        let mut scratch = BatchScratch::new(n, width);
        let mut bc_tmp = vec![0.0f64; n];
        for &bi in targets {
            let (first, len) = (blocks[bi].first, blocks[bi].len);
            let block = &sources[first..first + len];
            bc_tmp.fill(0.0);
            let run = bc_block_mat_traced(
                mat,
                dir,
                block,
                scale,
                &mut bc_tmp,
                &mut scratch,
                None,
                &mut |_| {},
            );
            let blk = &mut blocks[bi];
            scratch.extract_block(n, len, &mut blk.sigma, &mut blk.depths);
            blk.bc.copy_from_slice(&bc_tmp);
            blk.sweeps = run.sweeps;
            blk.height = run.heights.iter().copied().max().unwrap_or(1);
            total += run.sweeps as u64;
            obs.event(TraceEvent::Block {
                first_source: block[0],
                width: len,
                sweeps: run.sweeps,
            });
        }
    }
    total
}

/// One framed update run: emits the `Update` / `Dispatch` /
/// `RunStart`…`RunEnd` trace, re-sweeps the plan's blocks, re-keys the
/// cache and re-sums the total. Shared by [`BcSolver::recompute_dirty`]
/// (static storage) and [`DynamicBc`] (delta view).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_update(
    mat: &PanelMat<'_>,
    dir: &DirectionEngine,
    kernel: Kernel,
    m: usize,
    parallel: bool,
    reason: &str,
    cache: &mut BcCache,
    plan: &UpdatePlan,
    obs: &mut dyn Observer,
) -> RunStats {
    let start = Instant::now();
    obs.event(TraceEvent::Update {
        inserts: plan.inserts,
        deletes: plan.deletes,
        dirty_blocks: plan.dirty.len(),
        total_blocks: plan.total_blocks,
        strategy: plan.strategy(),
    });
    let targets: Vec<usize> = if plan.full {
        (0..cache.blocks.len()).collect()
    } else {
        plan.dirty.clone()
    };
    let recompute_sources: usize = targets.iter().map(|&bi| cache.blocks[bi].len).sum();
    obs.event(TraceEvent::Dispatch {
        granularity: "run",
        executor: if parallel { "block-par" } else { "batched" },
        source: targets
            .first()
            .map(|&bi| cache.sources[cache.blocks[bi].first])
            .unwrap_or(0),
        depth: 0,
        frontier: recompute_sources,
        reason: reason.to_string(),
    });
    obs.event(TraceEvent::RunStart {
        engine: "dynamic",
        kernel,
        n: cache.n,
        m,
        sources: recompute_sources,
    });
    let sweeps = recompute_blocks(mat, dir, cache, &targets, parallel, obs);
    cache.fingerprint = plan.new_fingerprint;
    cache.resum();
    let elapsed = start.elapsed();
    obs.event(TraceEvent::RunEnd {
        elapsed_s: elapsed.as_secs_f64(),
    });
    RunStats {
        sources: recompute_sources,
        total_levels: sweeps,
        elapsed,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// DynamicBc: the streaming session
// ---------------------------------------------------------------------

/// A streaming BC session: a [`DynamicGraph`], a warm [`BcCache`], and
/// an epoch [`BcSolver`] rebuilt at every compaction. Feed update
/// batches with [`DynamicBc::apply_updates`]; between compactions the
/// dirty blocks are re-swept over the [`DeltaCsc`] view (pull-only —
/// the view carries no CSR), so no static rebuild happens until the
/// delta logs outgrow their threshold.
///
/// Preprocessing is forced to [`PrepMode::Off`]: the reduction
/// pipeline rewrites the vertex space, which the cached panels are
/// keyed on.
pub struct DynamicBc {
    graph: DynamicGraph,
    options: BcOptions,
    solver: BcSolver,
    cache: BcCache,
}

impl DynamicBc {
    /// Builds the session and warms the cache with one full batched
    /// run over `sources`.
    pub fn new(graph: &Graph, sources: &[u32], options: BcOptions) -> Result<Self, TurboBcError> {
        let mut options = options;
        options.prep = PrepMode::Off;
        let solver = BcSolver::new(graph, options.clone())?;
        let cache = solver.warm_cache(sources)?;
        Ok(DynamicBc {
            graph: DynamicGraph::from_graph(graph),
            options,
            solver,
            cache,
        })
    }

    /// Replaces the graph's auto-compaction threshold.
    pub fn with_compact_threshold(mut self, edges: usize) -> Self {
        self.graph = self.graph.with_compact_threshold(edges);
        self
    }

    /// The evolving graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The cached BC state.
    pub fn cache(&self) -> &BcCache {
        &self.cache
    }

    /// The current BC vector (over the cache's source list).
    pub fn bc(&self) -> &[f64] {
        &self.cache.bc
    }

    /// The epoch solver (over the base snapshot of the last
    /// compaction).
    pub fn solver(&self) -> &BcSolver {
        &self.solver
    }

    /// [`DynamicBc::apply_updates_observed`] without a trace sink.
    pub fn apply_updates(&mut self, updates: &[EdgeUpdate]) -> Result<UpdateReport, TurboBcError> {
        self.apply_updates_observed(updates, &mut NullObserver)
    }

    /// Applies one update batch: stages and validates it, detects
    /// which cached blocks it invalidates, re-sweeps those blocks over
    /// the delta view, folds the corrections into the cached BC
    /// vector, and compacts the graph if the logs outgrew their
    /// threshold. Emits one [`TraceEvent::Update`] (plus the usual
    /// dispatch/run framing) into `obs`.
    pub fn apply_updates_observed(
        &mut self,
        updates: &[EdgeUpdate],
        obs: &mut dyn Observer,
    ) -> Result<UpdateReport, TurboBcError> {
        let staged = self.graph.stage(updates)?;
        let new_fp = cache_fingerprint(
            content_fingerprint(
                self.graph.n,
                self.graph.directed,
                staged.m_arcs,
                staged.edge_hash,
            ),
            self.cache.scale,
            self.cache.width,
            &self.cache.sources,
        );
        let plan = plan_updates(
            &self.cache,
            &staged.ins_arcs,
            &staged.del_arcs,
            staged.inserts,
            staged.deletes,
            self.options.execution.cost.update_full_fraction,
            new_fp,
        );
        let (inserts, deletes, ignored) = (staged.inserts, staged.deletes, staged.ignored);
        self.graph.commit(&staged);
        let (parallel, exec_reason) =
            choose_update_executor(&self.options.execution.dispatch, plan.recompute_count())?;
        let reason = format!("{}; {}", plan.rationale, exec_reason);
        {
            let view = self.graph.delta_view();
            let dir = DirectionEngine::pull_only(self.graph.m());
            let mat = PanelMat::Delta(&view);
            run_update(
                &mat,
                &dir,
                Kernel::ScCsc,
                self.graph.m(),
                parallel,
                &reason,
                &mut self.cache,
                &plan,
                obs,
            );
        }
        let compacted = self.graph.should_compact();
        if compacted {
            self.graph.compact();
            self.solver = BcSolver::new(self.graph.base(), self.options.clone())?;
        }
        Ok(UpdateReport {
            inserts,
            deletes,
            ignored,
            dirty_blocks: plan.dirty.len(),
            total_blocks: plan.total_blocks,
            recomputed_blocks: plan.recompute_count(),
            strategy: plan.strategy(),
            compacted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_graph::gen;

    fn path5() -> Graph {
        Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn dynamic_graph_tracks_membership_and_m() {
        let mut dg = DynamicGraph::from_graph(&path5());
        assert_eq!(dg.m(), 8);
        assert!(dg.contains(1, 0), "undirected membership is symmetric");
        let r = dg
            .apply(&[EdgeUpdate::Insert(0, 4), EdgeUpdate::Delete(1, 2)])
            .unwrap();
        assert_eq!((r.inserts, r.deletes, r.ignored), (1, 1, 0));
        assert!(dg.contains(4, 0));
        assert!(!dg.contains(1, 2));
        assert_eq!(dg.m(), 8);
    }

    #[test]
    fn noop_updates_are_ignored_not_errors() {
        let mut dg = DynamicGraph::from_graph(&path5());
        let r = dg
            .apply(&[
                EdgeUpdate::Insert(0, 1), // duplicate of a base edge
                EdgeUpdate::Delete(0, 4), // absent
            ])
            .unwrap();
        assert_eq!(r.ignored, 2);
        assert_eq!(r.inserts + r.deletes, 0);
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn self_loops_and_out_of_range_endpoints_are_rejected_atomically() {
        let mut dg = DynamicGraph::from_graph(&path5());
        let err = dg
            .apply(&[EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(2, 2)])
            .unwrap_err();
        assert!(
            matches!(err, TurboBcError::InvalidPlan { ref detail } if detail.contains("self-loop"))
        );
        // The valid first update must not have leaked in.
        assert!(!dg.contains(0, 3));
        let err = dg.apply(&[EdgeUpdate::Delete(0, 99)]).unwrap_err();
        assert!(
            matches!(err, TurboBcError::InvalidPlan { ref detail } if detail.contains("out of range"))
        );
    }

    #[test]
    fn fingerprint_is_content_based_and_compaction_stable() {
        let mut dg = DynamicGraph::from_graph(&path5());
        let fp0 = dg.fingerprint();
        dg.apply(&[EdgeUpdate::Insert(0, 2)]).unwrap();
        let fp1 = dg.fingerprint();
        assert_ne!(fp0, fp1);
        dg.compact();
        assert_eq!(dg.fingerprint(), fp1, "compaction must not re-key");
        assert_eq!(
            dg.fingerprint(),
            graph_fingerprint(&Graph::from_edges(
                5,
                false,
                &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]
            )),
            "incremental hash must match a static rebuild's"
        );
        dg.apply(&[EdgeUpdate::Delete(0, 2)]).unwrap();
        assert_eq!(dg.fingerprint(), fp0, "inverse update restores the key");
    }

    /// `graph_fingerprint` is a public cache key (the serve layer keys
    /// result caches on it), so its value for a fixed input is part of
    /// the contract: this literal may only change with a schema bump.
    #[test]
    fn graph_fingerprint_value_is_pinned() {
        let g = path5();
        assert_eq!(graph_fingerprint(&g), 0xe35b_f4a5_db16_90ab);
        // Edge order and duplicate arcs must not move the key.
        let shuffled = Graph::from_edges(5, false, &[(3, 4), (1, 0), (2, 1), (2, 3)]);
        assert_eq!(graph_fingerprint(&shuffled), 0xe35b_f4a5_db16_90ab);
        // Every content axis re-keys: n, directedness, membership.
        let widened = Graph::from_edges(6, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_ne!(graph_fingerprint(&widened), graph_fingerprint(&g));
        let directed = Graph::from_edges(5, true, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_ne!(graph_fingerprint(&directed), graph_fingerprint(&g));
    }

    #[test]
    fn insert_after_delete_restores_the_base_edge() {
        let mut dg = DynamicGraph::from_graph(&path5());
        dg.apply(&[EdgeUpdate::Delete(1, 2), EdgeUpdate::Insert(2, 1)])
            .unwrap();
        assert!(dg.contains(1, 2));
        assert_eq!(dg.pending(), 0, "the pair cancels in the logs");
    }

    #[test]
    fn snapshot_matches_rebuilt_edge_list() {
        let g = gen::gnm(30, 60, false, 5);
        let mut dg = DynamicGraph::from_graph(&g);
        dg.apply(&[EdgeUpdate::Insert(0, 29), EdgeUpdate::Insert(1, 28)])
            .unwrap();
        let snap = dg.snapshot();
        assert_eq!(snap.m(), dg.m());
        let view = dg.delta_view();
        assert_eq!(view.nnz(), dg.m());
        let rebuilt = snap.to_csc();
        for j in 0..30 {
            let mut cols: Vec<u32> = Vec::new();
            view.for_col(j, |r| cols.push(r));
            assert_eq!(cols.as_slice(), rebuilt.column(j), "column {j}");
        }
    }

    #[test]
    fn update_plan_escalates_past_the_full_fraction() {
        let g = gen::gnm(40, 120, false, 9);
        let opts = BcOptions::builder().build();
        let sources: Vec<u32> = (0..8).collect();
        let mut dbc = DynamicBc::new(&g, &sources, opts).unwrap();
        // A hub insert touching low-numbered vertices dirties blocks;
        // with update_full_fraction = 0 every dirty batch escalates.
        dbc.options.execution.cost.update_full_fraction = 0.0;
        let r = dbc.apply_updates(&[EdgeUpdate::Insert(0, 39)]).unwrap();
        if r.dirty_blocks > 0 {
            assert_eq!(r.strategy, "full");
            assert_eq!(r.recomputed_blocks, r.total_blocks);
        }
    }

    #[test]
    fn empty_batch_is_a_noop_run() {
        let g = path5();
        let mut dbc = DynamicBc::new(&g, &[0, 4], BcOptions::builder().build()).unwrap();
        let before = dbc.bc().to_vec();
        let r = dbc.apply_updates(&[]).unwrap();
        assert_eq!(r.strategy, "noop");
        assert_eq!(dbc.bc(), before.as_slice());
    }
}

//! Multi-GPU BC on the simulator: 1D column partitioning across `p`
//! devices with bulk-synchronous frontier exchange — the scalability
//! frontier the paper's related work (Pan et al., *Multi-GPU Graph
//! Analytics* [16]) explores and its future work targets.
//!
//! Partitioning and exchanges:
//!
//! * Columns are split into `p` contiguous ranges balanced by stored
//!   entries; each device keeps the CSC slice of its columns (row ids
//!   stay global).
//! * Per-vertex state is **partitioned** (σ, S, δ, δ_ut, bc) except the
//!   vectors the SpMV gathers from, which are **replicated**: `f` in
//!   the forward stage and `δ_u` in the backward stage. After each
//!   level every device broadcasts its partition — an *allgather* of
//!   `(p−1) · n_local` elements per device, charged to the
//!   [`Interconnect`].
//! * For directed graphs the backward SpMV scatters to global rows, so
//!   each device produces a full-length partial `δ_ut` and a
//!   *reduce-scatter* folds the partials onto the owning partitions —
//!   the extra `n`-length partial per device is the textbook cost of 1D
//!   partitioning, visible in the per-device memory report.
//!
//! The modelled time is `max_d(compute_d) + transfer` (balanced
//! bulk-synchronous rounds); exact per-level interleaving is not
//! modelled. Results are bit-identical to the single-device engine —
//! asserted in the tests.
//!
//! # Fault tolerance
//!
//! [`bc_multi_gpu_faulty`] accepts per-device [`FaultPlan`]s (armed on
//! each device at creation; arm the link with
//! [`Interconnect::with_faults`] before calling) and a
//! [`RecoveryPolicy`]:
//!
//! * transient kernel faults retry in place with bounded backoff;
//! * dropped/corrupted frontier exchanges retry — the payload is only
//!   applied after a successful transfer, so a dropped exchange never
//!   leaks half-updated replicas;
//! * a **lost device** aborts the in-flight source, its column
//!   partition is requeued onto the survivors (repartitioning the CSC
//!   over the remaining devices), the accumulated `bc` is restored from
//!   the host mirror of the last completed source, and the in-flight
//!   source reruns — output stays bit-identical because the partitioned
//!   computation is independent of the partition layout.

use crate::error::TurboBcError;
use crate::options::RecoveryPolicy;
use crate::result::RecoveryLog;
use crate::simt_engine::{kernels, retry_kernel};
use turbobc_graph::{Graph, VertexId};
use turbobc_simt::{
    Device, DeviceBuffer, DeviceError, DeviceProps, FaultPlan, Interconnect, LinkError,
    MemoryReport, MetricsRegistry,
};
use turbobc_sparse::Csc;

/// Report from a multi-GPU run.
#[derive(Debug, Clone)]
pub struct MultiGpuReport {
    /// Devices that finished the run (initial count minus lost ones).
    pub devices: usize,
    /// Per-device kernel metrics.
    pub per_device: Vec<MetricsRegistry>,
    /// Per-device memory snapshots (peak shows the replication cost).
    pub per_device_memory: Vec<MemoryReport>,
    /// Interconnect transfer count.
    pub transfers: u64,
    /// Interconnect bytes moved.
    pub transfer_bytes: u64,
    /// Modelled compute time: `max` over devices (balanced BSP rounds).
    pub modelled_compute_s: f64,
    /// Modelled interconnect time.
    pub modelled_transfer_s: f64,
    /// Modelled total (`compute + transfer`).
    pub modelled_time_s: f64,
    /// What the recovery policy absorbed (retries, requeues).
    pub recovery: RecoveryLog,
}

impl MultiGpuReport {
    /// Folds this report into a [`crate::observe::RunProfile`]: each
    /// device's kernel registry merges under a `gpuN/` prefix and the
    /// recovery log lands in the timeline. `n`/`m`/`sources` describe the
    /// run (the report itself only holds device-side state).
    pub fn run_profile(&self, n: usize, m: usize, sources: usize) -> crate::observe::RunProfile {
        let mut profile = crate::observe::RunProfile {
            engine: "multi_gpu_1d".to_string(),
            kernel: "scCSC".to_string(),
            n,
            m,
            sources,
            attempts: 1,
            elapsed_s: self.modelled_time_s,
            ..Default::default()
        };
        for (i, registry) in self.per_device.iter().enumerate() {
            profile.absorb_registry(&format!("gpu{i}/"), registry);
        }
        profile.absorb_recovery_log(&self.recovery);
        profile
    }
}

/// One device's partition state.
struct Part {
    device: Device,
    /// Global column range `[lo, hi)` this device owns.
    lo: usize,
    hi: usize,
    /// Local CSC: `hi - lo` columns, global row ids.
    cp: DeviceBuffer<u32>,
    rows: DeviceBuffer<u32>,
    sigma: DeviceBuffer<i64>,
    depths: DeviceBuffer<u32>,
    bc: DeviceBuffer<f64>,
    count: DeviceBuffer<i64>,
    /// Replicated frontier (global length).
    f_rep: DeviceBuffer<i64>,
    /// Local frontier output of the update kernel.
    f_t: DeviceBuffer<i64>,
    f_part: DeviceBuffer<i64>,
}

fn partition_columns(csc: &Csc, p: usize) -> Vec<(usize, usize)> {
    let n = csc.n_cols();
    let total = csc.nnz().max(1);
    let target = total.div_ceil(p);
    let mut cuts = Vec::with_capacity(p);
    let mut lo = 0usize;
    let mut acc = 0usize;
    for j in 0..n {
        acc += csc.column_len(j);
        if acc >= target && cuts.len() + 1 < p {
            cuts.push((lo, j + 1));
            lo = j + 1;
            acc = 0;
        }
    }
    cuts.push((lo, n));
    while cuts.len() < p {
        cuts.push((n, n));
    }
    cuts
}

/// Distributes the CSC over `devices`, allocating each partition's
/// structure and state. Consumes the devices (they move into the parts).
fn build_parts(csc: &Csc, devices: Vec<Device>, n: usize) -> Result<Vec<Part>, TurboBcError> {
    let p = devices.len();
    let ranges = partition_columns(csc, p);
    let mut parts: Vec<Part> = Vec::with_capacity(p);
    for (device, &(lo, hi)) in devices.into_iter().zip(&ranges) {
        let local_n = hi - lo;
        let base = csc.col_ptr()[lo];
        let cp_host: Vec<u32> = csc.col_ptr()[lo..=hi]
            .iter()
            .map(|&x| (x - base) as u32)
            .collect();
        let rows_host: Vec<u32> = csc.row_idx()[base..csc.col_ptr()[hi]].to_vec();
        let cp = device.alloc_from(&cp_host)?;
        let rows = device.alloc_from(&rows_host)?;
        let sigma = device.alloc::<i64>(local_n)?;
        let depths = device.alloc::<u32>(local_n)?;
        let bc = device.alloc::<f64>(local_n)?;
        let count = device.alloc::<i64>(1)?;
        let f_rep = device.alloc::<i64>(n)?;
        let f_t = device.alloc::<i64>(local_n)?;
        let f_part = device.alloc::<i64>(local_n)?;
        parts.push(Part {
            device,
            lo,
            hi,
            cp,
            rows,
            sigma,
            depths,
            bc,
            count,
            f_rep,
            f_t,
            f_part,
        });
    }
    Ok(parts)
}

/// Retries a frontier exchange on drop/corrupt faults. The caller must
/// only apply the payload after this returns `Ok` — a failed transfer
/// moved no usable data.
pub(crate) fn transfer_with_retry(
    link: &mut Interconnect,
    bytes: u64,
    policy: &RecoveryPolicy,
    log: &mut RecoveryLog,
) -> Result<(), LinkError> {
    let mut attempt = 0u32;
    loop {
        match link.try_transfer(bytes) {
            Ok(()) => return Ok(()),
            Err(_) if attempt < policy.max_link_retries => {
                log.link_retries += 1;
                let delay = policy.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs one source to completion across the current partition layout.
/// On any error the caller owns cleanup; in particular a
/// [`DeviceError::DeviceLost`] means partial per-source state is stale
/// and the source must be rerun after requeueing.
#[allow(clippy::too_many_arguments)]
fn run_source(
    parts: &mut [Part],
    link: &mut Interconnect,
    n: usize,
    symmetric: bool,
    scale: f64,
    source: VertexId,
    policy: &RecoveryPolicy,
    log: &mut RecoveryLog,
) -> Result<(), TurboBcError> {
    let p = parts.len();
    // Init: clear partitions, seed the source on its owner + the
    // replicated frontier everywhere.
    for part in parts.iter_mut() {
        retry_kernel(policy, &mut log.kernel_retries, || {
            kernels::clear(&part.device, "clear_sigma", &mut part.sigma.dslice_mut())
        })?;
        retry_kernel(policy, &mut log.kernel_retries, || {
            kernels::clear(&part.device, "clear_depths", &mut part.depths.dslice_mut())
        })?;
        retry_kernel(policy, &mut log.kernel_retries, || {
            kernels::clear(&part.device, "clear_frontier", &mut part.f_rep.dslice_mut())
        })?;
        retry_kernel(policy, &mut log.kernel_retries, || {
            kernels::clear(&part.device, "clear_fpart", &mut part.f_part.dslice_mut())
        })?;
        part.f_rep.host_mut()[source as usize] = 1;
        if (part.lo..part.hi).contains(&(source as usize)) {
            let local = source as usize - part.lo;
            part.sigma.host_mut()[local] = 1;
            part.depths.host_mut()[local] = 1;
        }
    }

    let mut d = 1u32;
    loop {
        let mut total_count = 0i64;
        for part in parts.iter_mut() {
            // Forward masked SpMV over the local columns.
            retry_kernel(policy, &mut log.kernel_retries, || {
                kernels::forward_sccsc(
                    &part.device,
                    &part.cp.dslice(),
                    &part.rows.dslice(),
                    &part.sigma.dslice(),
                    &part.f_rep.dslice(),
                    &mut part.f_t.dslice_mut(),
                )
            })?;
            part.count.fill(0);
            retry_kernel(policy, &mut log.kernel_retries, || {
                kernels::bfs_update(
                    &part.device,
                    &mut part.f_t.dslice_mut(),
                    &mut part.sigma.dslice_mut(),
                    &mut part.depths.dslice_mut(),
                    &mut part.f_part.dslice_mut(),
                    d + 1,
                    &mut part.count.dslice_mut(),
                )
            })?;
            total_count += part.count.host()[0];
        }
        // Allgather the frontier partitions into every replica. The
        // assembled payload lands in a replica only after its transfer
        // succeeds.
        let mut assembled = vec![0i64; n];
        for part in parts.iter() {
            assembled[part.lo..part.hi].copy_from_slice(part.f_part.host());
        }
        for part in parts.iter_mut() {
            // Each device receives every other partition.
            let recv = (n - (part.hi - part.lo)) as u64 * 8;
            if p > 1 {
                transfer_with_retry(link, recv, policy, log)?;
            }
            part.f_rep.host_mut().copy_from_slice(&assembled);
        }
        if total_count == 0 {
            break;
        }
        d += 1;
    }
    let height = d;

    // ---- Backward stage. ----
    // Replicated δ_u (global); partitioned δ, δ_ut, reusing the
    // frontier buffers' devices for allocation accounting.
    let mut delta_parts: Vec<DeviceBuffer<f64>> = Vec::with_capacity(p);
    let mut delta_u_reps: Vec<DeviceBuffer<f64>> = Vec::with_capacity(p);
    let mut delta_ut_parts: Vec<DeviceBuffer<f64>> = Vec::with_capacity(p);
    for part in parts.iter() {
        let local_n = part.hi - part.lo;
        delta_parts.push(part.device.alloc::<f64>(local_n)?);
        if symmetric {
            // Only the gather path reads δ_u at global rows.
            delta_u_reps.push(part.device.alloc::<f64>(n)?);
        }
        // Directed graphs need a full-length partial for the scatter.
        let ut_len = if symmetric { local_n } else { n };
        delta_ut_parts.push(part.device.alloc::<f64>(ut_len)?);
    }
    let mut depth = height;
    while depth > 1 {
        // Seed δ_u on each partition.
        let mut local_dus: Vec<DeviceBuffer<f64>> = Vec::with_capacity(p);
        for (i, part) in parts.iter_mut().enumerate() {
            let local_n = part.hi - part.lo;
            let mut local_du = part.device.alloc::<f64>(local_n)?;
            retry_kernel(policy, &mut log.kernel_retries, || {
                kernels::bwd_seed(
                    &part.device,
                    &part.depths.dslice(),
                    &part.sigma.dslice(),
                    &delta_parts[i].dslice(),
                    depth,
                    &mut local_du.dslice_mut(),
                )
            })?;
            local_dus.push(local_du);
        }
        // Backward SpMV per device.
        if symmetric {
            // The gather reads δ_u at *global* row ids: allgather the
            // partitions into every replica first.
            let mut assembled = vec![0.0f64; n];
            for (part, du) in parts.iter().zip(&local_dus) {
                assembled[part.lo..part.hi].copy_from_slice(du.host());
            }
            for (i, part) in parts.iter().enumerate() {
                if p > 1 {
                    transfer_with_retry(link, (n - (part.hi - part.lo)) as u64 * 8, policy, log)?;
                }
                delta_u_reps[i].host_mut().copy_from_slice(&assembled);
            }
            for (i, part) in parts.iter().enumerate() {
                retry_kernel(policy, &mut log.kernel_retries, || {
                    kernels::backward_sccsc_gather(
                        &part.device,
                        &part.cp.dslice(),
                        &part.rows.dslice(),
                        &delta_u_reps[i].dslice(),
                        &mut delta_ut_parts[i].dslice_mut(),
                    )
                })?;
            }
        } else {
            // The scatter reads δ_u per *owned* column — no allgather
            // — and writes global rows into a full-length partial;
            // a reduce-scatter folds the partials onto the owners.
            for (i, part) in parts.iter().enumerate() {
                delta_ut_parts[i].fill(0.0);
                retry_kernel(policy, &mut log.kernel_retries, || {
                    kernels::backward_sccsc_scatter(
                        &part.device,
                        &part.cp.dslice(),
                        &part.rows.dslice(),
                        &local_dus[i].dslice(),
                        &mut delta_ut_parts[i].dslice_mut(),
                    )
                })?;
            }
            let mut reduced = vec![0.0f64; n];
            for dut in delta_ut_parts.iter() {
                for (acc, &x) in reduced.iter_mut().zip(dut.host()) {
                    *acc += x;
                }
            }
            for (i, part) in parts.iter().enumerate() {
                // Each device sends its partials of the other
                // partitions.
                if p > 1 {
                    transfer_with_retry(link, (n - (part.hi - part.lo)) as u64 * 8, policy, log)?;
                }
                let host = delta_ut_parts[i].host_mut();
                host[..n].copy_from_slice(&reduced);
            }
        }
        // Accumulate δ on the owned columns.
        for (i, part) in parts.iter_mut().enumerate() {
            // For the directed path δ_ut is full-length: view the
            // owned slice.
            let local_n = part.hi - part.lo;
            let mut owned = part.device.alloc::<f64>(local_n)?;
            if symmetric {
                owned.host_mut().copy_from_slice(delta_ut_parts[i].host());
            } else {
                owned
                    .host_mut()
                    .copy_from_slice(&delta_ut_parts[i].host()[part.lo..part.hi]);
            }
            retry_kernel(policy, &mut log.kernel_retries, || {
                kernels::bwd_accum(
                    &part.device,
                    &part.depths.dslice(),
                    &part.sigma.dslice(),
                    &mut owned.dslice_mut(),
                    depth,
                    &mut delta_parts[i].dslice_mut(),
                )
            })?;
        }
        depth -= 1;
    }
    // BC accumulation on owned columns.
    for (i, part) in parts.iter_mut().enumerate() {
        let local_source = if (part.lo..part.hi).contains(&(source as usize)) {
            source as usize - part.lo
        } else {
            usize::MAX
        };
        let n_local = part.hi - part.lo;
        let src = if local_source == usize::MAX {
            n_local
        } else {
            local_source
        };
        retry_kernel(policy, &mut log.kernel_retries, || {
            kernels::bc_accum(
                &part.device,
                &delta_parts[i].dslice(),
                src,
                scale,
                &mut part.bc.dslice_mut(),
            )
        })?;
    }
    Ok(())
}

/// Runs BC for `sources` across `p` simulated devices (scCSC mapping).
/// Fails with OOM if any device's share does not fit. Fault-free entry
/// point; see [`bc_multi_gpu_faulty`] for injection and recovery knobs.
pub fn bc_multi_gpu(
    graph: &Graph,
    sources: &[VertexId],
    p: usize,
    props: DeviceProps,
    link: Interconnect,
) -> Result<(Vec<f64>, MultiGpuReport), TurboBcError> {
    bc_multi_gpu_faulty(
        graph,
        sources,
        p,
        props,
        link,
        &[],
        &RecoveryPolicy::default(),
    )
}

/// [`bc_multi_gpu`] with fault injection and recovery.
///
/// `device_plans[i]` is armed on device `i` (missing entries mean no
/// faults); arm link faults on the `link` with
/// [`Interconnect::with_faults`] before calling. The policy bounds the
/// kernel/link retry budgets; a lost device triggers a requeue of its
/// partition onto the survivors ([`TurboBcError::AllDevicesLost`] when
/// none remain). The recovery log lands in the report.
pub fn bc_multi_gpu_faulty(
    graph: &Graph,
    sources: &[VertexId],
    p: usize,
    props: DeviceProps,
    mut link: Interconnect,
    device_plans: &[FaultPlan],
    policy: &RecoveryPolicy,
) -> Result<(Vec<f64>, MultiGpuReport), TurboBcError> {
    if p == 0 {
        return Err(TurboBcError::NoDevices);
    }
    for &s in sources {
        if s as usize >= graph.n() {
            return Err(TurboBcError::InvalidSource {
                source: s,
                n: graph.n(),
            });
        }
    }
    let n = graph.n();
    let csc = graph.to_csc();
    let symmetric = !graph.directed();
    let scale = graph.bc_scale();

    let mut devices = Vec::with_capacity(p);
    for i in 0..p {
        let device = Device::new(props);
        if let Some(plan) = device_plans.get(i) {
            device.install_faults(plan.clone());
        }
        devices.push(device);
    }
    let mut parts = build_parts(&csc, devices, n)?;
    let mut log = RecoveryLog::default();

    // Host mirror of the accumulated bc as of the last *completed*
    // source — the restore point for device-loss requeues.
    let mut bc_mirror = vec![0.0f64; n];
    let mut idx = 0usize;
    while idx < sources.len() && n > 0 {
        let source = sources[idx];
        match run_source(
            &mut parts, &mut link, n, symmetric, scale, source, policy, &mut log,
        ) {
            Ok(()) => {
                for part in parts.iter() {
                    bc_mirror[part.lo..part.hi].copy_from_slice(part.bc.host());
                }
                idx += 1;
            }
            Err(TurboBcError::Device(DeviceError::DeviceLost)) => {
                // Requeue: drop lost devices, repartition the columns
                // over the survivors, restore bc from the mirror and
                // rerun the in-flight source.
                let survivors: Vec<Device> = parts
                    .drain(..)
                    .filter(|part| !part.device.is_lost())
                    .map(|part| part.device)
                    .collect();
                if survivors.is_empty() {
                    return Err(TurboBcError::AllDevicesLost);
                }
                log.device_requeues += 1;
                parts = build_parts(&csc, survivors, n)?;
                for part in parts.iter_mut() {
                    part.bc
                        .host_mut()
                        .copy_from_slice(&bc_mirror[part.lo..part.hi]);
                }
            }
            Err(e) => return Err(e),
        }
    }

    // Assemble outputs + report.
    let mut bc = vec![0.0f64; n];
    for part in parts.iter() {
        bc[part.lo..part.hi].copy_from_slice(part.bc.host());
    }
    let per_device: Vec<MetricsRegistry> = parts.iter().map(|p| p.device.metrics()).collect();
    let per_device_memory: Vec<MemoryReport> = parts.iter().map(|p| p.device.memory()).collect();
    let modelled_compute_s = parts
        .iter()
        .map(|part| {
            let m = part.device.metrics();
            let t = part.device.timing();
            m.iter().map(|(_, s)| t.kernel_time_s(s)).sum::<f64>()
        })
        .fold(0.0f64, f64::max);
    let modelled_transfer_s = link.modelled_time_s();
    let report = MultiGpuReport {
        devices: parts.len(),
        per_device,
        per_device_memory,
        transfers: link.transfers(),
        transfer_bytes: link.bytes(),
        modelled_compute_s,
        modelled_transfer_s,
        modelled_time_s: modelled_compute_s + modelled_transfer_s,
        recovery: log,
    };
    Ok((bc, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_baselines::brandes_single_source;
    use turbobc_graph::gen;

    fn check(g: &Graph, p: usize) -> MultiGpuReport {
        let s = g.default_source();
        let (bc, report) =
            bc_multi_gpu(g, &[s], p, DeviceProps::titan_xp(), Interconnect::pcie3()).unwrap();
        let want = brandes_single_source(g, s);
        for (v, (a, b)) in bc.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "p={p} bc[{v}]: {a} vs {b}");
        }
        report
    }

    #[test]
    fn matches_oracle_on_undirected_graph_for_all_device_counts() {
        let g = gen::small_world(140, 3, 0.2, 6);
        for p in [1, 2, 3, 4] {
            let r = check(&g, p);
            assert_eq!(r.devices, p);
            assert!(r.recovery.is_clean());
        }
    }

    #[test]
    fn matches_oracle_on_directed_graph() {
        let g = gen::gnm(100, 320, true, 21);
        for p in [1, 2, 3] {
            check(&g, p);
        }
    }

    #[test]
    fn single_device_makes_no_transfers() {
        let g = gen::gnm(60, 200, false, 2);
        let r = check(&g, 1);
        assert_eq!(r.transfers, 0);
        assert_eq!(r.transfer_bytes, 0);
    }

    #[test]
    fn transfers_grow_with_device_count() {
        let g = gen::small_world(200, 4, 0.1, 3);
        let r2 = check(&g, 2);
        let r4 = check(&g, 4);
        assert!(r2.transfer_bytes > 0);
        assert!(
            r4.transfer_bytes > r2.transfer_bytes,
            "{} vs {}",
            r4.transfer_bytes,
            r2.transfer_bytes
        );
    }

    #[test]
    fn per_device_memory_shrinks_but_replication_floors_it() {
        let g = gen::delaunay(1200, 5);
        let r1 = check(&g, 1);
        let r4 = check(&g, 4);
        let peak1 = r1.per_device_memory[0].peak;
        let peak4 = r4.per_device_memory.iter().map(|m| m.peak).max().unwrap();
        assert!(
            peak4 < peak1,
            "partitioning must shed memory: {peak4} vs {peak1}"
        );
        // …but not by 4x: f and δ_u stay replicated (the 1D limitation).
        assert!(
            peak4 * 3 > peak1,
            "replication floors the saving: {peak4} vs {peak1}"
        );
    }

    #[test]
    fn multi_source_accumulates() {
        let g = gen::gnm(70, 240, false, 9);
        let (bc, _) = bc_multi_gpu(
            &g,
            &[0, 5, 9],
            2,
            DeviceProps::titan_xp(),
            Interconnect::nvlink(),
        )
        .unwrap();
        let mut want = vec![0.0; g.n()];
        for s in [0u32, 5, 9] {
            for (acc, x) in want.iter_mut().zip(brandes_single_source(&g, s)) {
                *acc += x;
            }
        }
        for (a, b) in bc.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_devices_is_an_error() {
        let g = gen::gnm(20, 60, false, 1);
        assert!(matches!(
            bc_multi_gpu(&g, &[0], 0, DeviceProps::titan_xp(), Interconnect::pcie3()),
            Err(TurboBcError::NoDevices)
        ));
    }

    #[test]
    fn dropped_exchanges_are_retried_bit_identically() {
        let g = gen::small_world(120, 3, 0.2, 8);
        let s = g.default_source();
        let (clean, _) =
            bc_multi_gpu(&g, &[s], 3, DeviceProps::titan_xp(), Interconnect::pcie3()).unwrap();
        let link = Interconnect::pcie3().with_faults(
            FaultPlan::new(11)
                .drop_transfer_at(0)
                .corrupt_transfer_at(5),
        );
        let (bc, report) = bc_multi_gpu_faulty(
            &g,
            &[s],
            3,
            DeviceProps::titan_xp(),
            link,
            &[],
            &RecoveryPolicy {
                backoff_base_us: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.recovery.link_retries, 2);
        assert_eq!(bc, clean, "retried exchanges must not perturb the result");
    }

    #[test]
    fn kernel_faults_are_retried_bit_identically() {
        let g = gen::gnm(90, 280, false, 17);
        let s = g.default_source();
        let (clean, _) =
            bc_multi_gpu(&g, &[s], 2, DeviceProps::titan_xp(), Interconnect::pcie3()).unwrap();
        let plans = vec![
            FaultPlan::new(5).fail_launch_at(3),
            FaultPlan::new(6).fail_launch_at(10),
        ];
        let (bc, report) = bc_multi_gpu_faulty(
            &g,
            &[s],
            2,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
            &plans,
            &RecoveryPolicy {
                backoff_base_us: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.recovery.kernel_retries, 2);
        assert_eq!(bc, clean);
    }

    #[test]
    fn lost_device_requeues_onto_survivors_bit_identically() {
        let g = gen::small_world(150, 3, 0.15, 4);
        let sources = [g.default_source(), 3, 40];
        let (clean, _) = bc_multi_gpu(
            &g,
            &sources,
            3,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
        )
        .unwrap();
        // Device 1 dies partway through the run.
        let plans = vec![
            FaultPlan::new(9),
            FaultPlan::new(10).lose_device_at_launch(30),
        ];
        let (bc, report) = bc_multi_gpu_faulty(
            &g,
            &sources,
            3,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
            &plans,
            &RecoveryPolicy {
                backoff_base_us: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.recovery.device_requeues, 1);
        assert_eq!(report.devices, 2, "the lost device must not come back");
        assert_eq!(bc, clean, "requeued run must be bit-identical");
    }

    #[test]
    fn losing_every_device_is_fatal() {
        let g = gen::gnm(40, 120, false, 5);
        let plans = vec![
            FaultPlan::new(1).lose_device_at_launch(2),
            FaultPlan::new(2).lose_device_at_launch(2),
        ];
        let err = bc_multi_gpu_faulty(
            &g,
            &[0],
            2,
            DeviceProps::titan_xp(),
            Interconnect::pcie3(),
            &plans,
            &RecoveryPolicy {
                backoff_base_us: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, TurboBcError::AllDevicesLost);
    }
}

//! The hybrid per-level executor: one traversal scheduled CPU↔device.
//!
//! Mishra et al. (PAPERS.md) observe that a BC traversal splits
//! profitably *within* a source: the first and last levels touch a
//! handful of vertices — host-cache territory — while the middle levels
//! of small-world graphs hold most of the graph and are exactly what the
//! SIMT pull kernels are built for. The driver here mirrors the
//! sequential engine ([`crate::seq::bc_source_seq_traced`]) level for
//! level, but at the top of every level consults the [`CostModel`]: when
//! the frontier has entered its dense band (and the footprint admits the
//! device), the `f`/σ/depth state is imported onto the device,
//! [`crate::simt_engine`] pull levels run until the frontier thins past
//! the exit threshold, and the state is exported back for the CPU tail.
//!
//! The backward (dependency) stage always runs on the host: its float
//! arithmetic is order-sensitive, and keeping it on one executor makes a
//! hybrid run bit-identical to the sequential engine — the property the
//! handoff proptests pin down.

use crate::dispatch::CostModel;
use crate::error::TurboBcError;
use crate::frontier::{DirectionEngine, DirectionMode, LevelDirection, LevelReport};
use crate::observe::{Observer, TraceEvent};
use crate::options::{Kernel, RecoveryPolicy};
use crate::seq::{SeqScratch, SourceRun, Storage};
use crate::simt_engine::forward_levels_simt;
use turbobc_simt::Device;
use turbobc_sparse::ops;

/// Everything the per-level driver needs that is fixed across sources.
pub(crate) struct HybridCtx<'a> {
    pub storage: &'a Storage,
    pub dir: &'a DirectionEngine,
    pub kernel: Kernel,
    pub policy: &'a RecoveryPolicy,
    /// `None` when the footprint model rejected the device — the driver
    /// then degenerates to the pure sequential engine.
    pub device: Option<&'a Device>,
    pub cost: &'a CostModel,
}

/// Runs Algorithm 1 for one source with per-level executor dispatch,
/// accumulating into `bc`. Emits [`TraceEvent::Dispatch`] at every
/// executor *transition* (depth granularity `"level"`) and forwards
/// per-level reports through `on_level` exactly like the sequential
/// engine. Returns the absorbed kernel-retry count alongside the run.
#[allow(clippy::too_many_arguments)] // one arg per Algorithm-1 vector
pub(crate) fn bc_source_hybrid(
    ctx: &HybridCtx<'_>,
    source: usize,
    scale: f64,
    bc: &mut [f64],
    sigma: &mut [i64],
    depths: &mut [u32],
    scratch: &mut SeqScratch,
    retries: &mut u64,
    obs: &mut dyn Observer,
    on_level: &mut dyn FnMut(LevelReport),
) -> Result<SourceRun, TurboBcError> {
    let storage = ctx.storage;
    let dir = ctx.dir;
    let n = storage.n();
    let m = storage.m();
    debug_assert_eq!(bc.len(), n);
    sigma.fill(0);
    depths.fill(ops::UNDISCOVERED);
    if n == 0 {
        return Ok(SourceRun {
            height: 0,
            reached: 0,
        });
    }

    let SeqScratch {
        f,
        f_t,
        frontier_list,
        delta,
        delta_u,
        delta_ut,
    } = scratch;
    f.fill(0);
    f[source] = 1;
    sigma[source] = 1;
    depths[source] = 1;
    let mut d = 1u32;
    let mut reached = 1usize;
    frontier_list.clear();
    let mut have_list = dir.needs_sparse();
    if have_list {
        frontier_list.push(source as u32);
    }
    let mut frontier_len = 1usize;
    loop {
        // ---- Dispatch decision: does the next level run on the device?
        // (No sticky flag needed: a segment always hands back with the
        // frontier under dense-exit, below the dense-enter threshold.)
        if let Some(device) = ctx.device {
            if ctx.cost.enter_device(frontier_len, n, m) {
                obs.event(TraceEvent::Dispatch {
                    granularity: "level",
                    executor: "simt",
                    source: source as u32,
                    depth: d + 1,
                    frontier: frontier_len,
                    reason: format!(
                        "frontier {frontier_len}/{n} past dense-enter {:.3}",
                        ctx.cost.dense_enter
                    ),
                });
                let seg = forward_levels_simt(
                    device,
                    storage,
                    ctx.kernel,
                    ctx.policy,
                    f,
                    sigma,
                    depths,
                    d,
                    &mut |_, count| ctx.cost.keep_device(count, n),
                )?;
                *retries += seg.kernel_retries;
                for &count in &seg.levels {
                    d += 1;
                    reached += count;
                    frontier_len = count;
                    on_level(LevelReport {
                        depth: d,
                        frontier: count,
                        // Device levels are always the paper's pull.
                        direction: LevelDirection::Pull,
                        frontier_edges: 0,
                    });
                }
                if seg.done {
                    break;
                }
                // Hand back to the CPU for the sparse tail.
                obs.event(TraceEvent::Dispatch {
                    granularity: "level",
                    executor: "cpu",
                    source: source as u32,
                    depth: d + 1,
                    frontier: frontier_len,
                    reason: format!(
                        "frontier {frontier_len}/{n} under dense-exit {:.3}",
                        ctx.cost.dense_exit
                    ),
                });
                have_list = dir.needs_sparse()
                    && (matches!(dir.mode(), DirectionMode::PushOnly)
                        || frontier_len <= dir.threshold());
                if have_list {
                    frontier_list.clear();
                    frontier_list.extend(
                        f.iter()
                            .enumerate()
                            .filter(|(_, &v)| v != 0)
                            .map(|(i, _)| i as u32),
                    );
                }
                continue;
            }
        }

        // ---- CPU level: identical to the sequential engine. ----
        let frontier_edges = if have_list {
            dir.frontier_edges(frontier_list)
        } else {
            0
        };
        let direction = dir.choose(frontier_len, frontier_edges, have_list);
        f_t.fill(0);
        match direction {
            LevelDirection::Push => dir.push_seq(frontier_list, f, f_t),
            LevelDirection::Pull => storage.forward(f, sigma, f_t),
        }
        let count = ops::mask_new_frontier(f_t, sigma, f);
        if count == 0 {
            break;
        }
        d += 1;
        ops::update_sigma_depth(f, d, depths, sigma);
        reached += count;
        have_list = dir.needs_sparse()
            && (matches!(dir.mode(), DirectionMode::PushOnly) || count <= dir.threshold());
        if have_list {
            frontier_list.clear();
            frontier_list.extend(
                f.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, _)| i as u32),
            );
        }
        frontier_len = count;
        on_level(LevelReport {
            depth: d,
            frontier: count,
            direction,
            frontier_edges,
        });
    }
    let height = d;

    // ---- Backward stage: always the host (see module docs). ----
    delta.fill(0.0);
    let mut depth = height;
    while depth > 1 {
        ops::seed_delta_u(depths, sigma, delta, depth, delta_u);
        delta_ut.fill(0.0);
        storage.backward(delta_u, delta_ut);
        ops::accumulate_delta(depths, sigma, delta_ut, depth, delta);
        depth -= 1;
    }
    ops::accumulate_bc(delta, source, scale, bc);
    Ok(SourceRun { height, reached })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use crate::seq::bc_source_seq_traced;
    use turbobc_graph::{gen, Graph};
    use turbobc_simt::Device;

    fn hybrid_vs_seq(graph: &Graph, cost: &CostModel, with_device: bool) -> (Vec<f64>, Vec<f64>) {
        let n = graph.n();
        let storage = Storage::Csc(graph.to_csc());
        let dir = DirectionEngine::new(graph, DirectionMode::PullOnly);
        let policy = RecoveryPolicy::default();
        let device = Device::titan_xp();
        let ctx = HybridCtx {
            storage: &storage,
            dir: &dir,
            kernel: Kernel::ScCsc,
            policy: &policy,
            device: with_device.then_some(&device),
            cost,
        };
        let mut bc_h = vec![0.0; n];
        let mut bc_s = vec![0.0; n];
        let (mut sigma, mut depths) = (vec![0i64; n], vec![0u32; n]);
        let (mut sigma_s, mut depths_s) = (vec![0i64; n], vec![0u32; n]);
        let mut scratch = SeqScratch::new(n);
        let mut retries = 0u64;
        for s in 0..n.min(8) {
            let hr = bc_source_hybrid(
                &ctx,
                s,
                graph.bc_scale(),
                &mut bc_h,
                &mut sigma,
                &mut depths,
                &mut scratch,
                &mut retries,
                &mut NullObserver,
                &mut |_| {},
            )
            .unwrap();
            let sr = bc_source_seq_traced(
                &storage,
                &dir,
                s,
                graph.bc_scale(),
                &mut bc_s,
                &mut sigma_s,
                &mut depths_s,
                &mut SeqScratch::new(n),
                None,
                &mut |_| {},
            );
            assert_eq!(hr.height, sr.height, "source {s}");
            assert_eq!(hr.reached, sr.reached, "source {s}");
            assert_eq!(sigma, sigma_s, "σ must survive the handoff, source {s}");
            assert_eq!(depths, depths_s, "depths must survive the handoff");
        }
        (bc_h, bc_s)
    }

    #[test]
    fn hybrid_without_device_is_the_sequential_engine() {
        let g = gen::rmat(7, 6, 11);
        let (h, s) = hybrid_vs_seq(&g, &CostModel::default(), false);
        assert_eq!(h, s);
    }

    #[test]
    fn device_segments_preserve_bc_exactly() {
        // The biased model actually enters device segments on these
        // graphs; the result must still be bit-identical to sequential.
        let cost = CostModel::device_biased();
        for g in [
            gen::rmat(7, 6, 3),
            gen::preferential_attachment(150, 3, 5),
            gen::delaunay(120, 9),
        ] {
            let (h, s) = hybrid_vs_seq(&g, &cost, true);
            assert_eq!(h, s, "hybrid BC diverged from sequential");
        }
    }

    #[test]
    fn biased_model_emits_simt_level_dispatch_events() {
        use crate::observe::ProfileObserver;
        let g = gen::preferential_attachment(200, 4, 7);
        let n = g.n();
        let storage = Storage::Csc(g.to_csc());
        let dir = DirectionEngine::new(&g, DirectionMode::PullOnly);
        let policy = RecoveryPolicy::default();
        let device = Device::titan_xp();
        let cost = CostModel::device_biased();
        let ctx = HybridCtx {
            storage: &storage,
            dir: &dir,
            kernel: Kernel::ScCsc,
            policy: &policy,
            device: Some(&device),
            cost: &cost,
        };
        let mut obs = ProfileObserver::new();
        let mut bc = vec![0.0; n];
        let (mut sigma, mut depths) = (vec![0i64; n], vec![0u32; n]);
        let mut retries = 0u64;
        bc_source_hybrid(
            &ctx,
            0,
            g.bc_scale(),
            &mut bc,
            &mut sigma,
            &mut depths,
            &mut SeqScratch::new(n),
            &mut retries,
            &mut obs,
            &mut |_| {},
        )
        .unwrap();
        let profile = obs.profile();
        assert!(
            profile.dispatch.iter().any(|t| t.executor == "simt"),
            "expected a device segment under the biased model: {:?}",
            profile.dispatch
        );
    }
}

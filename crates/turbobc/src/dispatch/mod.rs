//! Runtime executor dispatch: a cost model over the solver's engines.
//!
//! The paper's contribution is choosing the right SpMV *kernel* per graph
//! (scCOOC/scCSC/veCSC by `scf`, §3.1); the Beamer direction engine
//! ([`crate::frontier`]) already extends that to per-level *step* choices.
//! This module generalises both to whole **executors**: the sequential
//! and rayon CPU engines, the bit-sliced batched panels, the SIMT device
//! engine and TurboBFS are abstracted behind the [`Executor`] trait, and
//! a calibrated [`CostModel`] plans work at three granularities —
//!
//! * **run** — one executor for the whole request
//!   ([`PlanStrategy::Single`]);
//! * **source block** — sources split into panels that run on the
//!   batched executor in parallel ([`PlanStrategy::BlockParallel`]);
//! * **BFS level** — the dense middle levels of a single traversal run
//!   on the SIMT executor while the shallow head and sparse tail run on
//!   the CPU, with frontier/σ/depth state handed off across the boundary
//!   ([`PlanStrategy::Hybrid`], implemented in [`hybrid`]).
//!
//! Plans are built by [`crate::BcSolver::plan`], executed by
//! [`crate::BcSolver::execute`], and every decision is emitted as a
//! [`crate::observe::TraceEvent::Dispatch`] event so `--profile` output
//! shows the schedule next to the kernel and direction choices.
//!
//! Admission uses the paper's `7n + m` footprint model
//! ([`crate::footprint`]): an executor that would not fit the configured
//! device's global memory is never scheduled onto it.

pub(crate) mod hybrid;

use crate::error::TurboBcError;
use crate::footprint;
use crate::msbfs::MsBfsResult;
use crate::observe::Observer;
use crate::options::{Engine, Kernel};
use crate::result::{BcResult, SimtReport};
use crate::solver::BcSolver;
use std::str::FromStr;
use turbobc_graph::GraphStats;
use turbobc_simt::Device;

/// The executors the dispatcher can schedule work onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutorKind {
    /// Sequential Algorithm 1 on the host.
    CpuSequential,
    /// Rayon data-parallel engine on the host.
    CpuParallel,
    /// Bit-sliced multi-source SpMM panels (`bc_batched` lineage).
    Batched,
    /// The SIMT device simulator.
    Simt,
    /// The TurboBFS traversal engine (BFS work only — it computes no
    /// dependencies, so BC plans reject it at plan time).
    TurboBfs,
    /// Per-level CPU↔device scheduling of a single traversal.
    Hybrid,
}

impl ExecutorKind {
    /// Stable lower-case name used in profiles, CLI flags and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::CpuSequential => "seq",
            ExecutorKind::CpuParallel => "par",
            ExecutorKind::Batched => "batched",
            ExecutorKind::Simt => "simt",
            ExecutorKind::TurboBfs => "turbobfs",
            ExecutorKind::Hybrid => "hybrid",
        }
    }

    /// Parses a [`ExecutorKind::name`] spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "seq" | "sequential" => ExecutorKind::CpuSequential,
            "par" | "parallel" => ExecutorKind::CpuParallel,
            "batched" => ExecutorKind::Batched,
            "simt" => ExecutorKind::Simt,
            "turbobfs" => ExecutorKind::TurboBfs,
            "hybrid" => ExecutorKind::Hybrid,
            _ => return None,
        })
    }

    /// The dispatchable executors, in degradation-ladder order.
    pub fn all() -> &'static [ExecutorKind] {
        &[
            ExecutorKind::CpuSequential,
            ExecutorKind::CpuParallel,
            ExecutorKind::Batched,
            ExecutorKind::Simt,
            ExecutorKind::TurboBfs,
            ExecutorKind::Hybrid,
        ]
    }

    /// The pinned executor matching a legacy [`Engine`] choice.
    pub(crate) fn from_engine(engine: Engine) -> Self {
        match engine {
            Engine::Sequential => ExecutorKind::CpuSequential,
            Engine::Parallel => ExecutorKind::CpuParallel,
        }
    }
}

/// How [`crate::BcSolver::plan`] chooses executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum DispatchMode {
    /// Today's static behaviour: one executor for the whole run, taken
    /// from [`crate::BcOptions::engine`].
    #[default]
    Auto,
    /// Force one executor for the whole run.
    Pinned(ExecutorKind),
    /// Let the [`CostModel`] pick executors at run, source-block and
    /// BFS-level granularity.
    CostModel,
}

impl DispatchMode {
    /// Stable spelling matching the CLI `--dispatch` grammar:
    /// `auto`, `pinned:<executor>`, or `cost`.
    pub fn describe(&self) -> String {
        match self {
            DispatchMode::Auto => "auto".to_string(),
            DispatchMode::Pinned(k) => format!("pinned:{}", k.name()),
            DispatchMode::CostModel => "cost".to_string(),
        }
    }
}

impl FromStr for DispatchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(DispatchMode::Auto),
            "cost" => Ok(DispatchMode::CostModel),
            _ => match s.strip_prefix("pinned:") {
                Some(name) => ExecutorKind::from_name(name)
                    .map(DispatchMode::Pinned)
                    .ok_or_else(|| format!("unknown executor `{name}` (expected one of seq, par, batched, simt, turbobfs, hybrid)")),
                None => Err(format!(
                    "unknown dispatch mode `{s}` (expected auto, pinned:<executor>, or cost)"
                )),
            },
        }
    }
}

/// Calibration constants for the runtime cost model.
///
/// Times are modelled, not measured: the point of the model is *ordering*
/// executors per level and per block, which only needs relative costs.
/// The defaults are calibrated for the reproduction, where the "device"
/// is a cycle-level simulator whose wall-clock cost per edge is orders of
/// magnitude above the host's — hence the large
/// [`CostModel::simt_wall_factor`]. On real hardware that factor would
/// drop below 1. [`CostModel::device_biased`] models such hardware and is
/// what the hybrid tests pin.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct CostModel {
    /// Host cost of one masked-SpMV level, ns per (vertex + edge).
    pub cpu_seq_ns_per_edge: f64,
    /// Fraction of ideal rayon speed-up the parallel engine achieves.
    pub cpu_par_efficiency: f64,
    /// Fraction of per-source sweep cost one batched lane pays (the
    /// bit-sliced SpMM amortises index loads across the block).
    pub batched_sweep_gain: f64,
    /// Device cost of one masked-SpMV level, ns per (vertex + edge), in
    /// modelled device time.
    pub simt_ns_per_edge: f64,
    /// Wall-clock cost of one modelled device ns (1.0 on real hardware;
    /// ≫ 1 on the simulator).
    pub simt_wall_factor: f64,
    /// Cost of moving one 8-byte word of frontier/σ/depth state across
    /// the host↔device boundary, ns.
    pub handoff_ns_per_word: f64,
    /// Frontier occupancy (fraction of `n`) at which a traversal enters
    /// its dense middle and a device segment may start.
    pub dense_enter: f64,
    /// Occupancy below which a running device segment hands back to the
    /// CPU (kept below [`CostModel::dense_enter`] for hysteresis).
    pub dense_exit: f64,
    /// Source-count granularity of block planning: requests smaller than
    /// this are planned per traversal, larger ones per block.
    pub block_sources: usize,
    /// Host cache budget for one block's bit-sliced panels (σ, δ and the
    /// frontier bit-planes). Panels stream the matrix but hit these
    /// per-vertex-per-lane arrays on every level; once they spill the
    /// last-level cache the amortised index loads stop paying and the
    /// per-source engines win, so the planner only hands a block to the
    /// panels when [`CostModel::panel_bytes`] fits this budget.
    pub panel_resident_bytes: u64,
    /// Mean out-degree above which a block is kept off the panels. The
    /// sweeps amortise *index* traffic across lanes, but the σ-candidate
    /// and mask updates stay per-lane per-edge, so on dense graphs
    /// (Kronecker-style, mean degree ≫ 16) the level-by-level panel
    /// sweeps lose to one direction-optimised pass per source.
    pub panel_degree_max: f64,
    /// Dirty-block fraction at which an incremental update gives up and
    /// recomputes every block ([`crate::dynamic`]): past this point the
    /// per-block bookkeeping buys nothing over a clean full run, and a
    /// full run also refreshes the whole cache in one pass.
    pub update_full_fraction: f64,
    /// Host memory budget for one [`crate::dynamic::BcCache`]: the
    /// per-block σ/depth panels plus per-block BC contribution vectors
    /// the incremental mode replays. [`crate::BcSolver::warm_cache`]
    /// refuses to build a cache whose modelled footprint exceeds this.
    pub update_cache_bytes: u64,
}

/// A device segment must be expected to cover at least this many levels
/// before the handoff cost is worth paying.
const MIN_SEGMENT_LEVELS: f64 = 2.0;

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_seq_ns_per_edge: 1.0,
            cpu_par_efficiency: 0.6,
            batched_sweep_gain: 0.5,
            simt_ns_per_edge: 0.05,
            // The simulator interprets every kernel on the host: modelled
            // device seconds cost ~500× wall clock, so the default model
            // never schedules device segments for wall-clock gain.
            simt_wall_factor: 500.0,
            handoff_ns_per_word: 0.5,
            dense_enter: 0.05,
            dense_exit: 0.01,
            block_sources: 8,
            panel_resident_bytes: 8 << 20,
            panel_degree_max: 16.0,
            update_full_fraction: 0.5,
            update_cache_bytes: 256 << 20,
        }
    }
}

impl CostModel {
    /// A model calibrated for real accelerator hardware, where modelled
    /// device time *is* wall time and transfers are cheap. Hybrid plans
    /// under this model actually enter device segments, which is what
    /// the handoff equivalence tests exercise.
    pub fn device_biased() -> Self {
        CostModel {
            simt_wall_factor: 1.0,
            handoff_ns_per_word: 0.0,
            dense_enter: 0.02,
            dense_exit: 0.01,
            ..CostModel::default()
        }
    }

    /// Modelled host cost of one pull level, ns.
    pub fn cpu_level_ns(&self, n: usize, m: usize) -> f64 {
        (n + m) as f64 * self.cpu_seq_ns_per_edge
    }

    /// Modelled wall-clock cost of one device pull level, ns.
    pub fn device_level_ns(&self, n: usize, m: usize) -> f64 {
        (n + m) as f64 * self.simt_ns_per_edge * self.simt_wall_factor
    }

    /// Cost of one full CPU↔device state handoff (six `n`-vectors:
    /// `f`, `f_t`, σ in, then `f`, σ, depths out), ns.
    pub fn handoff_ns(&self, n: usize) -> f64 {
        6.0 * n as f64 * self.handoff_ns_per_word
    }

    /// Should a traversal at frontier occupancy `frontier / n` hand its
    /// next levels to the device? True when the frontier has entered the
    /// dense band *and* a minimum-length device segment plus the handoff
    /// beats the same levels on the CPU.
    pub fn enter_device(&self, frontier: usize, n: usize, m: usize) -> bool {
        frontier >= 2
            && frontier as f64 >= self.dense_enter * n as f64
            && self.device_level_ns(n, m) * MIN_SEGMENT_LEVELS + self.handoff_ns(n)
                <= self.cpu_level_ns(n, m) * MIN_SEGMENT_LEVELS
    }

    /// Should a running device segment keep the next level? Uses the
    /// lower exit threshold so the boundary does not chatter.
    pub fn keep_device(&self, frontier: usize, n: usize) -> bool {
        frontier as f64 >= self.dense_exit * n as f64
    }

    /// Resident bytes one width-`width` batched block keeps hot: the σ
    /// (`u64`) and δ (`f64`) panels plus the frontier/seen bit-planes,
    /// all `n × width` lanes.
    pub fn panel_bytes(&self, n: usize, width: usize) -> u64 {
        let lanes = n as u64 * width as u64;
        lanes * 16 + lanes / 4
    }

    /// Do a block's panels fit the host cache budget? See
    /// [`CostModel::panel_resident_bytes`].
    pub fn panels_resident(&self, n: usize, width: usize) -> bool {
        self.panel_bytes(n, width) <= self.panel_resident_bytes
    }

    /// Expected BFS levels per traversal: `log₂ n` for small-world /
    /// scale-free graphs, `√n` for meshes and roads.
    pub fn levels_estimate(&self, stats: &GraphStats) -> f64 {
        let n = stats.n.max(2) as f64;
        if stats.is_scale_free() {
            n.log2()
        } else {
            n.sqrt()
        }
    }
}

/// One executor the dispatcher can schedule: an engine plus its cost and
/// admission models. Implementations for the five built-in engines are
/// reachable through [`executor_for`].
pub trait Executor {
    /// Which engine this is.
    fn kind(&self) -> ExecutorKind;

    /// Peak device bytes a run of this executor needs (0 for pure-host
    /// executors). `width` is the batched block width where relevant.
    fn device_bytes(&self, n: usize, m: usize, kernel: Kernel, width: usize) -> u64;

    /// The `7n + m` admission criterion: can this executor run within
    /// `budget_bytes` of device memory?
    fn admits(&self, n: usize, m: usize, kernel: Kernel, width: usize, budget_bytes: u64) -> bool {
        self.device_bytes(n, m, kernel, width) <= budget_bytes
    }

    /// Modelled wall-clock nanoseconds for `n_sources` traversals.
    fn estimate_ns(
        &self,
        model: &CostModel,
        stats: &GraphStats,
        n_sources: usize,
        width: usize,
    ) -> f64;

    /// Runs the plan on this executor.
    fn run(
        &self,
        solver: &BcSolver,
        plan: &ExecutionPlan,
        device: Option<&Device>,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError>;
}

/// Modelled cost of a full sequential run: every traversal sweeps
/// `levels × (n + m)` work.
fn seq_estimate_ns(model: &CostModel, stats: &GraphStats, n_sources: usize) -> f64 {
    n_sources as f64 * model.levels_estimate(stats) * model.cpu_level_ns(stats.n, stats.m)
}

/// The sequential host executor.
pub struct SeqExecutor;

impl Executor for SeqExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::CpuSequential
    }

    fn device_bytes(&self, _n: usize, _m: usize, _kernel: Kernel, _width: usize) -> u64 {
        0
    }

    fn estimate_ns(
        &self,
        model: &CostModel,
        stats: &GraphStats,
        n_sources: usize,
        _width: usize,
    ) -> f64 {
        seq_estimate_ns(model, stats, n_sources)
    }

    fn run(
        &self,
        solver: &BcSolver,
        plan: &ExecutionPlan,
        _device: Option<&Device>,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        let bc = solver.exec_bc_cpu(plan.sources(), Engine::Sequential, obs)?;
        Ok(Execution::from_bc(bc))
    }
}

/// The rayon data-parallel host executor.
pub struct ParExecutor;

impl Executor for ParExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::CpuParallel
    }

    fn device_bytes(&self, _n: usize, _m: usize, _kernel: Kernel, _width: usize) -> u64 {
        0
    }

    fn estimate_ns(
        &self,
        model: &CostModel,
        stats: &GraphStats,
        n_sources: usize,
        _width: usize,
    ) -> f64 {
        let threads = rayon::current_num_threads().max(1) as f64;
        seq_estimate_ns(model, stats, n_sources) / (threads * model.cpu_par_efficiency).max(1.0)
    }

    fn run(
        &self,
        solver: &BcSolver,
        plan: &ExecutionPlan,
        _device: Option<&Device>,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        let bc = solver.exec_bc_cpu(plan.sources(), Engine::Parallel, obs)?;
        Ok(Execution::from_bc(bc))
    }
}

/// The bit-sliced batched-panel executor.
pub struct BatchedExecutor;

impl Executor for BatchedExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Batched
    }

    fn device_bytes(&self, n: usize, m: usize, kernel: Kernel, width: usize) -> u64 {
        footprint::batched_bytes(n, m, width.max(1), kernel)
    }

    fn estimate_ns(
        &self,
        model: &CostModel,
        stats: &GraphStats,
        n_sources: usize,
        width: usize,
    ) -> f64 {
        // Each lane pays `batched_sweep_gain` of a sequential sweep; the
        // block's lanes share one matrix pass.
        let width = width.max(1) as f64;
        seq_estimate_ns(model, stats, n_sources) * model.batched_sweep_gain / width
    }

    fn run(
        &self,
        solver: &BcSolver,
        plan: &ExecutionPlan,
        _device: Option<&Device>,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        let bc = solver.exec_bc_batched(plan.sources(), obs)?;
        Ok(Execution::from_bc(bc))
    }
}

/// The SIMT device executor.
pub struct SimtExecutor;

impl Executor for SimtExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Simt
    }

    fn device_bytes(&self, n: usize, m: usize, kernel: Kernel, _width: usize) -> u64 {
        footprint::turbobc_bytes(n, m, kernel)
    }

    fn estimate_ns(
        &self,
        model: &CostModel,
        stats: &GraphStats,
        n_sources: usize,
        _width: usize,
    ) -> f64 {
        n_sources as f64 * model.levels_estimate(stats) * model.device_level_ns(stats.n, stats.m)
            + model.handoff_ns(stats.n)
    }

    fn run(
        &self,
        solver: &BcSolver,
        plan: &ExecutionPlan,
        device: Option<&Device>,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        let owned;
        let dev = match device {
            Some(d) => d,
            None => {
                owned = Device::new(solver.options().device);
                &owned
            }
        };
        let (bc, report) = solver.exec_bc_simt(dev, plan.sources(), obs)?;
        Ok(Execution {
            bc: Some(bc),
            simt: Some(report),
            ms_bfs: None,
        })
    }
}

/// The TurboBFS traversal executor (BFS plans only).
pub struct TurboBfsExecutor;

impl Executor for TurboBfsExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::TurboBfs
    }

    fn device_bytes(&self, _n: usize, _m: usize, _kernel: Kernel, _width: usize) -> u64 {
        0
    }

    fn estimate_ns(
        &self,
        model: &CostModel,
        stats: &GraphStats,
        n_sources: usize,
        _width: usize,
    ) -> f64 {
        // Forward sweeps only — no backward dependency stage.
        seq_estimate_ns(model, stats, n_sources) * 0.5
    }

    fn run(
        &self,
        solver: &BcSolver,
        plan: &ExecutionPlan,
        _device: Option<&Device>,
        obs: &mut dyn Observer,
    ) -> Result<Execution, TurboBcError> {
        match plan.work {
            PlanWork::MsBfs => {
                let out = solver.exec_ms_bfs_turbobfs(plan.sources(), obs)?;
                Ok(Execution::from_ms_bfs(out))
            }
            PlanWork::Bc => Err(TurboBcError::InvalidPlan {
                detail: "TurboBFS computes no dependencies; pin a BC-capable executor".to_string(),
            }),
        }
    }
}

/// Looks up the singleton [`Executor`] for a kind.
///
/// [`ExecutorKind::Hybrid`] has no standalone executor — hybrid
/// scheduling is a plan *strategy* realised inside
/// [`crate::BcSolver::execute`] — so it maps to the SIMT executor's
/// models for admission purposes.
pub fn executor_for(kind: ExecutorKind) -> &'static dyn Executor {
    match kind {
        ExecutorKind::CpuSequential => &SeqExecutor,
        ExecutorKind::CpuParallel => &ParExecutor,
        ExecutorKind::Batched => &BatchedExecutor,
        ExecutorKind::Simt | ExecutorKind::Hybrid => &SimtExecutor,
        ExecutorKind::TurboBfs => &TurboBfsExecutor,
    }
}

/// What kind of result a plan computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanWork {
    /// Betweenness centrality (the default).
    Bc,
    /// Multi-source BFS depths only.
    MsBfs,
}

/// How a plan schedules its sources.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanStrategy {
    /// One executor runs every source.
    Single(ExecutorKind),
    /// Each traversal's levels are scheduled CPU↔device at runtime.
    Hybrid,
    /// Sources are split into width-`width` blocks that run on the
    /// batched executor, blocks in parallel across host threads.
    BlockParallel {
        /// Sources per block (the bit-sliced SpMM width `b`).
        width: usize,
    },
}

/// One contiguous range of sources assigned to an executor, with the
/// cost-model rationale for the assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSegment {
    /// The executor the segment runs on.
    pub executor: ExecutorKind,
    /// Index of the first source (into the plan's source list).
    pub first: usize,
    /// Number of sources in the segment.
    pub len: usize,
    /// Why the cost model chose this executor.
    pub rationale: String,
}

/// A scheduled unit of BC/BFS work: which sources run where.
///
/// Built by [`crate::BcSolver::plan`] (or
/// [`crate::BcSolver::plan_pinned`]), executed by
/// [`crate::BcSolver::execute`]. Plans are plain data — inspecting one
/// never runs anything.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    pub(crate) work: PlanWork,
    pub(crate) mode: DispatchMode,
    pub(crate) sources: Vec<u32>,
    pub(crate) strategy: PlanStrategy,
    pub(crate) segments: Vec<PlanSegment>,
}

impl ExecutionPlan {
    /// The dispatch mode the plan was built under.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// The sources the plan covers, in execution order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// The scheduling strategy.
    pub fn strategy(&self) -> &PlanStrategy {
        &self.strategy
    }

    /// Per-segment executor assignments with rationales.
    pub fn segments(&self) -> &[PlanSegment] {
        &self.segments
    }

    /// Whether executing the plan needs a device (SIMT or hybrid work).
    pub fn needs_device(&self) -> bool {
        match &self.strategy {
            PlanStrategy::Single(ExecutorKind::Simt) | PlanStrategy::Hybrid => true,
            PlanStrategy::Single(_) | PlanStrategy::BlockParallel { .. } => false,
        }
    }

    /// One-line human description, e.g.
    /// `cost: 96 sources, block-parallel(width 32) [batched×3]`.
    pub fn summary(&self) -> String {
        let strat = match &self.strategy {
            PlanStrategy::Single(k) => format!("single({})", k.name()),
            PlanStrategy::Hybrid => "hybrid(cpu+simt per level)".to_string(),
            PlanStrategy::BlockParallel { width } => {
                format!("block-parallel(width {width})")
            }
        };
        let segs: Vec<String> = self
            .segments
            .iter()
            .map(|s| format!("{}×{}", s.executor.name(), s.len))
            .collect();
        format!(
            "{}: {} sources, {strat} [{}]",
            self.mode.describe(),
            self.sources.len(),
            segs.join(", ")
        )
    }
}

/// What a plan produced: always a [`BcResult`] for BC work, plus the
/// device report when a device took part, or a [`MsBfsResult`] for BFS
/// plans.
#[derive(Debug, Clone)]
pub struct Execution {
    pub(crate) bc: Option<BcResult>,
    pub(crate) simt: Option<SimtReport>,
    pub(crate) ms_bfs: Option<MsBfsResult>,
}

impl Execution {
    pub(crate) fn from_bc(bc: BcResult) -> Self {
        Execution {
            bc: Some(bc),
            simt: None,
            ms_bfs: None,
        }
    }

    pub(crate) fn from_ms_bfs(out: MsBfsResult) -> Self {
        Execution {
            bc: None,
            simt: None,
            ms_bfs: Some(out),
        }
    }

    /// The BC result, if this was a BC plan.
    pub fn bc(&self) -> Option<&BcResult> {
        self.bc.as_ref()
    }

    /// Consumes the execution, returning the BC result.
    pub fn into_bc(self) -> Option<BcResult> {
        self.bc
    }

    /// The device report, when a device executor took part.
    pub fn simt_report(&self) -> Option<&SimtReport> {
        self.simt.as_ref()
    }

    /// The multi-source BFS result, if this was a BFS plan.
    pub fn ms_bfs(&self) -> Option<&MsBfsResult> {
        self.ms_bfs.as_ref()
    }

    /// Consumes the execution, returning the BFS result.
    pub fn into_ms_bfs(self) -> Option<MsBfsResult> {
        self.ms_bfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc_graph::{gen, GraphStats};

    #[test]
    fn executor_names_round_trip() {
        for &k in ExecutorKind::all() {
            assert_eq!(ExecutorKind::from_name(k.name()), Some(k));
        }
        assert_eq!(
            ExecutorKind::from_name("sequential"),
            Some(ExecutorKind::CpuSequential)
        );
        assert_eq!(ExecutorKind::from_name("warp"), None);
    }

    #[test]
    fn dispatch_mode_grammar_round_trips() {
        for s in ["auto", "cost", "pinned:seq", "pinned:simt", "pinned:hybrid"] {
            let mode: DispatchMode = s.parse().unwrap();
            assert_eq!(mode.describe(), s);
        }
        assert!("pinned:warp".parse::<DispatchMode>().is_err());
        assert!("fastest".parse::<DispatchMode>().is_err());
        assert_eq!(DispatchMode::default(), DispatchMode::Auto);
    }

    #[test]
    fn default_model_keeps_work_on_the_host() {
        // The simulator's wall factor makes device levels never
        // profitable under the default calibration.
        let m = CostModel::default();
        assert!(!m.enter_device(500, 1000, 8000));
        assert!(m.device_level_ns(1000, 8000) > m.cpu_level_ns(1000, 8000));
    }

    #[test]
    fn device_biased_model_enters_dense_levels_with_hysteresis() {
        let m = CostModel::device_biased();
        // Dense frontier on hardware-like costs: enter.
        assert!(m.enter_device(200, 1000, 8000));
        // Sparse head: stay on the CPU.
        assert!(!m.enter_device(1, 1000, 8000));
        // Exit threshold sits below the entry threshold (hysteresis).
        assert!(m.dense_exit < m.dense_enter);
        let boundary = (m.dense_enter * 1000.0) as usize - 1;
        assert!(!m.enter_device(boundary.min(1), 1000, 8000));
        assert!(m.keep_device(boundary.max(11), 1000));
    }

    #[test]
    fn estimates_order_engines_sensibly() {
        let g = gen::rmat(10, 8, 3);
        let stats = GraphStats::compute(&g);
        let model = CostModel::default();
        let seq = SeqExecutor.estimate_ns(&model, &stats, 64, 1);
        let par = ParExecutor.estimate_ns(&model, &stats, 64, 1);
        let batched = BatchedExecutor.estimate_ns(&model, &stats, 64, 64);
        let simt = SimtExecutor.estimate_ns(&model, &stats, 64, 1);
        assert!(par <= seq, "parallel must never model above sequential");
        if rayon::current_num_threads() > 1 {
            assert!(par < seq, "parallel must beat sequential in the model");
        }
        assert!(batched < seq, "a 64-lane block must beat per-source sweeps");
        assert!(
            simt > seq,
            "under the simulator calibration the device loses wall-clock"
        );
        let simt_hw = SimtExecutor.estimate_ns(&CostModel::device_biased(), &stats, 64, 1);
        assert!(simt_hw < seq, "on modelled hardware the device wins");
    }

    #[test]
    fn admission_uses_the_footprint_model() {
        let (n, m) = (10_000, 80_000);
        let simt = executor_for(ExecutorKind::Simt);
        let need = simt.device_bytes(n, m, Kernel::ScCsc, 1);
        assert_eq!(need, footprint::turbobc_bytes(n, m, Kernel::ScCsc));
        assert!(simt.admits(n, m, Kernel::ScCsc, 1, need));
        assert!(!simt.admits(n, m, Kernel::ScCsc, 1, need - 1));
        // Host executors always fit.
        assert!(executor_for(ExecutorKind::CpuParallel).admits(n, m, Kernel::ScCsc, 1, 0));
        // The batched executor prices its panels per lane.
        let b = executor_for(ExecutorKind::Batched);
        assert!(b.device_bytes(n, m, Kernel::ScCsc, 64) > b.device_bytes(n, m, Kernel::ScCsc, 2));
    }

    #[test]
    fn plan_summary_reads_like_a_schedule() {
        let plan = ExecutionPlan {
            work: PlanWork::Bc,
            mode: DispatchMode::CostModel,
            sources: (0..96).collect(),
            strategy: PlanStrategy::BlockParallel { width: 32 },
            segments: vec![PlanSegment {
                executor: ExecutorKind::Batched,
                first: 0,
                len: 96,
                rationale: "scale-free, panels admit width 32".to_string(),
            }],
        };
        assert_eq!(
            plan.summary(),
            "cost: 96 sources, block-parallel(width 32) [batched×96]"
        );
        assert!(!plan.needs_device());
        let hybrid = ExecutionPlan {
            work: PlanWork::Bc,
            mode: DispatchMode::CostModel,
            sources: vec![0],
            strategy: PlanStrategy::Hybrid,
            segments: vec![],
        };
        assert!(hybrid.needs_device());
    }
}

//! Multi-source BFS (MS-BFS, Then et al. VLDB '14) in the language of
//! linear algebra: up to 64 BFS trees advance simultaneously through
//! **bit-packed** frontier vectors, so one edge sweep per level serves
//! every source in the batch.
//!
//! In semiring terms this is the `(∨, ∧)` frontier product of
//! `turbobc_sparse::semiring` lifted from `bool` to `u64` lanes: the OR
//! of 64 boolean SpMVs computed with single word operations. It is the
//! natural amortisation for exact-BC workloads (the paper's Table 5),
//! where the forward traversal is repeated once per source: the batched
//! sweep shares the structure loads across the whole batch.

use crate::observe::{Observer, TraceEvent};
use crate::options::{BcOptions, Kernel};
use crate::seq::Storage;
use std::time::{Duration, Instant};
use turbobc_graph::{Graph, VertexId};

/// Batch width: one bit lane per source.
pub const BATCH: usize = 64;

/// Result of a multi-source BFS.
#[derive(Debug, Clone, PartialEq)]
pub struct MsBfsResult {
    /// `depths[k][v]` — depth of `v` from the `k`-th source (source
    /// depth 1, unreached 0), matching `turbobc_graph::bfs`.
    pub depths: Vec<Vec<u32>>,
    /// BFS-tree height per source.
    pub heights: Vec<u32>,
    /// Edge sweeps performed (levels summed over batches) — the work
    /// the batching amortises.
    pub sweeps: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One bit-parallel frontier advance: `next = (structure ⊗ frontier)
/// & !seen` over the `(|, &)` word semiring — the σ-free special case
/// of the batched BC engine's masked SpMM (`spmm_t_bits` with one word
/// per vertex; `crate::batched` runs the same product alongside its
/// count panels).
fn advance(storage: &Storage, frontier: &[u64], seen: &[u64], next: &mut [u64]) {
    match storage {
        Storage::Csc(csc) => csc.spmm_t_bits(1, frontier, seen, next),
        Storage::Cooc(cooc) => cooc.spmm_t_bits(1, frontier, seen, next),
    }
}

/// Runs a bit-parallel BFS from every source (chunked into batches of
/// [`BATCH`]). `options.kernel` selects the sweep storage (`ScCooc` →
/// edge sweep, anything else → column gather); the engine field is
/// ignored (the sweep is memory-bound and single-pass).
#[deprecated(
    since = "0.2.0",
    note = "use `BcSolver::ms_bfs` (or `ms_bfs_observed`) instead"
)]
pub fn ms_bfs(graph: &Graph, sources: &[VertexId], options: BcOptions) -> MsBfsResult {
    let storage = match options.kernel {
        Kernel::ScCooc => Storage::Cooc(graph.to_cooc()),
        _ => Storage::Csc(graph.to_csc()),
    };
    let kernel = match options.kernel {
        Kernel::ScCooc => Kernel::ScCooc,
        _ => Kernel::ScCsc,
    };
    ms_bfs_on_storage(&storage, kernel, sources, &mut crate::observe::NullObserver)
}

/// The MS-BFS engine over an already-materialised storage format —
/// what [`crate::BcSolver::ms_bfs`] runs. Each batch's levels land in
/// `obs` as [`TraceEvent::Level`]s (`source` = first source of the
/// batch, `frontier` = vertex-lane discoveries across the whole batch)
/// followed by one [`TraceEvent::SourceDone`] per source.
pub(crate) fn ms_bfs_on_storage(
    storage: &Storage,
    kernel: Kernel,
    sources: &[VertexId],
    obs: &mut dyn Observer,
) -> MsBfsResult {
    let start = Instant::now();
    let n = storage.n();
    obs.event(TraceEvent::RunStart {
        engine: "msbfs",
        kernel,
        n,
        m: storage.m(),
        sources: sources.len(),
    });
    let mut depths: Vec<Vec<u32>> = Vec::with_capacity(sources.len());
    let mut heights: Vec<u32> = Vec::with_capacity(sources.len());
    let mut sweeps = 0usize;

    for batch in sources.chunks(BATCH) {
        let mut seen = vec![0u64; n];
        let mut frontier = vec![0u64; n];
        let mut batch_depths: Vec<Vec<u32>> = batch.iter().map(|_| vec![0u32; n]).collect();
        let mut batch_heights = vec![1u32; batch.len()];
        let mut batch_reached = vec![1usize; batch.len()];
        if n == 0 {
            depths.append(&mut batch_depths);
            heights.extend_from_slice(&batch_heights);
            continue;
        }
        for (k, &s) in batch.iter().enumerate() {
            frontier[s as usize] |= 1 << k;
            seen[s as usize] |= 1 << k;
            batch_depths[k][s as usize] = 1;
        }
        let mut next = vec![0u64; n];
        let mut level = 1u32;
        loop {
            advance(storage, &frontier, &seen, &mut next);
            sweeps += 1;
            level += 1;
            let mut any = 0u64;
            let mut discovered = 0usize;
            for v in 0..n {
                let fresh = next[v];
                if fresh != 0 {
                    seen[v] |= fresh;
                    any |= fresh;
                    let mut bits = fresh;
                    while bits != 0 {
                        let k = bits.trailing_zeros() as usize;
                        batch_depths[k][v] = level;
                        batch_heights[k] = level;
                        batch_reached[k] += 1;
                        discovered += 1;
                        bits &= bits - 1;
                    }
                }
            }
            if any == 0 {
                break;
            }
            if obs.wants_levels() {
                obs.event(TraceEvent::Level {
                    source: batch[0],
                    depth: level,
                    frontier: discovered,
                    sigma_updates: discovered as u64,
                });
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        for (k, &s) in batch.iter().enumerate() {
            obs.event(TraceEvent::SourceDone {
                source: s,
                height: batch_heights[k],
                reached: batch_reached[k],
            });
        }
        depths.append(&mut batch_depths);
        heights.extend_from_slice(&batch_heights);
    }
    let elapsed = start.elapsed();
    obs.event(TraceEvent::RunEnd {
        elapsed_s: elapsed.as_secs_f64(),
    });
    MsBfsResult {
        depths,
        heights,
        sweeps,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the shim so downstream callers stay covered
    use super::*;
    use turbobc_graph::gen;

    fn check_against_reference(g: &Graph, sources: &[u32], kernel: Kernel) {
        let r = ms_bfs(g, sources, BcOptions::builder().kernel(kernel).build());
        assert_eq!(r.depths.len(), sources.len());
        for (k, &s) in sources.iter().enumerate() {
            let want = turbobc_graph::bfs(g, s);
            assert_eq!(r.depths[k], want.depths, "source {s} ({kernel:?})");
            assert_eq!(r.heights[k], want.height, "source {s}");
        }
    }

    #[test]
    fn matches_per_source_bfs_both_storages() {
        let g = gen::gnm(120, 420, true, 8);
        let sources: Vec<u32> = (0..24).collect();
        check_against_reference(&g, &sources, Kernel::ScCsc);
        check_against_reference(&g, &sources, Kernel::ScCooc);
    }

    #[test]
    fn chunks_batches_beyond_64_sources() {
        let g = gen::small_world(150, 3, 0.2, 9);
        let sources: Vec<u32> = (0..130).collect();
        let r = ms_bfs(&g, &sources, BcOptions::default());
        assert_eq!(r.depths.len(), 130);
        // Spot-check a source in each chunk.
        for &s in &[0u32, 70, 129] {
            let want = turbobc_graph::bfs(&g, s);
            assert_eq!(r.depths[s as usize], want.depths, "source {s}");
        }
    }

    #[test]
    fn amortises_sweeps_across_the_batch() {
        let g = gen::delaunay(600, 3);
        let sources: Vec<u32> = (0..64).collect();
        let batched = ms_bfs(&g, &sources, BcOptions::default());
        let individual: usize = sources
            .iter()
            .map(|&s| turbobc_graph::bfs(&g, s).height as usize)
            .sum();
        assert!(
            batched.sweeps * 8 < individual,
            "batched {} sweeps vs {} individual levels",
            batched.sweeps,
            individual
        );
    }

    #[test]
    fn disconnected_sources() {
        let g = Graph::from_edges(6, false, &[(0, 1), (2, 3), (4, 5)]);
        let r = ms_bfs(&g, &[0, 2, 4], BcOptions::default());
        assert_eq!(r.depths[0], vec![1, 2, 0, 0, 0, 0]);
        assert_eq!(r.depths[1], vec![0, 0, 1, 2, 0, 0]);
        assert_eq!(r.depths[2], vec![0, 0, 0, 0, 1, 2]);
    }

    #[test]
    fn empty_inputs() {
        let g = Graph::from_edges(0, true, &[]);
        let r = ms_bfs(&g, &[], BcOptions::default());
        assert!(r.depths.is_empty());
        let g1 = gen::path(4, false);
        let r = ms_bfs(&g1, &[], BcOptions::default());
        assert!(r.depths.is_empty());
    }
}

//! Device-to-device interconnect model for multi-GPU simulations.

use crate::faults::{FaultPlan, FaultState, LinkError};

/// Bandwidth/latency model of a GPU interconnect, with a transfer
/// ledger. Used by the multi-GPU BC driver to charge the frontier
/// allgather and dependency reduce-scatter each level.
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// Aggregate bandwidth per direction, bytes/second.
    pub bandwidth: f64,
    /// Per-transfer latency, seconds (driver + link setup).
    pub latency: f64,
    transfers: u64,
    bytes: u64,
    faults: FaultState,
}

impl Interconnect {
    /// PCIe 3.0 x16-class link (~12 GB/s, ~10 µs latency) — what the
    /// paper's Titan Xp generation of cards shipped with.
    pub fn pcie3() -> Self {
        Interconnect {
            bandwidth: 12e9,
            latency: 10e-6,
            transfers: 0,
            bytes: 0,
            faults: FaultState::default(),
        }
    }

    /// NVLink-class link (~50 GB/s, ~5 µs latency).
    pub fn nvlink() -> Self {
        Interconnect {
            bandwidth: 50e9,
            latency: 5e-6,
            transfers: 0,
            bytes: 0,
            faults: FaultState::default(),
        }
    }

    /// Arms a fault plan on this link (drop/corrupt schedules and rates).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultState::new(plan);
        self
    }

    /// Records one transfer of `bytes`. Bypasses fault injection — use
    /// [`Interconnect::try_transfer`] for fault-aware drivers.
    pub fn transfer(&mut self, bytes: u64) {
        self.transfers += 1;
        self.bytes += bytes;
    }

    /// Fault-aware transfer: consults the armed [`FaultPlan`] first. A
    /// dropped or corrupted transfer moves no bytes and is **not**
    /// recorded in the ledger (the payload never usably arrived); the
    /// fault counter advances, so retrying the same exchange draws the
    /// next schedule slot.
    pub fn try_transfer(&mut self, bytes: u64) -> Result<(), LinkError> {
        self.faults.on_transfer()?;
        self.transfer(bytes);
        Ok(())
    }

    /// Number of transfers recorded.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Modelled time spent on the recorded transfers.
    pub fn modelled_time_s(&self) -> f64 {
        self.transfers as f64 * self.latency + self.bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut link = Interconnect::pcie3();
        link.transfer(12_000_000);
        link.transfer(12_000_000);
        assert_eq!(link.transfers(), 2);
        assert_eq!(link.bytes(), 24_000_000);
        let t = link.modelled_time_s();
        assert!((t - (2.0 * 10e-6 + 24e6 / 12e9)).abs() < 1e-12);
    }

    #[test]
    fn faulted_transfers_fail_then_recover() {
        let mut link = Interconnect::pcie3()
            .with_faults(FaultPlan::new(3).drop_transfer_at(0).corrupt_transfer_at(2));
        assert_eq!(
            link.try_transfer(100),
            Err(LinkError::Dropped { transfer_index: 0 })
        );
        assert_eq!(link.bytes(), 0, "dropped transfer moves no bytes");
        assert!(link.try_transfer(100).is_ok());
        assert_eq!(
            link.try_transfer(100),
            Err(LinkError::Corrupted { transfer_index: 2 })
        );
        assert!(link.try_transfer(100).is_ok());
        assert_eq!(link.transfers(), 2);
        assert_eq!(link.bytes(), 200);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let mut a = Interconnect::pcie3();
        let mut b = Interconnect::nvlink();
        a.transfer(1 << 30);
        b.transfer(1 << 30);
        assert!(b.modelled_time_s() < a.modelled_time_s() / 3.0);
    }
}

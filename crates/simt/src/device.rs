//! The simulated device: properties, memory ledger, kernel launches.

use crate::buffer::DeviceBuffer;
use crate::cache::L2Cache;
use crate::faults::{FaultPlan, FaultState, Verdict};
use crate::metrics::{KernelStats, MetricsRegistry};
use crate::timing::TimingModel;
use crate::warp::{Warp, WARP_SIZE};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Static properties of the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProps {
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
}

impl DeviceProps {
    /// The paper's evaluation GPU: NVIDIA Titan Xp — 30 SMs × 128 cores,
    /// 1.58 GHz, 12 196 MB global memory, 547.6 GB/s DRAM bandwidth
    /// (575 GB/s is the theoretical figure the paper draws in Fig. 5b).
    pub fn titan_xp() -> Self {
        DeviceProps {
            global_mem_bytes: 12_196 * 1024 * 1024,
            sms: 30,
            cores_per_sm: 128,
            clock_ghz: 1.58,
            mem_bandwidth_gbs: 547.6,
            l2_bytes: 3 * 1024 * 1024,
        }
    }
}

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation did not fit in remaining global memory:
    /// `(requested, free)` in bytes. The paper prints this condition as
    /// *OOM* in its tables.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes still free on the device.
        free: u64,
    },
    /// A kernel launch faulted transiently (injected by a
    /// [`FaultPlan`]). The kernel body did **not** execute, so the
    /// launch is safe to retry.
    KernelFault {
        /// Name of the faulted kernel.
        kernel: String,
        /// 0-based launch index on this device.
        launch_index: u64,
    },
    /// The device was lost (injected by
    /// [`FaultPlan::lose_device_at_launch`]). Sticky: every subsequent
    /// operation on this device fails the same way.
    DeviceLost,
}

impl DeviceError {
    /// Whether retrying the failed operation on the same device can
    /// succeed (true only for transient kernel faults).
    pub fn is_transient(&self) -> bool {
        matches!(self, DeviceError::KernelFault { .. })
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, {free} B free"
                )
            }
            DeviceError::KernelFault {
                kernel,
                launch_index,
            } => {
                write!(
                    f,
                    "transient fault in kernel `{kernel}` (launch #{launch_index})"
                )
            }
            DeviceError::DeviceLost => write!(f, "device lost"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Snapshot of the allocation ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes currently allocated.
    pub used: u64,
    /// High-water mark since construction (the paper's "GPU memory upper
    /// bound" of Figures 3/5a).
    pub peak: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Number of live allocations.
    pub live_allocations: usize,
}

#[derive(Debug)]
pub(crate) struct Ledger {
    pub used: u64,
    pub peak: u64,
    pub capacity: u64,
    pub live: usize,
    pub next_base: u64,
}

impl Ledger {
    /// cudaMalloc-style 256-byte allocation granularity.
    pub(crate) const ALIGN: u64 = 256;

    pub(crate) fn alloc(&mut self, bytes: u64) -> Result<u64, DeviceError> {
        let rounded = bytes.div_ceil(Self::ALIGN) * Self::ALIGN;
        if self.used + rounded > self.capacity {
            return Err(DeviceError::OutOfMemory {
                requested: rounded,
                free: self.capacity - self.used,
            });
        }
        self.used += rounded;
        self.peak = self.peak.max(self.used);
        self.live += 1;
        let base = self.next_base;
        self.next_base += rounded;
        Ok(base)
    }

    pub(crate) fn free(&mut self, bytes: u64) {
        let rounded = bytes.div_ceil(Self::ALIGN) * Self::ALIGN;
        debug_assert!(self.used >= rounded, "double free in device ledger");
        self.used -= rounded;
        self.live -= 1;
    }
}

/// Grid configuration for a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Total number of threads (the simulator rounds up to whole warps).
    pub threads: usize,
    /// Threads per block (affects only the recorded block count).
    pub threads_per_block: usize,
}

impl LaunchConfig {
    /// One thread per element, 256-thread blocks (the common CUDA default).
    pub fn per_element(elements: usize) -> Self {
        LaunchConfig {
            threads: elements,
            threads_per_block: 256,
        }
    }

    /// One warp per element (`veCSC`-style mapping).
    pub fn per_warp(elements: usize) -> Self {
        LaunchConfig {
            threads: elements * WARP_SIZE,
            threads_per_block: 256,
        }
    }
}

/// The simulated GPU.
pub struct Device {
    props: DeviceProps,
    timing: TimingModel,
    ledger: Arc<Mutex<Ledger>>,
    metrics: Mutex<MetricsRegistry>,
    l2: Mutex<L2Cache>,
    faults: Mutex<FaultState>,
}

impl Device {
    /// Creates a device with the paper's Titan Xp properties.
    pub fn titan_xp() -> Self {
        Self::new(DeviceProps::titan_xp())
    }

    /// Creates a device with explicit properties.
    pub fn new(props: DeviceProps) -> Self {
        Device {
            timing: TimingModel::from_props(&props),
            ledger: Arc::new(Mutex::new(Ledger {
                used: 0,
                peak: 0,
                capacity: props.global_mem_bytes,
                live: 0,
                next_base: 0,
            })),
            metrics: Mutex::new(MetricsRegistry::default()),
            l2: Mutex::new(L2Cache::new(props.l2_bytes)),
            faults: Mutex::new(FaultState::default()),
            props,
        }
    }

    /// Creates a device with a fault plan armed from the start.
    pub fn with_faults(props: DeviceProps, plan: FaultPlan) -> Self {
        let dev = Self::new(props);
        dev.install_faults(plan);
        dev
    }

    /// Installs (or replaces) the fault plan. Counters restart from
    /// operation index 0.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.faults.lock() = FaultState::new(plan);
    }

    /// Whether this device has been lost to an injected fault. All
    /// operations on a lost device fail with [`DeviceError::DeviceLost`].
    pub fn is_lost(&self) -> bool {
        self.faults.lock().is_lost()
    }

    /// Same properties but a different memory capacity — used by the
    /// Table 4 experiments to scale the Titan Xp's 12 GB down alongside
    /// the scaled-down graphs.
    pub fn with_capacity(mut props: DeviceProps, bytes: u64) -> Self {
        props.global_mem_bytes = bytes;
        Self::new(props)
    }

    /// Device properties.
    pub fn props(&self) -> DeviceProps {
        self.props
    }

    /// The analytic timing model attached to this device.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Allocates a zero-initialised buffer of `len` elements.
    pub fn alloc<T: Copy + Default>(&self, len: usize) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        match self.faults.lock().on_alloc() {
            Verdict::Ok => {}
            Verdict::Lost => return Err(DeviceError::DeviceLost),
            Verdict::Fault => {
                let free = {
                    let l = self.ledger.lock();
                    l.capacity - l.used
                };
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    free,
                });
            }
        }
        let base = self.ledger.lock().alloc(bytes)?;
        Ok(DeviceBuffer::new(
            vec![T::default(); len],
            base,
            bytes,
            Arc::clone(&self.ledger),
        ))
    }

    /// Allocates a buffer and copies `data` into it (host→device
    /// transfer).
    pub fn alloc_from<T: Copy + Default>(
        &self,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, DeviceError> {
        let mut buf = self.alloc(data.len())?;
        buf.host_mut().copy_from_slice(data);
        Ok(buf)
    }

    /// Current memory-ledger snapshot.
    pub fn memory(&self) -> MemoryReport {
        let l = self.ledger.lock();
        MemoryReport {
            used: l.used,
            peak: l.peak,
            capacity: l.capacity,
            live_allocations: l.live,
        }
    }

    /// Resets the peak-usage high-water mark to the current usage.
    pub fn reset_peak(&self) {
        let mut l = self.ledger.lock();
        l.peak = l.used;
    }

    /// Fault-aware kernel launch: consults the installed [`FaultPlan`]
    /// before executing. A faulted launch returns
    /// [`DeviceError::KernelFault`] **without running the kernel body**
    /// (no partial writes), so it is always safe to retry; a launch on a
    /// lost device returns [`DeviceError::DeviceLost`].
    pub fn try_launch<F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        body: F,
    ) -> Result<KernelStats, DeviceError>
    where
        F: FnMut(&mut Warp),
    {
        let (verdict, launch_index) = self.faults.lock().on_launch();
        match verdict {
            Verdict::Ok => Ok(self.launch(name, cfg, body)),
            Verdict::Lost => Err(DeviceError::DeviceLost),
            Verdict::Fault => Err(DeviceError::KernelFault {
                kernel: name.to_string(),
                launch_index,
            }),
        }
    }

    /// Launches a kernel: `body` is executed once per warp, lanes in
    /// lockstep, warps in increasing id order (deterministic). Statistics
    /// are accumulated in the device metrics registry under `name`.
    ///
    /// Bypasses fault injection — use [`Device::try_launch`] for
    /// fault-aware engines.
    ///
    /// Returns the stats of this single launch.
    pub fn launch<F>(&self, name: &str, cfg: LaunchConfig, mut body: F) -> KernelStats
    where
        F: FnMut(&mut Warp),
    {
        let warps = cfg.threads.div_ceil(WARP_SIZE).max(1);
        let tail_active = if cfg.threads.is_multiple_of(WARP_SIZE) || cfg.threads == 0 {
            WARP_SIZE
        } else {
            cfg.threads % WARP_SIZE
        };
        let mut stats = KernelStats {
            launches: 1,
            warps: warps as u64,
            blocks: cfg.threads.div_ceil(cfg.threads_per_block.max(1)) as u64,
            l2_modelled: true,
            ..Default::default()
        };
        let mut l2 = self.l2.lock();
        for w in 0..warps {
            let active = if w + 1 == warps {
                tail_active
            } else {
                WARP_SIZE
            };
            let mut warp = Warp::new(w, active, &mut stats, &mut l2);
            body(&mut warp);
        }
        drop(l2);
        self.metrics.lock().record(name, &stats);
        stats
    }

    /// A copy of the per-kernel metrics accumulated so far.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.lock().clone()
    }

    /// Clears the per-kernel metrics.
    pub fn reset_metrics(&self) {
        *self.metrics.lock() = MetricsRegistry::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_the_ledger() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1 << 20);
        assert_eq!(dev.memory().used, 0);
        let a = dev.alloc::<u32>(1000).unwrap();
        let used = dev.memory().used;
        assert!(
            (4000..=4096 + 256).contains(&used),
            "aligned allocation, got {used}"
        );
        assert_eq!(dev.memory().live_allocations, 1);
        drop(a);
        assert_eq!(dev.memory().used, 0);
        assert_eq!(dev.memory().live_allocations, 0);
        assert!(dev.memory().peak >= 4000, "peak survives the free");
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1024);
        let _a = dev.alloc::<u8>(512).unwrap();
        let err = dev.alloc::<u8>(1024).unwrap_err();
        match err {
            DeviceError::OutOfMemory { requested, free } => {
                assert_eq!(requested, 1024);
                assert_eq!(free, 512);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn freeing_makes_room_again() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1024);
        let a = dev.alloc::<u8>(1024).unwrap();
        assert!(dev.alloc::<u8>(1).is_err());
        drop(a);
        assert!(dev.alloc::<u8>(1024).is_ok());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1 << 20);
        {
            let _a = dev.alloc::<u64>(1000).unwrap();
            let _b = dev.alloc::<u64>(2000).unwrap();
        }
        let peak = dev.memory().peak;
        assert!(peak >= 24_000, "peak {peak}");
        dev.reset_peak();
        assert_eq!(dev.memory().peak, 0);
    }

    #[test]
    fn alloc_from_copies_host_data() {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&[1u32, 2, 3]).unwrap();
        assert_eq!(buf.host(), &[1, 2, 3]);
    }

    #[test]
    fn launch_runs_every_warp_once() {
        let dev = Device::titan_xp();
        let mut seen = Vec::new();
        let stats = dev.launch("probe", LaunchConfig::per_element(100), |warp| {
            seen.push((warp.id(), warp.active_lanes()));
        });
        assert_eq!(stats.warps, 4);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[3], (3, 4), "tail warp has 100 - 96 = 4 active lanes");
        assert_eq!(dev.metrics().kernel("probe").unwrap().launches, 1);
    }

    #[test]
    fn launch_config_helpers() {
        assert_eq!(LaunchConfig::per_element(100).threads, 100);
        assert_eq!(LaunchConfig::per_warp(10).threads, 320);
    }

    #[test]
    fn injected_alloc_fault_is_one_shot() {
        let dev = Device::with_faults(
            DeviceProps::titan_xp(),
            crate::FaultPlan::new(1).fail_alloc_at(0),
        );
        let err = dev.alloc::<u32>(8).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        assert_eq!(dev.memory().used, 0, "injected OOM reserves nothing");
        assert!(dev.alloc::<u32>(8).is_ok(), "retry succeeds");
    }

    #[test]
    fn injected_launch_fault_skips_the_body() {
        let dev = Device::with_faults(
            DeviceProps::titan_xp(),
            crate::FaultPlan::new(1).fail_launch_at(1),
        );
        let mut runs = 0;
        assert!(dev
            .try_launch("k", LaunchConfig::per_element(32), |_| runs += 1)
            .is_ok());
        let err = dev
            .try_launch("k", LaunchConfig::per_element(32), |_| runs += 1)
            .unwrap_err();
        assert_eq!(
            err,
            DeviceError::KernelFault {
                kernel: "k".into(),
                launch_index: 1
            }
        );
        assert!(err.is_transient());
        assert_eq!(runs, 1, "faulted launch must not execute the kernel body");
        assert!(dev
            .try_launch("k", LaunchConfig::per_element(32), |_| runs += 1)
            .is_ok());
        assert_eq!(runs, 2);
        assert_eq!(
            dev.metrics().kernel("k").unwrap().launches,
            2,
            "faulted launch unrecorded"
        );
    }

    #[test]
    fn lost_device_rejects_everything() {
        let dev = Device::with_faults(
            DeviceProps::titan_xp(),
            crate::FaultPlan::new(1).lose_device_at_launch(0),
        );
        assert!(!dev.is_lost());
        let err = dev
            .try_launch("k", LaunchConfig::per_element(32), |_| {})
            .unwrap_err();
        assert_eq!(err, DeviceError::DeviceLost);
        assert!(!err.is_transient());
        assert!(dev.is_lost());
        assert_eq!(dev.alloc::<u8>(1).unwrap_err(), DeviceError::DeviceLost);
        assert_eq!(
            dev.try_launch("k", LaunchConfig::per_element(32), |_| {})
                .unwrap_err(),
            DeviceError::DeviceLost,
        );
    }

    #[test]
    fn metrics_accumulate_across_launches() {
        let dev = Device::titan_xp();
        for _ in 0..3 {
            dev.launch("k", LaunchConfig::per_element(32), |_| {});
        }
        assert_eq!(dev.metrics().kernel("k").unwrap().launches, 3);
        dev.reset_metrics();
        assert!(dev.metrics().kernel("k").is_none());
    }
}

//! Device memory buffers and the slice views kernels operate on.

use crate::device::Ledger;
use parking_lot::Mutex;
use std::sync::Arc;

/// A typed allocation in simulated device memory.
///
/// Dropping the buffer returns its bytes to the device ledger — the
/// paper's §3.4 optimisation (free the integer BFS vectors, then allocate
/// the float backward vectors) is expressed by plain Rust scoping.
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    base: u64,
    bytes: u64,
    ledger: Arc<Mutex<Ledger>>,
}

impl<T: Copy> DeviceBuffer<T> {
    pub(crate) fn new(data: Vec<T>, base: u64, bytes: u64, ledger: Arc<Mutex<Ledger>>) -> Self {
        DeviceBuffer {
            data,
            base,
            bytes,
            ledger,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated device base address (256-byte aligned).
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Host-side view (device→host transfer in the real system).
    pub fn host(&self) -> &[T] {
        &self.data
    }

    /// Mutable host-side view (host→device transfer in the real system).
    pub fn host_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Read-only device view for kernel arguments.
    pub fn dslice(&self) -> DSlice<'_, T> {
        DSlice {
            data: &self.data,
            base: self.base,
        }
    }

    /// Mutable device view for kernel arguments.
    pub fn dslice_mut(&mut self) -> DSliceMut<'_, T> {
        DSliceMut {
            data: &mut self.data,
            base: self.base,
        }
    }

    /// Overwrites every element (a `cudaMemset`-style clear).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Host → device bulk transfer (a `cudaMemcpyHostToDevice`): copies
    /// `src` over the whole buffer. The explicit transfer point for
    /// mid-run hand-offs, where a traversal's frontier/σ/depth state
    /// migrates from a CPU executor onto the device.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.len()` — a partial upload would
    /// leave the device state torn.
    pub fn import(&mut self, src: &[T]) {
        assert_eq!(
            src.len(),
            self.data.len(),
            "import length must match the device allocation"
        );
        self.data.copy_from_slice(src);
    }

    /// Device → host bulk transfer (a `cudaMemcpyDeviceToHost`): copies
    /// the whole buffer into `dst`. The explicit transfer point for
    /// handing device-resident traversal state back to a CPU executor.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != self.len()`.
    pub fn export(&self, dst: &mut [T]) {
        assert_eq!(
            dst.len(),
            self.data.len(),
            "export length must match the device allocation"
        );
        dst.copy_from_slice(&self.data);
    }
}

impl<T> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("base", &self.base)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.ledger.lock().free(self.bytes);
    }
}

/// Read-only kernel-side view of a [`DeviceBuffer`]: a host slice plus the
/// simulated base address used for coalescing analysis.
#[derive(Clone, Copy)]
pub struct DSlice<'a, T> {
    pub(crate) data: &'a [T],
    pub(crate) base: u64,
}

impl<'a, T: Copy> DSlice<'a, T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Untracked scalar read — for host-side verification, not kernels.
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    pub(crate) fn addr_of(&self, index: usize) -> u64 {
        self.base + (index * std::mem::size_of::<T>()) as u64
    }
}

/// Mutable kernel-side view of a [`DeviceBuffer`].
pub struct DSliceMut<'a, T> {
    pub(crate) data: &'a mut [T],
    pub(crate) base: u64,
}

impl<'a, T: Copy> DSliceMut<'a, T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Untracked scalar read — for host-side verification, not kernels.
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// Re-borrows as a read-only view.
    pub fn as_dslice(&self) -> DSlice<'_, T> {
        DSlice {
            data: self.data,
            base: self.base,
        }
    }

    pub(crate) fn addr_of(&self, index: usize) -> u64 {
        self.base + (index * std::mem::size_of::<T>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use crate::{Device, DeviceProps};

    #[test]
    fn views_share_base_address() {
        let dev = Device::titan_xp();
        let mut buf = dev.alloc::<u32>(8).unwrap();
        let base = buf.base_addr();
        assert_eq!(buf.dslice().addr_of(2), base + 8);
        assert_eq!(buf.dslice_mut().addr_of(1), base + 4);
    }

    #[test]
    fn distinct_buffers_have_disjoint_addresses() {
        let dev = Device::titan_xp();
        let a = dev.alloc::<u64>(100).unwrap();
        let b = dev.alloc::<u64>(100).unwrap();
        let a_end = a.base_addr() + 800;
        assert!(b.base_addr() >= a_end, "buffers must not alias");
    }

    #[test]
    fn import_export_round_trip_state() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1 << 16);
        let mut buf = dev.alloc::<i64>(5).unwrap();
        buf.import(&[3, 1, 4, 1, 5]);
        assert_eq!(buf.host(), &[3, 1, 4, 1, 5]);
        let mut back = vec![0i64; 5];
        buf.export(&mut back);
        assert_eq!(back, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    #[should_panic(expected = "import length")]
    fn import_rejects_length_mismatch() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1 << 16);
        let mut buf = dev.alloc::<u32>(4).unwrap();
        buf.import(&[1, 2, 3]);
    }

    #[test]
    fn fill_and_host_access() {
        let dev = Device::with_capacity(DeviceProps::titan_xp(), 1 << 16);
        let mut buf = dev.alloc::<i64>(4).unwrap();
        buf.fill(7);
        assert_eq!(buf.host(), &[7, 7, 7, 7]);
        buf.host_mut()[0] = 1;
        assert_eq!(buf.dslice().get(0), 1);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
    }
}

//! Analytic (roofline) timing model for simulated kernels.
//!
//! The reproduction does not claim cycle accuracy; it models the two
//! resources that bound the paper's memory-dominated kernels —
//! instruction issue and DRAM bandwidth — plus the fixed launch overhead
//! the paper's §3.4 kernel-fusion argument is about:
//!
//! ```text
//! t = overhead + max(instructions / issue_rate,
//!                    bytes · (1 − hit_rate) / bandwidth)
//! ```
//!
//! Modelled **GLT** (global memory load throughput, the paper's Figure 5b
//! metric) is *requested* load bytes over time. Because cache hits don't
//! pay DRAM time, well-coalesced, cache-friendly kernels can show GLT
//! above the DRAM ceiling — exactly the effect the paper reports for its
//! veCSC kernels (60 % above the 575 GB/s theoretical line).

use crate::device::DeviceProps;
use crate::metrics::KernelStats;

/// Roofline timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Warp instructions issued per second, whole device
    /// (`sms · (cores_per_sm / 32) · clock`).
    pub issue_rate: f64,
    /// DRAM bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Fixed cost per kernel launch, seconds (driver dispatch plus the
    /// level-synchronous readback both BC pipelines pay per level).
    pub launch_overhead: f64,
    /// Fallback fraction of transaction bytes served by cache, used only
    /// for records the L2 model did not instrument (the simulator now
    /// measures misses through `simt`'s set-associative L2).
    pub l2_hit_rate: f64,
    /// Extra cycles per serialised atomic replay, expressed in
    /// warp-instruction units.
    pub atomic_replay_cost: f64,
    /// On-chip L2 bandwidth, bytes/second — the ceiling for fully
    /// cache-resident kernels (≈ 3× DRAM on Pascal-class parts).
    pub l2_bandwidth: f64,
}

impl TimingModel {
    /// Derives the model from device properties with default cache and
    /// overhead parameters.
    pub fn from_props(p: &DeviceProps) -> Self {
        TimingModel {
            issue_rate: p.sms as f64 * (p.cores_per_sm as f64 / 32.0) * p.clock_ghz * 1e9,
            bandwidth: p.mem_bandwidth_gbs * 1e9,
            launch_overhead: 8e-6,
            l2_hit_rate: 0.35,
            atomic_replay_cost: 4.0,
            l2_bandwidth: 3.0 * p.mem_bandwidth_gbs * 1e9,
        }
    }

    /// Titan Xp defaults (the paper's GPU).
    pub fn titan_xp() -> Self {
        Self::from_props(&DeviceProps::titan_xp())
    }

    /// Modelled *busy* time of a kernel: issue/DRAM roofline without the
    /// launch overhead — the window an `nvprof`-style profiler measures.
    pub fn kernel_busy_time_s(&self, s: &KernelStats) -> f64 {
        // Bank conflicts serialise the shared-memory instruction: one
        // extra issue slot per conflicting lane.
        let issue = (s.instructions as f64
            + s.atomic_conflicts as f64 * self.atomic_replay_cost
            + s.smem_bank_conflicts as f64)
            / self.issue_rate;
        // DRAM time: measured L2 misses when the cache model ran;
        // otherwise the constant-hit-rate fallback (synthetic stats).
        let dram_bytes = if s.l2_modelled {
            s.dram_bytes_total() as f64
        } else {
            s.bytes_total() as f64 * (1.0 - self.l2_hit_rate)
        };
        // Every transaction byte crosses the L2; misses also pay DRAM.
        let l2_time = s.bytes_total() as f64 / self.l2_bandwidth;
        issue.max(dram_bytes / self.bandwidth).max(l2_time)
    }

    /// Modelled execution time of a kernel (or of an accumulated set of
    /// launches — overhead is charged per launch).
    pub fn kernel_time_s(&self, s: &KernelStats) -> f64 {
        s.launches as f64 * self.launch_overhead + self.kernel_busy_time_s(s)
    }

    /// Modelled global-memory load throughput in GB/s: requested load
    /// bytes over the kernel's *busy* time, as `nvprof` reports it (the
    /// paper's Figure 5b metric).
    pub fn glt_gbs(&self, s: &KernelStats) -> f64 {
        let t = self.kernel_busy_time_s(s);
        if t == 0.0 {
            return 0.0;
        }
        s.bytes_loaded as f64 / t / 1e9
    }

    /// Millions of traversed edges per second for a run that touched
    /// `edges` edges in the modelled time of `s`.
    pub fn mteps(&self, s: &KernelStats, edges: usize) -> f64 {
        let t = self.kernel_time_s(s);
        if t == 0.0 {
            return 0.0;
        }
        edges as f64 / t / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(bytes: u64, instr: u64, launches: u64) -> KernelStats {
        KernelStats {
            launches,
            instructions: instr,
            active_lane_ops: instr * 32,
            bytes_loaded: bytes,
            load_transactions: bytes / 32,
            loads: bytes / 4,
            ..Default::default()
        }
    }

    #[test]
    fn titan_xp_issue_rate() {
        let m = TimingModel::titan_xp();
        // 30 SMs × 4 warp slots × 1.58 GHz.
        assert!((m.issue_rate - 30.0 * 4.0 * 1.58e9).abs() < 1.0);
    }

    #[test]
    fn memory_bound_kernel_time_scales_with_bytes() {
        let m = TimingModel::titan_xp();
        let t1 = m.kernel_time_s(&sample_stats(1 << 30, 100, 1));
        let t2 = m.kernel_time_s(&sample_stats(2 << 30, 100, 1));
        assert!(t2 > 1.9 * t1 && t2 < 2.1 * t1, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn compute_bound_kernel_time_scales_with_instructions() {
        let m = TimingModel::titan_xp();
        let t1 = m.kernel_time_s(&sample_stats(32, 1_000_000_000, 1));
        let t2 = m.kernel_time_s(&sample_stats(32, 2_000_000_000, 1));
        assert!(t2 > 1.9 * t1, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let m = TimingModel::titan_xp();
        let t = m.kernel_time_s(&sample_stats(0, 1, 1000));
        assert!((t - 1000.0 * m.launch_overhead).abs() / t < 0.01);
    }

    #[test]
    fn glt_can_exceed_dram_bandwidth_via_cache_hits() {
        let mut m = TimingModel::titan_xp();
        m.l2_hit_rate = 0.9;
        m.launch_overhead = 0.0;
        let s = sample_stats(100 << 30, 1, 1);
        let glt = m.glt_gbs(&s);
        assert!(
            glt > m.bandwidth / 1e9,
            "with 90% hits, apparent GLT {glt} should beat DRAM {}",
            m.bandwidth / 1e9
        );
        assert!(
            glt <= m.l2_bandwidth / 1e9 + 1.0,
            "…but stays under the L2 roofline: {glt}"
        );
    }

    #[test]
    fn measured_l2_misses_drive_the_dram_term() {
        let m = TimingModel::titan_xp();
        let mut hot = sample_stats(1 << 30, 100, 1);
        hot.l2_modelled = true;
        hot.dram_bytes_loaded = 0; // fully resident
        let mut cold = hot;
        cold.dram_bytes_loaded = cold.bytes_loaded; // everything misses
        assert!(m.kernel_busy_time_s(&hot) < m.kernel_busy_time_s(&cold) / 2.0);
    }

    #[test]
    fn atomics_slow_the_kernel() {
        let m = TimingModel::titan_xp();
        let mut s = sample_stats(32, 1_000_000, 1);
        let t0 = m.kernel_time_s(&s);
        s.atomic_conflicts = 10_000_000;
        assert!(m.kernel_time_s(&s) > 2.0 * t0);
    }

    #[test]
    fn mteps_counts_edges_over_time() {
        let m = TimingModel::titan_xp();
        let s = sample_stats(1 << 20, 1000, 1);
        let t = m.kernel_time_s(&s);
        let mteps = m.mteps(&s, 1_000_000);
        assert!((mteps - 1.0 / t).abs() < 1e-9);
    }
}

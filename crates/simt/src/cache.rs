//! Set-associative L2 cache model.
//!
//! The timing model charges DRAM time only for sector requests that
//! *miss* in this cache; hits are served on-chip. 16-way set-associative
//! with per-set LRU, deterministic, persistent across kernel launches on
//! the same device (as the real L2 is).

/// Ways per set.
const WAYS: usize = 16;

/// Sentinel for an empty way.
const EMPTY: u64 = u64::MAX;

/// A deterministic set-associative cache over 32-byte sector ids.
#[derive(Debug)]
pub(crate) struct L2Cache {
    sets: Vec<[u64; WAYS]>,
    lru: Vec<[u64; WAYS]>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Builds a cache holding `capacity_bytes / 32` sectors.
    pub(crate) fn new(capacity_bytes: u64) -> Self {
        let sectors = (capacity_bytes / crate::SECTOR_BYTES).max(WAYS as u64);
        let sets = (sectors as usize / WAYS).next_power_of_two().max(1);
        L2Cache {
            sets: vec![[EMPTY; WAYS]; sets],
            lru: vec![[0; WAYS]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches `sector`; returns `true` on a hit. Misses install the
    /// sector, evicting the set's LRU way.
    pub(crate) fn access(&mut self, sector: u64) -> bool {
        self.tick += 1;
        let set = (sector as usize) & (self.sets.len() - 1);
        let ways = &mut self.sets[set];
        let stamps = &mut self.lru[set];
        for w in 0..WAYS {
            if ways[w] == sector {
                stamps[w] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU.
        let mut victim = 0;
        for w in 1..WAYS {
            if stamps[w] < stamps[victim] {
                victim = w;
            }
        }
        ways[victim] = sector;
        stamps[victim] = self.tick;
        self.misses += 1;
        false
    }

    /// `(hits, misses)` since construction.
    #[cfg(test)]
    pub(crate) fn counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = L2Cache::new(1 << 20);
        assert!(!c.access(42));
        assert!(c.access(42));
        assert!(c.access(42));
        assert_eq!(c.counts(), (2, 1));
    }

    #[test]
    fn capacity_eviction() {
        // Cache of 16 sets x 16 ways = 256 sectors.
        let mut c = L2Cache::new(256 * 32);
        // Stream 10x the capacity: everything misses.
        for s in 0..2560u64 {
            assert!(!c.access(s), "sector {s} should miss on a cold stream");
        }
        // Re-streaming also misses (evicted by the later sectors).
        let (h, m) = c.counts();
        assert_eq!(h, 0);
        assert_eq!(m, 2560);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = L2Cache::new(256 * 32);
        for s in 0..200u64 {
            c.access(s);
        }
        // Second pass over the same 200 sectors: all hits (fits in 256).
        let mut hits = 0;
        for s in 0..200u64 {
            if c.access(s) {
                hits += 1;
            }
        }
        assert!(hits >= 190, "resident set should hit, got {hits}/200");
    }

    #[test]
    fn lru_prefers_recent() {
        let mut c = L2Cache::new(16 * 32); // one set, 16 ways
        for s in 0..16u64 {
            c.access(s * (c.sets.len() as u64)); // all map to set 0
        }
        // Touch sector 0's line again, then insert a new one: victim must
        // not be the freshly touched line.
        let stride = c.sets.len() as u64;
        assert!(c.access(0));
        c.access(16 * stride);
        assert!(c.access(0), "recently used line survived eviction");
    }
}

//! Per-kernel execution counters (the simulator's `nvprof`).

use std::collections::BTreeMap;

/// Counters for one kernel (one launch, or the sum over launches under
/// the same name in a [`MetricsRegistry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of launches accumulated here.
    pub launches: u64,
    /// Warps executed.
    pub warps: u64,
    /// Thread blocks in the grid(s).
    pub blocks: u64,
    /// Warp-level instructions issued.
    pub instructions: u64,
    /// Sum over instructions of participating lanes (≤ 32 · instructions).
    pub active_lane_ops: u64,
    /// Per-lane load operations.
    pub loads: u64,
    /// Per-lane store operations.
    pub stores: u64,
    /// 32-byte load transactions after coalescing.
    pub load_transactions: u64,
    /// 32-byte store transactions after coalescing.
    pub store_transactions: u64,
    /// Bytes moved by load transactions.
    pub bytes_loaded: u64,
    /// Bytes moved by store transactions.
    pub bytes_stored: u64,
    /// Extra serialised lanes from atomics hitting one address.
    pub atomic_conflicts: u64,
    /// Same-address plain-store collisions within a warp instruction.
    pub store_conflicts: u64,
    /// Shared-memory (on-chip) lane accesses — no global traffic.
    pub smem_ops: u64,
    /// Shared-memory bank conflicts (serialised replays).
    pub smem_bank_conflicts: u64,
    /// Load bytes that *missed* the modelled L2 (DRAM traffic).
    pub dram_bytes_loaded: u64,
    /// Store bytes that missed the modelled L2.
    pub dram_bytes_stored: u64,
    /// Whether the L2 model instrumented this record (distinguishes a
    /// true 100% hit rate from synthetic stats without cache data).
    pub l2_modelled: bool,
}

impl KernelStats {
    /// Warp execution efficiency in `[0, 1]`: mean fraction of lanes
    /// active per issued instruction. Low values = heavy divergence.
    pub fn warp_efficiency(&self) -> f64 {
        if self.instructions == 0 {
            return 1.0;
        }
        self.active_lane_ops as f64 / (self.instructions as f64 * 32.0)
    }

    /// Mean lanes served per memory transaction — 1.0 is fully scattered,
    /// higher is better coalescing (up to 32 for 1-byte or broadcast
    /// patterns, 8 for unit-stride `u32`).
    pub fn coalescing_factor(&self) -> f64 {
        let tx = self.load_transactions + self.store_transactions;
        if tx == 0 {
            return 1.0;
        }
        (self.loads + self.stores) as f64 / tx as f64
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// DRAM bytes (L2 misses).
    pub fn dram_bytes_total(&self) -> u64 {
        self.dram_bytes_loaded + self.dram_bytes_stored
    }

    /// Measured L2 hit rate over transaction bytes (1.0 when no traffic).
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.bytes_total();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.dram_bytes_total() as f64 / total as f64
    }

    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.warps += other.warps;
        self.blocks += other.blocks;
        self.instructions += other.instructions;
        self.active_lane_ops += other.active_lane_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_transactions += other.load_transactions;
        self.store_transactions += other.store_transactions;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.atomic_conflicts += other.atomic_conflicts;
        self.store_conflicts += other.store_conflicts;
        self.smem_ops += other.smem_ops;
        self.smem_bank_conflicts += other.smem_bank_conflicts;
        self.dram_bytes_loaded += other.dram_bytes_loaded;
        self.dram_bytes_stored += other.dram_bytes_stored;
        self.l2_modelled |= other.l2_modelled;
    }
}

/// Named accumulation of [`KernelStats`] across launches (what
/// `Device::metrics()` returns).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    kernels: BTreeMap<String, KernelStats>,
}

impl MetricsRegistry {
    /// Accumulates one launch under `name`.
    pub fn record(&mut self, name: &str, stats: &KernelStats) {
        self.kernels
            .entry(name.to_string())
            .or_default()
            .merge(stats);
    }

    /// Stats for one kernel name, if it has launched.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.get(name)
    }

    /// Iterates `(name, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KernelStats)> {
        self.kernels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum over all kernels.
    ///
    /// Note that the merged record sets `l2_modelled` if *any* input
    /// record was instrumented, so calling [`KernelStats::l2_hit_rate`]
    /// on it silently counts uninstrumented bytes as hits. Hit-rate
    /// summaries should use [`MetricsRegistry::l2_hit_rate`] instead,
    /// which excludes uninstrumented records.
    pub fn total(&self) -> KernelStats {
        let mut t = KernelStats::default();
        for s in self.kernels.values() {
            t.merge(s);
        }
        t
    }

    /// Sum over only the kernels the L2 model instrumented
    /// (`l2_modelled == true`). `None` when no record was instrumented —
    /// distinguishing "no cache data" from a genuine 100% hit rate.
    pub fn total_l2_modelled(&self) -> Option<KernelStats> {
        let mut t = KernelStats::default();
        let mut any = false;
        for s in self.kernels.values().filter(|s| s.l2_modelled) {
            t.merge(s);
            any = true;
        }
        any.then_some(t)
    }

    /// L2 hit rate over instrumented records only. Uninstrumented
    /// records carry no miss data, so folding their bytes into the
    /// denominator would inflate the rate; they are excluded here (their
    /// volume is reported by [`MetricsRegistry::unmodelled_bytes`]).
    pub fn l2_hit_rate(&self) -> Option<f64> {
        self.total_l2_modelled().map(|t| t.l2_hit_rate())
    }

    /// Bytes moved by records the L2 model did *not* instrument — the
    /// traffic excluded from [`MetricsRegistry::l2_hit_rate`].
    pub fn unmodelled_bytes(&self) -> u64 {
        self.kernels
            .values()
            .filter(|s| !s.l2_modelled)
            .map(|s| s.bytes_total())
            .sum()
    }

    /// Lane-weighted warp efficiency across every kernel. Records with
    /// zero issued instructions contribute nothing (rather than the
    /// per-record 1.0 placeholder of [`KernelStats::warp_efficiency`]).
    pub fn warp_efficiency(&self) -> f64 {
        self.total().warp_efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_of_empty_stats_is_one() {
        assert_eq!(KernelStats::default().warp_efficiency(), 1.0);
        assert_eq!(KernelStats::default().coalescing_factor(), 1.0);
    }

    #[test]
    fn efficiency_reflects_active_lanes() {
        let s = KernelStats {
            instructions: 10,
            active_lane_ops: 160,
            ..Default::default()
        };
        assert!((s.warp_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coalescing_factor_counts_lanes_per_transaction() {
        let s = KernelStats {
            loads: 32,
            load_transactions: 4,
            ..Default::default()
        };
        assert_eq!(s.coalescing_factor(), 8.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = KernelStats {
            loads: 1,
            bytes_loaded: 32,
            launches: 1,
            ..Default::default()
        };
        let b = KernelStats {
            loads: 2,
            bytes_loaded: 64,
            launches: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.bytes_total(), 96);
        assert_eq!(a.launches, 2);
    }

    #[test]
    fn l2_fields_merge_and_rate() {
        let mut a = KernelStats {
            bytes_loaded: 320,
            dram_bytes_loaded: 160,
            l2_modelled: true,
            ..Default::default()
        };
        let b = KernelStats {
            bytes_stored: 320,
            dram_bytes_stored: 0,
            ..Default::default()
        };
        a.merge(&b);
        assert!(a.l2_modelled);
        assert_eq!(a.dram_bytes_total(), 160);
        assert!((a.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(KernelStats::default().l2_hit_rate(), 1.0);
    }

    /// A record shaped like the simulator emits them: every transaction
    /// moves exactly one 32-byte sector.
    fn sectorised(loads: u64, stores: u64, l2: bool) -> KernelStats {
        KernelStats {
            launches: 1,
            instructions: loads + stores,
            active_lane_ops: 32 * (loads + stores),
            loads: 8 * loads,
            stores: 8 * stores,
            load_transactions: loads,
            store_transactions: stores,
            bytes_loaded: 32 * loads,
            bytes_stored: 32 * stores,
            dram_bytes_loaded: if l2 { 16 * loads } else { 0 },
            l2_modelled: l2,
            ..Default::default()
        }
    }

    #[test]
    fn merge_preserves_sector_byte_invariant() {
        // bytes == 32 · transactions is the simulator's sector law; it
        // must survive any sequence of merges.
        let mut reg = MetricsRegistry::default();
        for i in 0..5u64 {
            reg.record("fwd", &sectorised(3 * i + 1, i, true));
            reg.record("bwd", &sectorised(i + 2, 2 * i, true));
        }
        for (name, s) in reg.iter() {
            assert_eq!(s.bytes_loaded, 32 * s.load_transactions, "{name}");
            assert_eq!(s.bytes_stored, 32 * s.store_transactions, "{name}");
        }
        let t = reg.total();
        assert_eq!(t.bytes_loaded, 32 * t.load_transactions);
        assert_eq!(t.bytes_stored, 32 * t.store_transactions);
    }

    #[test]
    fn counters_are_monotone_across_launches() {
        let mut reg = MetricsRegistry::default();
        let mut prev = KernelStats::default();
        for i in 0..8u64 {
            reg.record("k", &sectorised(i, i / 2, i % 2 == 0));
            let cur = *reg.kernel("k").unwrap();
            assert!(cur.launches > prev.launches, "launch count must grow");
            assert!(cur.loads >= prev.loads);
            assert!(cur.stores >= prev.stores);
            assert!(cur.bytes_loaded >= prev.bytes_loaded);
            assert!(cur.instructions >= prev.instructions);
            assert!(cur.active_lane_ops >= prev.active_lane_ops);
            prev = cur;
        }
    }

    #[test]
    fn unmodelled_records_are_excluded_from_registry_hit_rate() {
        let mut reg = MetricsRegistry::default();
        // Instrumented kernel: 50% of its load bytes miss to DRAM.
        reg.record("modelled", &sectorised(10, 0, true));
        // Uninstrumented kernel with a large byte volume: folding it into
        // the denominator would report a ~90% hit rate.
        reg.record("synthetic", &sectorised(90, 0, false));
        let rate = reg.l2_hit_rate().expect("one record is instrumented");
        assert!(
            (rate - 0.5).abs() < 1e-12,
            "rate {rate} must ignore synthetic bytes"
        );
        assert_eq!(reg.unmodelled_bytes(), 32 * 90);
        // The naive total still ORs the flag and skews the rate — that is
        // exactly what the registry-level accessor avoids.
        let naive = reg.total();
        assert!(naive.l2_modelled);
        assert!(naive.l2_hit_rate() > 0.9);
    }

    #[test]
    fn hit_rate_is_none_without_instrumented_records() {
        let mut reg = MetricsRegistry::default();
        assert_eq!(reg.l2_hit_rate(), None);
        reg.record("synthetic", &sectorised(5, 5, false));
        assert_eq!(reg.l2_hit_rate(), None);
        assert!(reg.total_l2_modelled().is_none());
    }

    #[test]
    fn registry_warp_efficiency_ignores_empty_records() {
        let mut reg = MetricsRegistry::default();
        reg.record(
            "empty",
            &KernelStats {
                launches: 1,
                ..Default::default()
            },
        );
        reg.record(
            "half",
            &KernelStats {
                instructions: 10,
                active_lane_ops: 160,
                ..Default::default()
            },
        );
        // The empty record's per-record efficiency placeholder is 1.0,
        // but it issued nothing, so the aggregate must stay at 0.5.
        assert!((reg.warp_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn registry_accumulates_and_totals() {
        let mut reg = MetricsRegistry::default();
        reg.record(
            "a",
            &KernelStats {
                loads: 5,
                ..Default::default()
            },
        );
        reg.record(
            "a",
            &KernelStats {
                loads: 7,
                ..Default::default()
            },
        );
        reg.record(
            "b",
            &KernelStats {
                stores: 3,
                ..Default::default()
            },
        );
        assert_eq!(reg.kernel("a").unwrap().loads, 12);
        assert_eq!(reg.kernel("b").unwrap().stores, 3);
        assert!(reg.kernel("c").is_none());
        assert_eq!(reg.total().loads, 12);
        assert_eq!(reg.total().stores, 3);
        assert_eq!(reg.iter().count(), 2);
    }
}

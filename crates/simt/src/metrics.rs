//! Per-kernel execution counters (the simulator's `nvprof`).

use std::collections::BTreeMap;

/// Counters for one kernel (one launch, or the sum over launches under
/// the same name in a [`MetricsRegistry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of launches accumulated here.
    pub launches: u64,
    /// Warps executed.
    pub warps: u64,
    /// Thread blocks in the grid(s).
    pub blocks: u64,
    /// Warp-level instructions issued.
    pub instructions: u64,
    /// Sum over instructions of participating lanes (≤ 32 · instructions).
    pub active_lane_ops: u64,
    /// Per-lane load operations.
    pub loads: u64,
    /// Per-lane store operations.
    pub stores: u64,
    /// 32-byte load transactions after coalescing.
    pub load_transactions: u64,
    /// 32-byte store transactions after coalescing.
    pub store_transactions: u64,
    /// Bytes moved by load transactions.
    pub bytes_loaded: u64,
    /// Bytes moved by store transactions.
    pub bytes_stored: u64,
    /// Extra serialised lanes from atomics hitting one address.
    pub atomic_conflicts: u64,
    /// Same-address plain-store collisions within a warp instruction.
    pub store_conflicts: u64,
    /// Shared-memory (on-chip) lane accesses — no global traffic.
    pub smem_ops: u64,
    /// Shared-memory bank conflicts (serialised replays).
    pub smem_bank_conflicts: u64,
    /// Load bytes that *missed* the modelled L2 (DRAM traffic).
    pub dram_bytes_loaded: u64,
    /// Store bytes that missed the modelled L2.
    pub dram_bytes_stored: u64,
    /// Whether the L2 model instrumented this record (distinguishes a
    /// true 100% hit rate from synthetic stats without cache data).
    pub l2_modelled: bool,
}

impl KernelStats {
    /// Warp execution efficiency in `[0, 1]`: mean fraction of lanes
    /// active per issued instruction. Low values = heavy divergence.
    pub fn warp_efficiency(&self) -> f64 {
        if self.instructions == 0 {
            return 1.0;
        }
        self.active_lane_ops as f64 / (self.instructions as f64 * 32.0)
    }

    /// Mean lanes served per memory transaction — 1.0 is fully scattered,
    /// higher is better coalescing (up to 32 for 1-byte or broadcast
    /// patterns, 8 for unit-stride `u32`).
    pub fn coalescing_factor(&self) -> f64 {
        let tx = self.load_transactions + self.store_transactions;
        if tx == 0 {
            return 1.0;
        }
        (self.loads + self.stores) as f64 / tx as f64
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// DRAM bytes (L2 misses).
    pub fn dram_bytes_total(&self) -> u64 {
        self.dram_bytes_loaded + self.dram_bytes_stored
    }

    /// Measured L2 hit rate over transaction bytes (1.0 when no traffic).
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.bytes_total();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.dram_bytes_total() as f64 / total as f64
    }

    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.launches += other.launches;
        self.warps += other.warps;
        self.blocks += other.blocks;
        self.instructions += other.instructions;
        self.active_lane_ops += other.active_lane_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_transactions += other.load_transactions;
        self.store_transactions += other.store_transactions;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.atomic_conflicts += other.atomic_conflicts;
        self.store_conflicts += other.store_conflicts;
        self.smem_ops += other.smem_ops;
        self.smem_bank_conflicts += other.smem_bank_conflicts;
        self.dram_bytes_loaded += other.dram_bytes_loaded;
        self.dram_bytes_stored += other.dram_bytes_stored;
        self.l2_modelled |= other.l2_modelled;
    }
}

/// Named accumulation of [`KernelStats`] across launches (what
/// `Device::metrics()` returns).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    kernels: BTreeMap<String, KernelStats>,
}

impl MetricsRegistry {
    /// Accumulates one launch under `name`.
    pub fn record(&mut self, name: &str, stats: &KernelStats) {
        self.kernels.entry(name.to_string()).or_default().merge(stats);
    }

    /// Stats for one kernel name, if it has launched.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.get(name)
    }

    /// Iterates `(name, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KernelStats)> {
        self.kernels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum over all kernels.
    pub fn total(&self) -> KernelStats {
        let mut t = KernelStats::default();
        for s in self.kernels.values() {
            t.merge(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_of_empty_stats_is_one() {
        assert_eq!(KernelStats::default().warp_efficiency(), 1.0);
        assert_eq!(KernelStats::default().coalescing_factor(), 1.0);
    }

    #[test]
    fn efficiency_reflects_active_lanes() {
        let s = KernelStats { instructions: 10, active_lane_ops: 160, ..Default::default() };
        assert!((s.warp_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coalescing_factor_counts_lanes_per_transaction() {
        let s = KernelStats {
            loads: 32,
            load_transactions: 4,
            ..Default::default()
        };
        assert_eq!(s.coalescing_factor(), 8.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = KernelStats { loads: 1, bytes_loaded: 32, launches: 1, ..Default::default() };
        let b = KernelStats { loads: 2, bytes_loaded: 64, launches: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.bytes_total(), 96);
        assert_eq!(a.launches, 2);
    }

    #[test]
    fn l2_fields_merge_and_rate() {
        let mut a = KernelStats {
            bytes_loaded: 320,
            dram_bytes_loaded: 160,
            l2_modelled: true,
            ..Default::default()
        };
        let b = KernelStats { bytes_stored: 320, dram_bytes_stored: 0, ..Default::default() };
        a.merge(&b);
        assert!(a.l2_modelled);
        assert_eq!(a.dram_bytes_total(), 160);
        assert!((a.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(KernelStats::default().l2_hit_rate(), 1.0);
    }

    #[test]
    fn registry_accumulates_and_totals() {
        let mut reg = MetricsRegistry::default();
        reg.record("a", &KernelStats { loads: 5, ..Default::default() });
        reg.record("a", &KernelStats { loads: 7, ..Default::default() });
        reg.record("b", &KernelStats { stores: 3, ..Default::default() });
        assert_eq!(reg.kernel("a").unwrap().loads, 12);
        assert_eq!(reg.kernel("b").unwrap().stores, 3);
        assert!(reg.kernel("c").is_none());
        assert_eq!(reg.total().loads, 12);
        assert_eq!(reg.total().stores, 3);
        assert_eq!(reg.iter().count(), 2);
    }
}

//! Warp-synchronous execution context: the instruction-level API kernels
//! are written against.

use crate::buffer::{DSlice, DSliceMut};
use crate::metrics::KernelStats;
use crate::SECTOR_BYTES;

/// Lanes per warp (NVIDIA's fixed warp width).
pub const WARP_SIZE: usize = 32;

/// One warp's execution context.
///
/// Every method corresponds to a single SIMT instruction issued by the
/// warp: the 32 lanes execute it in lockstep, inactive lanes (predicated
/// off by the kernel's control flow) are `None`. The simulator records per
/// instruction:
///
/// * the number of participating lanes — aggregate *warp execution
///   efficiency* is the divergence metric;
/// * for memory instructions, the set of distinct 32-byte sectors touched
///   — the *coalescing* metric (unit-stride accesses by consecutive lanes
///   fuse into few transactions; random gathers explode into up to 32).
pub struct Warp<'a> {
    id: usize,
    launched: usize,
    stats: &'a mut KernelStats,
    l2: &'a mut crate::cache::L2Cache,
}

/// Counts distinct values among the first `len` entries of `addrs`.
fn distinct_sectors(addrs: &mut [u64], len: usize) -> u64 {
    let slice = &mut addrs[..len];
    slice.sort_unstable();
    let mut count = 0u64;
    let mut prev = None;
    for &a in slice.iter() {
        if Some(a) != prev {
            count += 1;
            prev = Some(a);
        }
    }
    count
}

impl<'a> Warp<'a> {
    pub(crate) fn new(
        id: usize,
        launched: usize,
        stats: &'a mut KernelStats,
        l2: &'a mut crate::cache::L2Cache,
    ) -> Self {
        debug_assert!((1..=WARP_SIZE).contains(&launched));
        Warp {
            id,
            launched,
            stats,
            l2,
        }
    }

    /// Runs the distinct sectors of one memory instruction through the
    /// L2 model; returns the missed (DRAM) bytes.
    fn charge_l2(&mut self, sectors: &[u64]) -> u64 {
        let mut prev = None;
        let mut dram = 0u64;
        for &sct in sectors {
            if Some(sct) == prev {
                continue;
            }
            prev = Some(sct);
            if !self.l2.access(sct) {
                dram += crate::SECTOR_BYTES;
            }
        }
        dram
    }

    /// Warp id within the launch (`threadId / 32` of its first lane).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of lanes that were launched in this warp (32 except for the
    /// grid's tail warp).
    pub fn active_lanes(&self) -> usize {
        self.launched
    }

    /// Global thread id of `lane`, or `None` if the lane is beyond the
    /// launch bound.
    pub fn global_id(&self, lane: usize) -> Option<usize> {
        (lane < self.launched).then_some(self.id * WARP_SIZE + lane)
    }

    fn issue(&mut self, participating: u64) {
        self.stats.instructions += 1;
        self.stats.active_lane_ops += participating;
    }

    /// A generic ALU/control instruction executed by `participating`
    /// lanes. Kernels call this for per-lane arithmetic (index math,
    /// comparisons) so divergence shows up in the efficiency metric.
    pub fn alu(&mut self, participating: usize) {
        debug_assert!(participating <= WARP_SIZE);
        self.issue(participating as u64);
    }

    /// Vector load: lane `l` reads `slice[idx[l]]` where `idx[l]` is
    /// `Some`. Returns a per-lane value array (`T::default()` in inactive
    /// lanes).
    pub fn gather<T: Copy + Default>(
        &mut self,
        slice: &DSlice<'_, T>,
        idx: &[Option<usize>; WARP_SIZE],
    ) -> [T; WARP_SIZE] {
        let mut out = [T::default(); WARP_SIZE];
        let mut sectors = [0u64; WARP_SIZE];
        let mut k = 0usize;
        for lane in 0..WARP_SIZE {
            if let Some(i) = idx[lane] {
                out[lane] = slice.data[i];
                sectors[k] = slice.addr_of(i) / SECTOR_BYTES;
                k += 1;
            }
        }
        self.issue(k as u64);
        if k > 0 {
            let tx = distinct_sectors(&mut sectors, k);
            self.stats.loads += k as u64;
            self.stats.load_transactions += tx;
            self.stats.bytes_loaded += tx * SECTOR_BYTES;
            let dram = self.charge_l2(&sectors[..k]);
            self.stats.dram_bytes_loaded += dram;
        }
        out
    }

    /// Vector store: lane `l` writes `val` to `slice[i]` for each
    /// `Some((i, val))`. Lanes writing the same index are a race on a real
    /// GPU; the simulator resolves it deterministically (highest lane
    /// wins, as if lanes retire in order) and counts it in
    /// `store_conflicts`.
    pub fn scatter<T: Copy>(
        &mut self,
        slice: &mut DSliceMut<'_, T>,
        writes: &[Option<(usize, T)>; WARP_SIZE],
    ) {
        let mut sectors = [0u64; WARP_SIZE];
        let mut seen = [usize::MAX; WARP_SIZE];
        let mut k = 0usize;
        for lane in 0..WARP_SIZE {
            if let Some((i, v)) = writes[lane] {
                slice.data[i] = v;
                sectors[k] = slice.addr_of(i) / SECTOR_BYTES;
                if seen[..k].contains(&i) {
                    self.stats.store_conflicts += 1;
                }
                seen[k] = i;
                k += 1;
            }
        }
        self.issue(k as u64);
        if k > 0 {
            let tx = distinct_sectors(&mut sectors, k);
            self.stats.stores += k as u64;
            self.stats.store_transactions += tx;
            self.stats.bytes_stored += tx * SECTOR_BYTES;
            let dram = self.charge_l2(&sectors[..k]);
            self.stats.dram_bytes_stored += dram;
        }
    }

    /// Vector `atomicAdd`: lane `l` adds `val` into `slice[i]` for each
    /// `Some((i, val))`. Lanes hitting the same address serialise on a
    /// real GPU; the simulator counts each extra lane per address in
    /// `atomic_conflicts`. Integer accumulation saturates
    /// ([`turbobc_sparse::Scalar`]) so path-count overflow is well
    /// defined.
    pub fn atomic_add<T: turbobc_sparse::Scalar>(
        &mut self,
        slice: &mut DSliceMut<'_, T>,
        ops: &[Option<(usize, T)>; WARP_SIZE],
    ) {
        let mut sectors = [0u64; WARP_SIZE];
        let mut seen = [usize::MAX; WARP_SIZE];
        let mut k = 0usize;
        for lane in 0..WARP_SIZE {
            if let Some((i, v)) = ops[lane] {
                slice.data[i] = turbobc_sparse::Scalar::acc(slice.data[i], v);
                sectors[k] = slice.addr_of(i) / SECTOR_BYTES;
                if seen[..k].contains(&i) {
                    self.stats.atomic_conflicts += 1;
                }
                seen[k] = i;
                k += 1;
            }
        }
        self.issue(k as u64);
        if k > 0 {
            let tx = distinct_sectors(&mut sectors, k);
            // Atomics read-modify-write their sector (in L2 on modern
            // GPUs: one DRAM fill on first touch).
            self.stats.loads += k as u64;
            self.stats.stores += k as u64;
            self.stats.load_transactions += tx;
            self.stats.store_transactions += tx;
            self.stats.bytes_loaded += tx * SECTOR_BYTES;
            self.stats.bytes_stored += tx * SECTOR_BYTES;
            let dram = self.charge_l2(&sectors[..k]);
            self.stats.dram_bytes_loaded += dram;
        }
    }

    /// Shared-memory store: lane `l` writes into the block-local array
    /// `smem` for each `Some((idx, val))`. On-chip: no global
    /// transactions, but lanes hitting the same **bank** (word address
    /// mod 32) at *different* addresses serialise — counted in
    /// `smem_bank_conflicts` (same-address access broadcasts for free).
    pub fn smem_store<T: Copy>(
        &mut self,
        smem: &mut [T],
        writes: &[Option<(usize, T)>; WARP_SIZE],
    ) {
        let mut k = 0u64;
        let mut banks: [Vec<usize>; 32] = std::array::from_fn(|_| Vec::new());
        for lane in 0..WARP_SIZE {
            if let Some((i, v)) = writes[lane] {
                smem[i] = v;
                // Element-granular banking (64-bit banks handle wide
                // elements in one phase on modern hardware).
                banks[i % 32].push(i);
                k += 1;
            }
        }
        self.issue(k);
        self.stats.smem_ops += k;
        for b in &mut banks {
            if b.len() > 1 {
                b.sort_unstable();
                b.dedup();
                self.stats.smem_bank_conflicts += (b.len() - 1) as u64;
            }
        }
    }

    /// Shared-memory load (see [`Warp::smem_store`] for the bank model).
    pub fn smem_load<T: Copy + Default>(
        &mut self,
        smem: &[T],
        idx: &[Option<usize>; WARP_SIZE],
    ) -> [T; WARP_SIZE] {
        let mut out = [T::default(); WARP_SIZE];
        let mut k = 0u64;
        let mut banks: [Vec<usize>; 32] = std::array::from_fn(|_| Vec::new());
        for lane in 0..WARP_SIZE {
            if let Some(i) = idx[lane] {
                out[lane] = smem[i];
                banks[i % 32].push(i);
                k += 1;
            }
        }
        self.issue(k);
        self.stats.smem_ops += k;
        for b in &mut banks {
            if b.len() > 1 {
                b.sort_unstable();
                b.dedup();
                self.stats.smem_bank_conflicts += (b.len() - 1) as u64;
            }
        }
        out
    }

    /// Tree sum reduction through **shared memory** (the Bell & Garland
    /// CSR-vector original, which the paper's Algorithm 4 replaces with
    /// [`Warp::shfl_down`] "without using shared memory"): each lane
    /// parks its value in a 32-slot scratch array, then halving strides
    /// read-add-write until slot 0 holds the total. Costs ~2 instructions
    /// plus shared-memory traffic per step, vs 1 register instruction for
    /// the shuffle version — the ablation behind the paper's claim.
    pub fn reduce_sum_shared<T: Copy + Default + std::ops::Add<Output = T>>(
        &mut self,
        vals: [T; WARP_SIZE],
    ) -> T {
        let mut smem = [T::default(); WARP_SIZE];
        let mut park = [None; WARP_SIZE];
        for (l, slot) in park.iter_mut().enumerate() {
            *slot = Some((l, vals[l]));
        }
        self.smem_store(&mut smem, &park);
        let mut offset = WARP_SIZE / 2;
        while offset > 0 {
            let mut rd = [None; WARP_SIZE];
            for (l, slot) in rd.iter_mut().enumerate().take(offset) {
                *slot = Some(l + offset);
            }
            let partner = self.smem_load(&smem, &rd);
            let mut wr = [None; WARP_SIZE];
            for l in 0..offset {
                wr[l] = Some((l, smem[l] + partner[l]));
            }
            self.smem_store(&mut smem, &wr);
            offset /= 2;
        }
        smem[0]
    }

    /// `__shfl_down_sync`: lane `l` receives the value of lane
    /// `l + offset` (lanes past the top keep their own value). Register
    /// traffic only — no memory transactions.
    pub fn shfl_down<T: Copy>(&mut self, vals: [T; WARP_SIZE], offset: usize) -> [T; WARP_SIZE] {
        self.issue(WARP_SIZE as u64);
        let mut out = vals;
        for lane in 0..WARP_SIZE {
            if lane + offset < WARP_SIZE {
                out[lane] = vals[lane + offset];
            }
        }
        out
    }

    /// Butterfly sum reduction via [`Warp::shfl_down`] (the paper's
    /// Algorithm 4 lines 17–21): after `log2(32)` steps lane 0 holds the
    /// sum of all 32 lane values.
    pub fn reduce_sum<T: Copy + std::ops::Add<Output = T>>(
        &mut self,
        mut vals: [T; WARP_SIZE],
    ) -> T {
        let mut offset = WARP_SIZE / 2;
        while offset > 0 {
            let shifted = self.shfl_down(vals, offset);
            for lane in 0..WARP_SIZE {
                vals[lane] = vals[lane] + shifted[lane];
            }
            offset /= 2;
        }
        vals[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, LaunchConfig};

    #[test]
    fn unit_stride_gather_coalesces() {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&vec![1u32; 64]).unwrap();
        let s = dev.launch("coalesced", LaunchConfig::per_element(32), |w| {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                idx[l] = w.global_id(l);
            }
            w.gather(&buf.dslice(), &idx);
        });
        // 32 consecutive u32 = 128 bytes = 4 sectors of 32 B.
        assert_eq!(s.loads, 32);
        assert_eq!(s.load_transactions, 4);
        assert_eq!(s.bytes_loaded, 128);
    }

    #[test]
    fn strided_gather_explodes_transactions() {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&vec![0u32; 32 * 16]).unwrap();
        let s = dev.launch("strided", LaunchConfig::per_element(32), |w| {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                idx[l] = w.global_id(l).map(|g| g * 16); // 64-byte stride
            }
            w.gather(&buf.dslice(), &idx);
        });
        assert_eq!(s.load_transactions, 32, "every lane in its own sector");
        assert_eq!(s.bytes_loaded, 32 * 32);
    }

    #[test]
    fn same_address_gather_is_one_transaction() {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&[42u32]).unwrap();
        let s = dev.launch("broadcast", LaunchConfig::per_element(32), |w| {
            let idx = [Some(0usize); WARP_SIZE];
            let vals = w.gather(&buf.dslice(), &idx);
            assert!(vals.iter().all(|&v| v == 42));
        });
        assert_eq!(s.load_transactions, 1);
    }

    #[test]
    fn inactive_lanes_do_not_count() {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&vec![0u64; 32]).unwrap();
        let s = dev.launch("masked", LaunchConfig::per_element(32), |w| {
            let mut idx = [None; WARP_SIZE];
            idx[3] = Some(3); // only one lane participates
            w.gather(&buf.dslice(), &idx);
        });
        assert_eq!(s.loads, 1);
        assert_eq!(s.active_lane_ops, 1);
        assert_eq!(s.instructions, 1);
        assert!(s.warp_efficiency() < 0.05);
    }

    #[test]
    fn scatter_writes_and_counts() {
        let dev = Device::titan_xp();
        let mut buf = dev.alloc::<u32>(64).unwrap();
        let s = dev.launch("scatter", LaunchConfig::per_element(32), |w| {
            let mut writes = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                writes[l] = w.global_id(l).map(|g| (g, g as u32 + 1));
            }
            w.scatter(&mut buf.dslice_mut(), &writes);
        });
        assert_eq!(s.stores, 32);
        assert_eq!(s.store_transactions, 4);
        assert_eq!(buf.host()[5], 6);
    }

    #[test]
    fn conflicting_scatter_latest_lane_wins() {
        let dev = Device::titan_xp();
        let mut buf = dev.alloc::<u32>(4).unwrap();
        let s = dev.launch("conflict", LaunchConfig::per_element(32), |w| {
            let mut writes = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                writes[l] = Some((0usize, l as u32));
            }
            w.scatter(&mut buf.dslice_mut(), &writes);
        });
        assert_eq!(buf.host()[0], 31);
        assert_eq!(s.store_conflicts, 31);
    }

    #[test]
    fn atomic_add_accumulates_and_counts_conflicts() {
        let dev = Device::titan_xp();
        let mut buf = dev.alloc::<i64>(2).unwrap();
        let s = dev.launch("atomic", LaunchConfig::per_element(32), |w| {
            let mut ops = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                ops[l] = Some((l % 2, 1i64));
            }
            w.atomic_add(&mut buf.dslice_mut(), &ops);
        });
        assert_eq!(buf.host(), &[16, 16]);
        assert_eq!(
            s.atomic_conflicts, 30,
            "16 lanes per address => 15 replays each"
        );
    }

    #[test]
    fn shfl_down_shifts_lanes() {
        let dev = Device::titan_xp();
        dev.launch("shfl", LaunchConfig::per_element(32), |w| {
            let mut vals = [0i32; WARP_SIZE];
            for (l, v) in vals.iter_mut().enumerate() {
                *v = l as i32;
            }
            let out = w.shfl_down(vals, 4);
            assert_eq!(out[0], 4);
            assert_eq!(out[27], 31);
            assert_eq!(out[28], 28, "top lanes keep their value");
        });
    }

    #[test]
    fn smem_roundtrip_and_broadcast_has_no_conflicts() {
        let dev = Device::titan_xp();
        let s = dev.launch("smem", LaunchConfig::per_element(32), |w| {
            let mut smem = [0i64; 32];
            let mut writes = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                writes[l] = Some((l, l as i64 * 3)); // one lane per bank
            }
            w.smem_store(&mut smem, &writes);
            let idx = [Some(5usize); WARP_SIZE]; // broadcast
            let vals = w.smem_load(&smem, &idx);
            assert!(vals.iter().all(|&v| v == 15));
        });
        assert_eq!(
            s.smem_bank_conflicts, 0,
            "stride-1 and broadcast are conflict-free"
        );
        assert_eq!(s.smem_ops, 64);
        assert_eq!(s.bytes_loaded, 0, "shared memory makes no global traffic");
    }

    #[test]
    fn strided_smem_access_conflicts() {
        let dev = Device::titan_xp();
        let s = dev.launch("smem_conflict", LaunchConfig::per_element(32), |w| {
            let mut smem = [0i32; 64];
            let mut writes = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                writes[l] = Some((l * 2, 1i32)); // stride-2 i32: 2-way conflicts
            }
            w.smem_store(&mut smem, &writes);
        });
        assert_eq!(s.smem_bank_conflicts, 16, "stride-2 halves the banks");
    }

    #[test]
    fn shared_reduction_matches_shuffle_but_costs_more() {
        let dev = Device::titan_xp();
        let mut vals = [0i64; WARP_SIZE];
        for (l, v) in vals.iter_mut().enumerate() {
            *v = (l * 7 + 1) as i64;
        }
        let want: i64 = vals.iter().sum();
        let shfl = dev.launch("r_shfl", LaunchConfig::per_element(32), |w| {
            assert_eq!(w.reduce_sum(vals), want);
        });
        let shared = dev.launch("r_smem", LaunchConfig::per_element(32), |w| {
            assert_eq!(w.reduce_sum_shared(vals), want);
        });
        assert!(
            shared.instructions > shfl.instructions,
            "shared {} vs shuffle {}",
            shared.instructions,
            shfl.instructions
        );
        assert!(shared.smem_ops > 0);
        assert_eq!(shfl.smem_ops, 0);
    }

    #[test]
    fn reduce_sum_matches_sequential_sum() {
        let dev = Device::titan_xp();
        dev.launch("reduce", LaunchConfig::per_element(32), |w| {
            let mut vals = [0i64; WARP_SIZE];
            for (l, v) in vals.iter_mut().enumerate() {
                *v = (l * l) as i64;
            }
            let expect: i64 = (0..32).map(|l| (l * l) as i64).sum();
            assert_eq!(w.reduce_sum(vals), expect);
        });
    }

    #[test]
    fn l2_misses_then_hits_on_reuse() {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&vec![1u32; 1024]).unwrap();
        let sweep = |name: &str| {
            dev.launch(name, LaunchConfig::per_element(1024), |w| {
                let mut idx = [None; WARP_SIZE];
                for l in 0..WARP_SIZE {
                    idx[l] = w.global_id(l);
                }
                w.gather(&buf.dslice(), &idx);
            })
        };
        let cold = sweep("cold");
        let warm = sweep("warm");
        assert!(cold.l2_modelled && warm.l2_modelled);
        assert_eq!(
            cold.dram_bytes_loaded, cold.bytes_loaded,
            "cold sweep all misses"
        );
        assert_eq!(warm.dram_bytes_loaded, 0, "warm sweep fully resident");
        assert!(warm.l2_hit_rate() > cold.l2_hit_rate());
        // Warm sweep models faster.
        let t = dev.timing();
        assert!(t.kernel_busy_time_s(&warm) < t.kernel_busy_time_s(&cold));
    }

    #[test]
    fn tail_warp_global_ids_are_bounded() {
        let dev = Device::titan_xp();
        dev.launch("tail", LaunchConfig::per_element(40), |w| {
            if w.id() == 1 {
                assert_eq!(w.active_lanes(), 8);
                assert_eq!(w.global_id(7), Some(39));
                assert_eq!(w.global_id(8), None);
            }
        });
    }
}

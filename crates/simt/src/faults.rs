//! Deterministic, seedable fault injection for the simulated device and
//! interconnect.
//!
//! A [`FaultPlan`] describes *when* faults fire: either at explicit
//! operation indices (the 3rd allocation, the 17th kernel launch, the 2nd
//! frontier exchange…) or at a seeded random rate. Faults are **one-shot
//! and transient** unless stated otherwise: the injected operation fails
//! *without side effects* (a faulted launch never executes its body, a
//! dropped transfer moves no bytes), and the fault counter advances, so a
//! retry of the same operation draws the next index and succeeds. The one
//! sticky fault is device loss ([`FaultPlan::lose_device_at_launch`]): once
//! it fires, every subsequent operation on that device fails with
//! `DeviceError::DeviceLost`.
//!
//! Determinism: given the same plan (same seed, same trigger points) and
//! the same operation sequence, exactly the same operations fault. This is
//! what lets the fault-sweep tests assert *bit-identical* BC output under
//! recovery.

use std::fmt;

/// Which operations of a device/link should fail, and when.
///
/// Build with the fluent setters, or parse a CLI spec with
/// [`FaultPlan::parse`]:
///
/// ```
/// use turbobc_simt::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .fail_launch_at(3)
///     .with_launch_fault_rate(0.01);
/// assert!(plan.is_armed());
/// let parsed = FaultPlan::parse("seed=42,fail_launch_at=3,launch_rate=0.01").unwrap();
/// assert_eq!(plan, parsed);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the random-rate draws.
    pub seed: u64,
    /// Allocation indices (0-based) that fail with an injected OOM.
    pub fail_alloc_at: Vec<u64>,
    /// Launch indices (0-based) that fail with a transient kernel fault.
    pub fail_launch_at: Vec<u64>,
    /// Transfer indices (0-based) that are dropped in flight.
    pub drop_transfer_at: Vec<u64>,
    /// Transfer indices (0-based) that arrive corrupted.
    pub corrupt_transfer_at: Vec<u64>,
    /// Launch index at which the whole device is lost (sticky).
    pub lose_device_at_launch: Option<u64>,
    /// Probability in `[0, 1]` that any given allocation OOMs.
    pub alloc_fault_rate: f64,
    /// Probability in `[0, 1]` that any given launch faults transiently.
    pub launch_fault_rate: f64,
    /// Probability in `[0, 1]` that any given transfer is dropped.
    pub transfer_drop_rate: f64,
    /// Probability in `[0, 1]` that any given transfer is corrupted.
    pub transfer_corrupt_rate: f64,
}

impl FaultPlan {
    /// An armed-but-empty plan with the given seed: no faults fire until
    /// trigger points or rates are added.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Fail the `index`-th allocation (0-based) with an injected OOM.
    pub fn fail_alloc_at(mut self, index: u64) -> Self {
        self.fail_alloc_at.push(index);
        self
    }

    /// Fail the `index`-th kernel launch (0-based) with a transient fault.
    pub fn fail_launch_at(mut self, index: u64) -> Self {
        self.fail_launch_at.push(index);
        self
    }

    /// Drop the `index`-th link transfer (0-based).
    pub fn drop_transfer_at(mut self, index: u64) -> Self {
        self.drop_transfer_at.push(index);
        self
    }

    /// Corrupt the `index`-th link transfer (0-based).
    pub fn corrupt_transfer_at(mut self, index: u64) -> Self {
        self.corrupt_transfer_at.push(index);
        self
    }

    /// Lose the device permanently at the `index`-th launch (0-based).
    pub fn lose_device_at_launch(mut self, index: u64) -> Self {
        self.lose_device_at_launch = Some(index);
        self
    }

    /// Random allocation-OOM rate in `[0, 1]`.
    pub fn with_alloc_fault_rate(mut self, rate: f64) -> Self {
        self.alloc_fault_rate = rate;
        self
    }

    /// Random transient-launch-fault rate in `[0, 1]`.
    pub fn with_launch_fault_rate(mut self, rate: f64) -> Self {
        self.launch_fault_rate = rate;
        self
    }

    /// Random transfer-drop rate in `[0, 1]`.
    pub fn with_transfer_drop_rate(mut self, rate: f64) -> Self {
        self.transfer_drop_rate = rate;
        self
    }

    /// Random transfer-corruption rate in `[0, 1]`.
    pub fn with_transfer_corrupt_rate(mut self, rate: f64) -> Self {
        self.transfer_corrupt_rate = rate;
        self
    }

    /// Whether the plan can fire at all.
    pub fn is_armed(&self) -> bool {
        !self.fail_alloc_at.is_empty()
            || !self.fail_launch_at.is_empty()
            || !self.drop_transfer_at.is_empty()
            || !self.corrupt_transfer_at.is_empty()
            || self.lose_device_at_launch.is_some()
            || self.alloc_fault_rate > 0.0
            || self.launch_fault_rate > 0.0
            || self.transfer_drop_rate > 0.0
            || self.transfer_corrupt_rate > 0.0
    }

    /// Parses a comma-separated `key=value` spec, e.g.
    /// `seed=42,fail_launch_at=3,fail_alloc_at=0,launch_rate=0.01`.
    ///
    /// Keys: `seed`, `fail_alloc_at`, `fail_launch_at`, `drop_transfer_at`,
    /// `corrupt_transfer_at`, `lose_device_at_launch` (integers; the
    /// `*_at` keys may repeat), `alloc_rate`, `launch_rate`, `drop_rate`,
    /// `corrupt_rate` (floats in `[0, 1]`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{item}` is not key=value"))?;
            let int = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("`{key}` needs an integer, got `{value}`"))
            };
            let rate = || -> Result<f64, String> {
                let r = value
                    .parse::<f64>()
                    .map_err(|_| format!("`{key}` needs a float, got `{value}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("`{key}` must be in [0, 1], got {r}"));
                }
                Ok(r)
            };
            match key.trim() {
                "seed" => plan.seed = int()?,
                "fail_alloc_at" => plan.fail_alloc_at.push(int()?),
                "fail_launch_at" => plan.fail_launch_at.push(int()?),
                "drop_transfer_at" => plan.drop_transfer_at.push(int()?),
                "corrupt_transfer_at" => plan.corrupt_transfer_at.push(int()?),
                "lose_device_at_launch" => plan.lose_device_at_launch = Some(int()?),
                "alloc_rate" => plan.alloc_fault_rate = rate()?,
                "launch_rate" => plan.launch_fault_rate = rate()?,
                "drop_rate" => plan.transfer_drop_rate = rate()?,
                "corrupt_rate" => plan.transfer_corrupt_rate = rate()?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// A failed or corrupted link transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The transfer was dropped in flight; no bytes arrived.
    Dropped {
        /// 0-based index of the faulted transfer.
        transfer_index: u64,
    },
    /// The transfer arrived but failed its integrity check.
    Corrupted {
        /// 0-based index of the faulted transfer.
        transfer_index: u64,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Dropped { transfer_index } => {
                write!(f, "link transfer #{transfer_index} dropped")
            }
            LinkError::Corrupted { transfer_index } => {
                write!(f, "link transfer #{transfer_index} corrupted")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// What a fault check decided for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    Ok,
    Fault,
    Lost,
}

/// Mutable runtime state evolving a [`FaultPlan`] over an operation
/// sequence: per-class counters plus the sticky lost flag.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: u64,
    allocs: u64,
    launches: u64,
    transfers: u64,
    lost: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = plan.seed ^ 0x6661_756C_7470_6C6E; // "faultpln"
        FaultState {
            plan,
            rng,
            allocs: 0,
            launches: 0,
            transfers: 0,
            lost: false,
        }
    }

    /// SplitMix64 step — deterministic rate draws with no external deps.
    fn next_unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub(crate) fn is_lost(&self) -> bool {
        self.lost
    }

    /// Decides the fate of the next allocation and advances the counter.
    pub(crate) fn on_alloc(&mut self) -> Verdict {
        if self.lost {
            return Verdict::Lost;
        }
        let idx = self.allocs;
        self.allocs += 1;
        if self.plan.fail_alloc_at.contains(&idx) {
            return Verdict::Fault;
        }
        if self.plan.alloc_fault_rate > 0.0 && self.next_unit() < self.plan.alloc_fault_rate {
            return Verdict::Fault;
        }
        Verdict::Ok
    }

    /// Decides the fate of the next launch and advances the counter.
    /// Returns the launch index alongside the verdict for error reporting.
    pub(crate) fn on_launch(&mut self) -> (Verdict, u64) {
        if self.lost {
            return (Verdict::Lost, self.launches);
        }
        let idx = self.launches;
        self.launches += 1;
        if self.plan.lose_device_at_launch == Some(idx) {
            self.lost = true;
            return (Verdict::Lost, idx);
        }
        if self.plan.fail_launch_at.contains(&idx) {
            return (Verdict::Fault, idx);
        }
        if self.plan.launch_fault_rate > 0.0 && self.next_unit() < self.plan.launch_fault_rate {
            return (Verdict::Fault, idx);
        }
        (Verdict::Ok, idx)
    }

    /// Decides the fate of the next transfer and advances the counter.
    pub(crate) fn on_transfer(&mut self) -> Result<(), LinkError> {
        let idx = self.transfers;
        self.transfers += 1;
        if self.plan.drop_transfer_at.contains(&idx) {
            return Err(LinkError::Dropped {
                transfer_index: idx,
            });
        }
        if self.plan.corrupt_transfer_at.contains(&idx) {
            return Err(LinkError::Corrupted {
                transfer_index: idx,
            });
        }
        if self.plan.transfer_drop_rate > 0.0 && self.next_unit() < self.plan.transfer_drop_rate {
            return Err(LinkError::Dropped {
                transfer_index: idx,
            });
        }
        if self.plan.transfer_corrupt_rate > 0.0
            && self.next_unit() < self.plan.transfer_corrupt_rate
        {
            return Err(LinkError::Corrupted {
                transfer_index: idx,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut st = FaultState::new(FaultPlan::default());
        for _ in 0..1000 {
            assert_eq!(st.on_alloc(), Verdict::Ok);
            assert_eq!(st.on_launch().0, Verdict::Ok);
            assert!(st.on_transfer().is_ok());
        }
        assert!(!FaultPlan::default().is_armed());
    }

    #[test]
    fn explicit_triggers_fire_once_at_their_index() {
        let plan = FaultPlan::new(7).fail_launch_at(2).fail_alloc_at(0);
        let mut st = FaultState::new(plan);
        assert_eq!(st.on_alloc(), Verdict::Fault);
        assert_eq!(
            st.on_alloc(),
            Verdict::Ok,
            "retry after one-shot fault succeeds"
        );
        assert_eq!(st.on_launch().0, Verdict::Ok);
        assert_eq!(st.on_launch().0, Verdict::Ok);
        let (v, idx) = st.on_launch();
        assert_eq!((v, idx), (Verdict::Fault, 2));
        assert_eq!(st.on_launch().0, Verdict::Ok);
    }

    #[test]
    fn device_loss_is_sticky() {
        let plan = FaultPlan::new(7).lose_device_at_launch(1);
        let mut st = FaultState::new(plan);
        assert_eq!(st.on_launch().0, Verdict::Ok);
        assert_eq!(st.on_launch().0, Verdict::Lost);
        assert_eq!(st.on_launch().0, Verdict::Lost);
        assert_eq!(st.on_alloc(), Verdict::Lost);
        assert!(st.is_lost());
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let fires = |seed: u64| -> Vec<bool> {
            let mut st = FaultState::new(FaultPlan::new(seed).with_launch_fault_rate(0.3));
            (0..64)
                .map(|_| st.on_launch().0 == Verdict::Fault)
                .collect()
        };
        assert_eq!(fires(1), fires(1), "same seed, same schedule");
        assert_ne!(fires(1), fires(2), "different seed, different schedule");
        assert!(
            fires(1).iter().any(|&f| f),
            "a 30% rate fires within 64 draws"
        );
        assert!(!fires(1).iter().all(|&f| f), "…but not on every draw");
    }

    #[test]
    fn transfer_faults_carry_their_index() {
        let plan = FaultPlan::new(0).drop_transfer_at(1).corrupt_transfer_at(2);
        let mut st = FaultState::new(plan);
        assert!(st.on_transfer().is_ok());
        assert_eq!(
            st.on_transfer(),
            Err(LinkError::Dropped { transfer_index: 1 })
        );
        assert_eq!(
            st.on_transfer(),
            Err(LinkError::Corrupted { transfer_index: 2 })
        );
        assert!(st.on_transfer().is_ok());
    }

    #[test]
    fn parse_round_trips_builder() {
        let built = FaultPlan::new(9)
            .fail_alloc_at(1)
            .fail_launch_at(4)
            .drop_transfer_at(2)
            .corrupt_transfer_at(3)
            .lose_device_at_launch(10)
            .with_alloc_fault_rate(0.1)
            .with_launch_fault_rate(0.2)
            .with_transfer_drop_rate(0.3)
            .with_transfer_corrupt_rate(0.4);
        let parsed = FaultPlan::parse(
            "seed=9,fail_alloc_at=1,fail_launch_at=4,drop_transfer_at=2,corrupt_transfer_at=3,\
             lose_device_at_launch=10,alloc_rate=0.1,launch_rate=0.2,drop_rate=0.3,corrupt_rate=0.4",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("launch_rate=1.5").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }
}

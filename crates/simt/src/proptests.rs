//! Property tests for the simulator's instruction semantics.

use crate::{Device, DeviceProps, LaunchConfig, WARP_SIZE};
use proptest::prelude::*;

proptest! {
    /// The shuffle reduction equals a plain sum for arbitrary lane values.
    #[test]
    fn reduce_sum_equals_sequential_sum(vals in proptest::array::uniform32(-1000i64..1000)) {
        let dev = Device::titan_xp();
        dev.launch("prop_reduce", LaunchConfig::per_element(32), |w| {
            let got = w.reduce_sum(vals);
            let want: i64 = vals.iter().sum();
            assert_eq!(got, want);
        });
    }

    /// Gather returns exactly the addressed elements, and the transaction
    /// count is bounded by [1, active lanes].
    #[test]
    fn gather_reads_correct_values(
        data in proptest::collection::vec(-100i64..100, 32..200),
        picks in proptest::array::uniform32(any::<prop::sample::Index>()),
        mask in any::<u32>(),
    ) {
        let dev = Device::titan_xp();
        let buf = dev.alloc_from(&data).unwrap();
        let stats = dev.launch("prop_gather", LaunchConfig::per_element(32), |w| {
            let mut idx = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if mask & (1 << l) != 0 {
                    idx[l] = Some(picks[l].index(data.len()));
                }
            }
            let out = w.gather(&buf.dslice(), &idx);
            for l in 0..WARP_SIZE {
                if let Some(i) = idx[l] {
                    assert_eq!(out[l], data[i]);
                } else {
                    assert_eq!(out[l], 0);
                }
            }
        });
        let active = mask.count_ones() as u64;
        prop_assert_eq!(stats.loads, active);
        if active > 0 {
            prop_assert!(stats.load_transactions >= 1);
            prop_assert!(stats.load_transactions <= active);
            prop_assert_eq!(stats.bytes_loaded, stats.load_transactions * 32);
        }
    }

    /// Atomic adds accumulate exactly, independent of lane/address
    /// collision patterns, and saturate instead of wrapping.
    #[test]
    fn atomic_add_accumulates_exactly(
        targets in proptest::array::uniform32(0usize..8),
        addends in proptest::array::uniform32(0i64..1000),
    ) {
        let dev = Device::titan_xp();
        let mut buf = dev.alloc::<i64>(8).unwrap();
        dev.launch("prop_atomic", LaunchConfig::per_element(32), |w| {
            let mut ops = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                ops[l] = Some((targets[l], addends[l]));
            }
            w.atomic_add(&mut buf.dslice_mut(), &ops);
        });
        let mut want = [0i64; 8];
        for l in 0..WARP_SIZE {
            want[targets[l]] += addends[l];
        }
        prop_assert_eq!(buf.host(), &want[..]);
    }

    /// The allocation ledger is exact: used equals the sum of live
    /// aligned allocations, and everything is returned on drop.
    #[test]
    fn ledger_accounts_for_every_allocation(sizes in proptest::collection::vec(1usize..10_000, 1..20)) {
        let dev = Device::new(DeviceProps::titan_xp());
        let mut expected = 0u64;
        {
            let mut held = Vec::new();
            for &s in &sizes {
                let bytes = (s * 8) as u64;
                expected += bytes.div_ceil(256) * 256;
                held.push(dev.alloc::<u64>(s).unwrap());
            }
            prop_assert_eq!(dev.memory().used, expected);
            prop_assert_eq!(dev.memory().live_allocations, sizes.len());
        }
        prop_assert_eq!(dev.memory().used, 0);
        prop_assert_eq!(dev.memory().peak, expected);
    }
}

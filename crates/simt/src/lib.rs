//! A software **SIMT execution simulator** — the reproduction's stand-in
//! for the CUDA GPU of the TurboBC paper.
//!
//! The paper's claims are about *algorithm structure on a GPU*: how the
//! three SpMV kernels map work to threads and warps, how their access
//! patterns coalesce, how much device memory the array inventory needs
//! (`7n + m` words for TurboBC vs `9n + 2m` for gunrock), and what global
//! memory load throughput (GLT) the kernels sustain. No CUDA device is
//! available here, so this crate executes kernels under the same model and
//! measures exactly those observables:
//!
//! * [`Device`] — a simulated GPU with a global-memory capacity (default:
//!   the paper's NVIDIA Titan Xp, 12 196 MB). Allocations go through an
//!   accounting ledger and fail with [`DeviceError::OutOfMemory`] exactly
//!   when a real `cudaMalloc` would — this is what reproduces Table 4's
//!   gunrock OOMs and Figures 3/5a.
//! * [`DeviceBuffer`] — typed device memory with a simulated address,
//!   freed back to the ledger on drop (the paper's §3.4 free-the-int-
//!   vectors-before-allocating-the-float-vectors trick is observable).
//! * [`LaunchConfig`]/[`Device::launch`] — kernels execute one **warp** of
//!   32 lanes at a time, in lockstep. The kernel body is a closure over a
//!   [`Warp`] context whose vector operations ([`Warp::gather`],
//!   [`Warp::scatter`], [`Warp::atomic_add`], [`Warp::shfl_down`],
//!   [`Warp::alu`]) correspond to single SIMT instructions; the simulator
//!   records, per instruction, the active-lane mask (warp divergence) and
//!   the set of 32-byte memory sectors touched (coalescing).
//! * [`KernelStats`]/[`MetricsRegistry`] — per-kernel counters:
//!   instructions, active lanes, loads/stores, memory transactions,
//!   bytes moved, atomic serialisation conflicts.
//! * [`TimingModel`] — an analytic roofline: kernel time is the max of
//!   compute time (warp instructions over SM throughput), **measured**
//!   DRAM time (the device carries a deterministic 16-way
//!   set-associative L2 model — 3 MB on the Titan Xp — and only sector
//!   misses pay DRAM bandwidth) and the L2-bandwidth ceiling, plus a
//!   fixed launch overhead. Modelled GLT = requested bytes / busy time,
//!   which — as in the paper's Figure 5b — exceeds the DRAM ceiling when
//!   the access stream hits in cache.
//! * [`Interconnect`] — PCIe/NVLink transfer model for the multi-GPU
//!   driver.
//!
//! Execution is sequential and fully deterministic; the simulator measures
//! structure, it does not race. (Wall-clock performance comparisons in the
//! reproduction come from the rayon engine in the `turbobc` crate.)

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod buffer;
mod cache;
mod device;
mod faults;
mod interconnect;
mod metrics;
#[cfg(test)]
mod proptests;
mod timing;
mod warp;

pub use buffer::{DSlice, DSliceMut, DeviceBuffer};
pub use device::{Device, DeviceError, DeviceProps, LaunchConfig, MemoryReport};
pub use faults::{FaultPlan, LinkError};
pub use interconnect::Interconnect;
pub use metrics::{KernelStats, MetricsRegistry};
pub use timing::TimingModel;
pub use warp::{Warp, WARP_SIZE};

/// Memory-transaction sector size in bytes (modern NVIDIA GPUs fetch
/// global memory in 32-byte sectors).
pub const SECTOR_BYTES: u64 = 32;

//! Road-network generator (Table 1's `luxembourg_osm` family).
//!
//! OSM road graphs are planar, almost everywhere degree 2 (road segments
//! are polylines of many intermediate vertices), with junction vertices of
//! degree 3–6 and an enormous BFS depth (`d = 1035` for Luxembourg). The
//! generator builds a sparsified planar junction grid and subdivides every
//! road into a chain of segment vertices.

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Generates a road network: a `bx × by` grid of junctions whose edges are
/// kept with probability 0.85 (dead ends and irregular blocks), each kept
/// road subdivided into `subdiv` intermediate degree-2 vertices.
///
/// Mean degree lands just above 2 and BFS depth scales with
/// `(bx + by) · subdiv`, matching the family profile.
pub fn road_network(bx: usize, by: usize, subdiv: usize, seed: u64) -> Graph {
    assert!(
        bx >= 2 && by >= 2,
        "road_network needs a grid of at least 2×2 junctions"
    );
    let mut r = rng(seed);
    let junctions = bx * by;
    // First junctions, then chain vertices appended on demand.
    let mut next_vertex = junctions;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let id = |i: usize, j: usize| i * by + j;

    let mut road = |edges: &mut Vec<(usize, usize)>, a: usize, b: usize, segs: usize| {
        let mut prev = a;
        for _ in 0..segs {
            let mid = next_vertex;
            next_vertex += 1;
            edges.push((prev, mid));
            prev = mid;
        }
        edges.push((prev, b));
    };

    for i in 0..bx {
        for j in 0..by {
            let keep_h = r.gen::<f64>() < 0.85;
            let keep_v = r.gen::<f64>() < 0.85;
            let segs = 1 + (r.gen::<u32>() as usize % (2 * subdiv.max(1)));
            if j + 1 < by && keep_h {
                road(&mut edges, id(i, j), id(i, j + 1), segs);
            }
            if i + 1 < bx && keep_v {
                road(&mut edges, id(i, j), id(i + 1, j), segs);
            }
        }
    }
    let n = next_vertex;
    let edges: Vec<(VertexId, VertexId)> = edges
        .into_iter()
        .map(|(a, b)| (a as VertexId, b as VertexId))
        .collect();
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphClass, GraphStats};

    #[test]
    fn mostly_degree_two() {
        let g = road_network(12, 12, 8, 1);
        let s = GraphStats::compute(&g);
        assert!(
            (2.0..2.6).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        assert!(
            s.degree.max <= 8,
            "junctions cap at degree 4 + slack, got {}",
            s.degree.max
        );
        assert_eq!(s.class(), GraphClass::Regular);
    }

    #[test]
    fn deep_bfs_tree() {
        let g = road_network(10, 10, 10, 2);
        let r = bfs(&g, 0);
        // Crossing the grid costs ~(bx+by)·subdiv hops.
        assert!(r.height > 60, "road networks are deep, got {}", r.height);
    }

    #[test]
    fn most_vertices_in_one_component() {
        let g = road_network(14, 14, 6, 3);
        let r = bfs(&g, g.default_source());
        assert!(
            r.reached as f64 > 0.6 * g.n() as f64,
            "reached only {} of {}",
            r.reached,
            g.n()
        );
    }

    #[test]
    fn deterministic() {
        assert!(road_network(6, 6, 4, 7)
            .edges()
            .eq(road_network(6, 6, 4, 7).edges()));
    }
}

//! Power-law generators: social networks, AS-level internet and web
//! crawls (`com-Youtube`, `internet`, `GAP-twitter`, `it-2004`, `sk-2005`).

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m0` existing vertices chosen proportionally to their current degree
/// (implemented with the repeated-endpoint trick). Undirected; the family
/// of `com-Youtube` (mean degree ~2·m0, heavy tail).
pub fn preferential_attachment(n: usize, m0: usize, seed: u64) -> Graph {
    assert!(
        n >= 2 && m0 >= 1,
        "preferential_attachment needs n >= 2, m0 >= 1"
    );
    let mut r = rng(seed);
    // `targets` holds every edge endpoint ever created; sampling uniformly
    // from it is sampling proportionally to degree.
    let mut endpoints: Vec<VertexId> = vec![0, 1];
    let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    for u in 2..n {
        for _ in 0..m0.min(u) {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            edges.push((u as VertexId, t));
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, false, &edges)
}

/// Chung–Lu model with power-law weights `w_i ∝ (i + i0)^(-1/(γ-1))`
/// scaled to the requested mean degree; edges are sampled by picking both
/// endpoints proportionally to weight. Directed (the `GAP-twitter`
/// profile: a handful of vertices with colossal in/out-degree).
pub fn chung_lu(n: usize, mean_degree: f64, gamma: f64, seed: u64) -> Graph {
    assert!(n >= 2 && mean_degree > 0.0 && gamma > 1.0);
    let mut r = rng(seed);
    let exp = -1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
    // Cumulative distribution for weighted sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    let m = (mean_degree * n as f64) as usize;
    let sample = |r: &mut rand_chacha::ChaCha8Rng| -> VertexId {
        let x = r.gen::<f64>() * total;
        cdf.partition_point(|&c| c < x).min(n - 1) as VertexId
    };
    let mut edges = Vec::with_capacity(m);
    // The lowest-weight 15% of vertices form peripheral follow-chains
    // instead of core edges — real social graphs have long, thin
    // tendrils that set their BFS depth (`d = 15` for GAP-twitter even
    // though the dense core has diameter ~4).
    let core = n - n * 15 / 100;
    for _ in 0..m {
        let u = sample(&mut r);
        let v = sample(&mut r);
        if (u as usize) < core && (v as usize) < core {
            edges.push((u, v));
        }
    }
    let chain_len = 11;
    let mut prev: Option<VertexId> = None;
    for (i, u) in (core..n).enumerate() {
        let u = u as VertexId;
        match prev {
            Some(p) if i % chain_len != 0 => {
                edges.push((u, p));
                edges.push((p, u));
            }
            _ => {
                // Chain head follows (and is followed back by) a core user.
                let anchor = sample(&mut r).min(core as VertexId - 1);
                edges.push((u, anchor));
                edges.push((anchor, u));
            }
        }
        prev = Some(u);
    }
    Graph::from_edges(n, true, &edges)
}

/// AS-level internet topology: a preferential-attachment *tree* (each new
/// AS buys transit from one provider chosen by degree) plus a sparse set
/// of peering links. Directed, mean degree ≈ 2, one huge transit hub, BFS
/// depth ~20 — the Table 1 `internet` profile.
pub fn internet_topology(n: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut r = rng(seed);
    let mut endpoints: Vec<VertexId> = vec![0];
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n);
    for u in 1..n {
        // Provider link, attached preferentially but damped (degree^~0.7)
        // by mixing uniform choice in: this deepens the tree to d ≈ 20
        // instead of d ≈ 3.
        let provider = if r.gen::<f64>() < 0.5 {
            endpoints[r.gen_range(0..endpoints.len())]
        } else {
            r.gen_range(0..u) as VertexId
        };
        // Customer→provider and provider→customer route announcements.
        edges.push((u as VertexId, provider));
        edges.push((provider, u as VertexId));
        endpoints.push(provider);
        endpoints.push(u as VertexId);
        // Occasional peering link (one-way announcement).
        if r.gen::<f64>() < 0.1 && u > 2 {
            let peer = r.gen_range(0..u) as VertexId;
            edges.push((u as VertexId, peer));
        }
    }
    Graph::from_edges(n, true, &edges)
}

/// Web-crawl copying model (`it-2004` / `sk-2005` profile). Pages are
/// grouped into *hosts*; each page either copies the out-links of an
/// earlier page on its host (probability `copy_p` — this is what makes
/// in-degree power-law) or links within its host, with a minority of
/// links crossing to pages in a nearby window of hosts. Cross-host
/// locality is what gives real crawls their characteristic BFS depth
/// (`d ≈ 50` for it-2004/sk-2005): the frontier must walk the host
/// neighbourhood structure. Directed, mean out-degree ≈ `out_deg`.
pub fn webgraph(n: usize, out_deg: usize, copy_p: f64, seed: u64) -> Graph {
    assert!(n >= 2 && out_deg >= 1);
    let mut r = rng(seed);
    const HOST_SIZE: usize = 192;
    let hosts = n.div_ceil(HOST_SIZE).max(1);
    // Cross-links reach ± this many hosts; sized so the host graph's
    // diameter (≈ hosts / window) lands near the family's d ≈ 50.
    let window = (hosts / 50).max(2);
    let host_of = |u: usize| u / HOST_SIZE;
    let host_page = |r: &mut rand_chacha::ChaCha8Rng, h: usize| -> usize {
        let lo = h * HOST_SIZE;
        let hi = ((h + 1) * HOST_SIZE).min(n);
        lo + r.gen_range(0..hi - lo)
    };
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * out_deg);
    let mut out_lists: Vec<Vec<VertexId>> = vec![vec![]; n];
    for u in 1..n {
        let h = host_of(u);
        let mut links: Vec<VertexId> = Vec::with_capacity(out_deg);
        // Template copying from an earlier page of the same host.
        let host_lo = h * HOST_SIZE;
        if u > host_lo && r.gen::<f64>() < copy_p {
            let template = host_lo + r.gen_range(0..u - host_lo);
            links.extend(out_lists[template].iter().copied());
        }
        // A few index/directory pages fan out to a large share of their
        // neighbourhood (the family's max out-degree is ~350x the mean).
        let fan = if r.gen::<f64>() < 0.003 {
            out_deg * 40
        } else {
            out_deg
        };
        while links.len() < fan {
            let v = if r.gen::<f64>() < 0.8 {
                // Intra-host link.
                host_page(&mut r, h)
            } else {
                // Cross-host link within the locality window.
                let lo = h.saturating_sub(window);
                let hi = (h + window).min(hosts - 1);
                let target_host = r.gen_range(lo..=hi);
                host_page(&mut r, target_host)
            };
            if v != u {
                links.push(v as VertexId);
            }
        }
        links.truncate(fan + fan / 2);
        for &v in &links {
            edges.push((u as VertexId, v));
        }
        out_lists[u] = links;
    }
    Graph::from_edges(n, true, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphStats};

    #[test]
    fn ba_has_heavy_tail() {
        let g = preferential_attachment(4000, 3, 1);
        let s = GraphStats::compute(&g);
        assert!(
            (5.0..7.0).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        assert!(s.degree.max > 50, "hubs expected, max {}", s.degree.max);
        let r = bfs(&g, g.default_source());
        assert_eq!(r.reached, g.n(), "BA graphs are connected");
        assert!(r.height <= 10);
    }

    #[test]
    fn chung_lu_twitter_profile() {
        let g = chung_lu(4000, 20.0, 1.8, 2);
        let s = GraphStats::compute(&g);
        assert!(
            s.degree.max as f64 > 50.0 * s.degree.mean,
            "extreme hubs expected: max {} mean {}",
            s.degree.max,
            s.degree.mean
        );
        assert!(s.scf > 5.0, "hub-to-hub wiring inflates scf, got {}", s.scf);
    }

    #[test]
    fn internet_profile() {
        let g = internet_topology(6000, 3);
        let s = GraphStats::compute(&g);
        assert!(
            (1.5..3.0).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        assert!(
            s.degree.max > 40,
            "transit hub expected, max {}",
            s.degree.max
        );
        let r = bfs(&g, g.default_source());
        assert_eq!(r.reached, g.n(), "provider tree connects everything");
        assert!((5..40).contains(&r.height), "depth {}", r.height);
    }

    #[test]
    fn webgraph_profile() {
        let g = webgraph(12_000, 10, 0.5, 4);
        let s = GraphStats::compute(&g);
        assert!(
            (6.0..16.0).contains(&s.degree.mean),
            "mean out-degree {}",
            s.degree.mean
        );
        assert!(
            s.degree.max as f64 > 10.0 * s.degree.mean,
            "index pages give a fat out-degree tail: max {} mean {}",
            s.degree.max,
            s.degree.mean
        );
        // Host-window locality gives the family's deep BFS.
        let r = bfs(&g, g.default_source());
        assert!((8..80).contains(&r.height), "depth {}", r.height);
        assert!(
            r.reached as f64 > 0.5 * g.n() as f64,
            "reached {}",
            r.reached
        );
    }

    #[test]
    fn all_deterministic() {
        assert!(preferential_attachment(500, 2, 9)
            .edges()
            .eq(preferential_attachment(500, 2, 9).edges()));
        assert!(chung_lu(500, 5.0, 2.1, 9)
            .edges()
            .eq(chung_lu(500, 5.0, 2.1, 9).edges()));
        assert!(internet_topology(500, 9)
            .edges()
            .eq(internet_topology(500, 9).edges()));
        assert!(webgraph(500, 5, 0.4, 9)
            .edges()
            .eq(webgraph(500, 5, 0.4, 9).edges()));
    }
}

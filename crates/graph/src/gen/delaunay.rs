//! Delaunay triangulation generator (`delaunay_nXX` family of Table 1).
//!
//! The SuiteSparse `delaunay_n15`/`n16` graphs are Delaunay triangulations
//! of random points in the unit square. This module implements the
//! Bowyer–Watson incremental algorithm with walking point location and
//! recursive edge legalisation (flips), inserting points in Morton (Z-curve)
//! order so that each walk starts near its target — the standard
//! near-linear-time construction.
//!
//! The output matches the family's signature: planar, mean degree ≈ 6
//! (Euler's formula), max degree ≲ 20, large BFS depth (`O(√n)`).

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

#[derive(Clone, Copy)]
struct Point {
    x: f64,
    y: f64,
}

/// A triangle: vertex ids and, for each vertex position `i`, the index of
/// the neighbouring triangle across the edge *opposite* vertex `i`.
#[derive(Clone, Copy)]
struct Tri {
    v: [usize; 3],
    nbr: [Option<usize>; 3],
    alive: bool,
}

struct Triangulation {
    pts: Vec<Point>,
    tris: Vec<Tri>,
    last: usize,
}

/// Signed doubled area of triangle `abc` (positive if counter-clockwise).
fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Positive iff `p` lies strictly inside the circumcircle of ccw `abc`.
fn in_circle(a: Point, b: Point, c: Point, p: Point) -> f64 {
    let adx = a.x - p.x;
    let ady = a.y - p.y;
    let bdx = b.x - p.x;
    let bdy = b.y - p.y;
    let cdx = c.x - p.x;
    let cdy = c.y - p.y;
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx)
}

impl Triangulation {
    fn new(pts: Vec<Point>) -> Self {
        // Super-triangle comfortably containing the unit square.
        let mut all = pts;
        let s0 = Point { x: -10.0, y: -10.0 };
        let s1 = Point { x: 30.0, y: -10.0 };
        let s2 = Point { x: -10.0, y: 30.0 };
        let base = all.len();
        all.extend_from_slice(&[s0, s1, s2]);
        let tris = vec![Tri {
            v: [base, base + 1, base + 2],
            nbr: [None, None, None],
            alive: true,
        }];
        Triangulation {
            pts: all,
            tris,
            last: 0,
        }
    }

    fn point(&self, v: usize) -> Point {
        self.pts[v]
    }

    /// Walks from `self.last` to the triangle containing `p`.
    fn locate(&self, p: Point) -> usize {
        let mut t = self.last;
        if !self.tris[t].alive {
            t = self
                .tris
                .iter()
                .rposition(|tr| tr.alive)
                .expect("live triangle exists");
        }
        let mut steps = 0usize;
        'walk: loop {
            steps += 1;
            if steps > self.tris.len() + 3 {
                // Numerical stalemate: fall back to exhaustive scan.
                for (i, tr) in self.tris.iter().enumerate() {
                    if tr.alive && self.contains(i, p) {
                        return i;
                    }
                }
                return t;
            }
            let tr = &self.tris[t];
            for e in 0..3 {
                let a = self.point(tr.v[(e + 1) % 3]);
                let b = self.point(tr.v[(e + 2) % 3]);
                if orient2d(a, b, p) < 0.0 {
                    if let Some(nt) = tr.nbr[e] {
                        t = nt;
                        continue 'walk;
                    }
                }
            }
            return t;
        }
    }

    fn contains(&self, t: usize, p: Point) -> bool {
        let tr = &self.tris[t];
        (0..3).all(|e| {
            let a = self.point(tr.v[(e + 1) % 3]);
            let b = self.point(tr.v[(e + 2) % 3]);
            orient2d(a, b, p) >= 0.0
        })
    }

    /// Replaces the neighbour `old` of triangle `t` (if any) with `new`.
    fn replace_nbr(&mut self, t: Option<usize>, old: usize, new: usize) {
        if let Some(t) = t {
            for e in 0..3 {
                if self.tris[t].nbr[e] == Some(old) {
                    self.tris[t].nbr[e] = Some(new);
                    return;
                }
            }
        }
    }

    /// Inserts point id `pi` (already in `self.pts`), splitting its
    /// containing triangle into three and legalising outward.
    fn insert(&mut self, pi: usize) {
        let p = self.point(pi);
        let t = self.locate(p);
        let Tri { v, nbr, .. } = self.tris[t];
        self.tris[t].alive = false;

        let base = self.tris.len();
        // Child k is (p, v[(k+1)%3], v[(k+2)%3]); opposite p is nbr[k].
        for k in 0..3 {
            self.tris.push(Tri {
                v: [pi, v[(k + 1) % 3], v[(k + 2) % 3]],
                nbr: [nbr[k], Some(base + (k + 1) % 3), Some(base + (k + 2) % 3)],
                alive: true,
            });
            self.replace_nbr(nbr[k], t, base + k);
        }
        self.last = base;

        // Legalise the three outward edges.
        let mut stack: Vec<usize> = vec![base, base + 1, base + 2];
        while let Some(t) = stack.pop() {
            if !self.tris[t].alive {
                continue;
            }
            // In each child/flip product, vertex 0 is the new point `pi`;
            // the edge to legalise is opposite it.
            debug_assert_eq!(self.tris[t].v[0], pi);
            let Some(u) = self.tris[t].nbr[0] else {
                continue;
            };
            let tv = self.tris[t].v;
            let uv = self.tris[u].v;
            // Find the vertex of `u` not shared with edge (tv[1], tv[2]).
            let Some(opp_pos) = (0..3).find(|&k| uv[k] != tv[1] && uv[k] != tv[2]) else {
                continue;
            };
            let w = uv[opp_pos];
            let (a, b, c) = (self.point(tv[0]), self.point(tv[1]), self.point(tv[2]));
            if in_circle(a, b, c, self.point(w)) > 0.0 {
                // Flip edge (tv[1], tv[2]) -> (pi, w), producing triangles
                // (pi, tv[1], w) and (pi, w, tv[2]).
                let t_nbr = self.tris[t].nbr;
                let u_nbr = self.tris[u].nbr;
                // Neighbours of u across its two non-shared edges: the edge
                // (w, tv[2]) is opposite the uv-position holding tv[1], etc.
                let u_pos_of = |x: usize| (0..3).find(|&k| uv[k] == x).expect("shared vertex");
                let nb_u_b = u_nbr[u_pos_of(tv[2])]; // across (w, tv[1])
                let nb_u_c = u_nbr[u_pos_of(tv[1])]; // across (w, tv[2])
                self.tris[t].alive = false;
                self.tris[u].alive = false;
                let n0 = self.tris.len();
                // (pi, tv[1], w): edge opposite pi is (tv[1], w) -> nb_u_b.
                self.tris.push(Tri {
                    v: [pi, tv[1], w],
                    nbr: [nb_u_b, Some(n0 + 1), t_nbr[2]],
                    alive: true,
                });
                // (pi, w, tv[2]): edge opposite pi is (w, tv[2]) -> nb_u_c.
                self.tris.push(Tri {
                    v: [pi, w, tv[2]],
                    nbr: [nb_u_c, t_nbr[1], Some(n0)],
                    alive: true,
                });
                self.replace_nbr(nb_u_b, u, n0);
                self.replace_nbr(t_nbr[2], t, n0);
                self.replace_nbr(nb_u_c, u, n0 + 1);
                self.replace_nbr(t_nbr[1], t, n0 + 1);
                self.last = n0;
                stack.push(n0);
                stack.push(n0 + 1);
            }
        }
    }
}

/// Interleaves the low 16 bits of `x` and `y` (Morton code).
fn morton(x: u32, y: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xffff;
        v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
        v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1)
}

/// Generates the Delaunay triangulation of `n` seeded uniform-random points
/// in the unit square, as an undirected graph.
pub fn delaunay(n: usize, seed: u64) -> Graph {
    if n < 2 {
        return Graph::from_edges(n, false, &[]);
    }
    let mut r = rng(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point {
            x: r.gen::<f64>(),
            y: r.gen::<f64>(),
        })
        .collect();

    // Insert in Morton order for near-linear walking location.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| morton((pts[i].x * 65535.0) as u32, (pts[i].y * 65535.0) as u32));

    let mut tri = Triangulation::new(pts);
    for &i in &order {
        tri.insert(i);
    }

    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(3 * n);
    for t in tri.tris.iter().filter(|t| t.alive) {
        for e in 0..3 {
            let a = t.v[e];
            let b = t.v[(e + 1) % 3];
            if a < n && b < n {
                edges.push((a as VertexId, b as VertexId));
            }
        }
    }
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphClass, GraphStats};

    #[test]
    fn triangle_of_three_points() {
        let g = delaunay(3, 1);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 6, "three points triangulate to one triangle");
    }

    #[test]
    fn edge_count_matches_euler_bound() {
        // Planar triangulation: m_undirected <= 3n - 6; for Delaunay of
        // random points it is close to that bound.
        for &n in &[50usize, 300, 1000] {
            let g = delaunay(n, 9);
            let undirected = g.m() / 2;
            assert!(undirected <= 3 * n - 6, "n = {n}: {undirected} edges");
            assert!(
                undirected >= 2 * n,
                "n = {n}: suspiciously sparse ({undirected})"
            );
        }
    }

    #[test]
    fn connected_with_mesh_like_depth() {
        let g = delaunay(2000, 4);
        let r = bfs(&g, g.default_source());
        assert_eq!(r.reached, g.n(), "Delaunay triangulations are connected");
        // sqrt-diameter: for n = 2000 expect depth well above constant and
        // well below n.
        assert!(r.height >= 10 && r.height <= 300, "height = {}", r.height);
    }

    #[test]
    fn regular_degree_profile() {
        let g = delaunay(3000, 7);
        let s = GraphStats::compute(&g);
        assert!(
            (5.0..7.0).contains(&s.degree.mean),
            "mean degree {}",
            s.degree.mean
        );
        assert!(s.degree.max <= 25, "max degree {}", s.degree.max);
        assert_eq!(s.class(), GraphClass::Regular, "scf = {}", s.scf);
    }

    #[test]
    fn delaunay_empty_triangle_property_small() {
        // For a small instance, verify no point lies strictly inside the
        // circumcircle of any output triangle (the defining property).
        let n = 40;
        let mut r = rng(3);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point {
                x: r.gen::<f64>(),
                y: r.gen::<f64>(),
            })
            .collect();
        let mut tri = Triangulation::new(pts.clone());
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| morton((pts[i].x * 65535.0) as u32, (pts[i].y * 65535.0) as u32));
        for &i in &order {
            tri.insert(i);
        }
        for t in tri.tris.iter().filter(|t| t.alive) {
            if t.v.iter().any(|&v| v >= n) {
                continue; // super-triangle fringe
            }
            let (a, b, c) = (tri.point(t.v[0]), tri.point(t.v[1]), tri.point(t.v[2]));
            // Normalise to ccw for the in_circle sign convention.
            let (a, b, c) = if orient2d(a, b, c) > 0.0 {
                (a, b, c)
            } else {
                (a, c, b)
            };
            for (i, p) in pts.iter().enumerate() {
                if t.v.contains(&i) {
                    continue;
                }
                assert!(
                    in_circle(a, b, c, *p) <= 1e-9,
                    "point {i} inside circumcircle of {:?}",
                    t.v
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = delaunay(500, 11);
        let b = delaunay(500, 11);
        assert!(a.edges().eq(b.edges()));
    }
}

//! Circuit-netlist generator (`ASIC_100ks` / `ASIC_680ks` family).

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Generates an ASIC-style netlist graph: mostly local gate-to-gate wiring
/// (bounded fan-out), a few global nets — clock/reset trees — whose driver
/// touches hundreds of sinks (the family's max degree ≈ 206 vs mean ≈ 3–6),
/// and a shallow-ish but non-trivial BFS depth (`d ≈ 30`).
///
/// * `n` — number of cells;
/// * `fanout` — mean local out-degree;
/// * `global_nets` — number of high-fanout nets;
/// * `net_fanout` — sinks per global net.
pub fn circuit(n: usize, fanout: usize, global_nets: usize, net_fanout: usize, seed: u64) -> Graph {
    assert!(n >= 8 && fanout >= 1, "circuit needs n >= 8, fanout >= 1");
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * fanout);
    for u in 0..n {
        // Local wiring: mostly forward within a placement window, which
        // yields moderate BFS depth instead of a random-graph depth of ~log n.
        let k = 1 + r.gen_range(0..2 * fanout);
        for _ in 0..k {
            let window = (n / 24).max(8);
            let v = if r.gen::<f64>() < 0.9 {
                let off = 1 + r.gen_range(0..window);
                (u + off) % n
            } else {
                r.gen_range(0..n)
            };
            edges.push((u as VertexId, v as VertexId));
        }
    }
    for _ in 0..global_nets {
        let driver = r.gen_range(0..n) as VertexId;
        for _ in 0..net_fanout {
            let sink = r.gen_range(0..n) as VertexId;
            edges.push((driver, sink));
        }
    }
    Graph::from_edges(n, true, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphClass, GraphStats};

    #[test]
    fn degree_profile_matches_family() {
        let g = circuit(6000, 3, 6, 180, 1);
        let s = GraphStats::compute(&g);
        assert!(
            (2.0..8.0).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        assert!(
            s.degree.max >= 150,
            "global nets expected, max {}",
            s.degree.max
        );
        assert_eq!(s.class(), GraphClass::Regular, "scf = {}", s.scf);
    }

    #[test]
    fn depth_is_moderate() {
        let g = circuit(6000, 3, 6, 180, 2);
        let r = bfs(&g, g.default_source());
        assert!((4..120).contains(&r.height), "depth {}", r.height);
        assert!(r.reached as f64 > 0.9 * g.n() as f64);
    }

    #[test]
    fn deterministic() {
        assert!(circuit(300, 2, 2, 40, 3)
            .edges()
            .eq(circuit(300, 2, 2, 40, 3).edges()));
    }
}

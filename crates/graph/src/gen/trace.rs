//! Packet-trace and k-mer generators (`mawi_*` and `kmer_V1r` families).

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// MAWI packet-trace profile: an *extreme* super-star. One monitored
/// backbone endpoint talks to the overwhelming majority of hosts (degree
/// ≈ 0.85 n), a handful of second-tier hubs chained below it pick up the
/// rest, and leaves have degree 1–2. Mean degree ≈ 2, BFS depth ≈
/// `tiers + 2` (the paper's `d = 10–12`).
pub fn mawi_star(n: usize, tiers: usize, seed: u64) -> Graph {
    assert!(n >= 16 && tiers >= 1, "mawi_star needs n >= 16, tiers >= 1");
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n);
    // Vertices 0..=tiers form the backbone chain; the rest are hosts.
    for t in 0..tiers {
        edges.push((t as VertexId, (t + 1) as VertexId));
    }
    let hosts = (tiers + 1)..n;
    for h in hosts {
        // 85% of hosts hang off the root; the rest spread over the chain,
        // thinning geometrically.
        let hub = if r.gen::<f64>() < 0.85 {
            0
        } else {
            let mut t = 1;
            while t < tiers && r.gen::<f64>() < 0.5 {
                t += 1;
            }
            t
        };
        edges.push((hub as VertexId, h as VertexId));
        // A little peer-to-peer chatter between adjacent host ids.
        if r.gen::<f64>() < 0.05 && h + 1 < n {
            edges.push((h as VertexId, (h + 1) as VertexId));
        }
    }
    Graph::from_edges(n, false, &edges)
}

/// k-mer / de Bruijn profile (`kmer_V1r`): overlapping reads form long
/// near-paths with rare branches. The generator lays out `n` vertices as
/// `n / chain_len` chains, adds a branch with probability 0.02 per vertex
/// (degree cap ~8) and stitches chains together sparsely so most of the
/// graph is one deep component (the paper's `d = 324` at 214M vertices).
pub fn kmer_paths(n: usize, chain_len: usize, seed: u64) -> Graph {
    assert!(
        n >= 4 && chain_len >= 2,
        "kmer_paths needs n >= 4, chain_len >= 2"
    );
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n + n / 8);
    for u in 0..n - 1 {
        let end_of_chain = (u + 1) % chain_len == 0;
        if !end_of_chain {
            edges.push((u as VertexId, (u + 1) as VertexId));
        } else {
            // Stitch this chain's end to a random vertex of an earlier
            // chain, so the component stays connected but deep.
            let t = r.gen_range(0..=u) as VertexId;
            edges.push((u as VertexId, t));
        }
        // Rare branching (repeat k-mers).
        if r.gen::<f64>() < 0.02 {
            let t = r.gen_range(0..n) as VertexId;
            edges.push((u as VertexId, t));
        }
    }
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphStats};

    #[test]
    fn mawi_has_one_colossal_hub() {
        let g = mawi_star(5000, 8, 1);
        let s = GraphStats::compute(&g);
        assert!(
            s.degree.max as usize > g.n() / 2,
            "root should touch most hosts, max {}",
            s.degree.max
        );
        assert!(
            (1.8..2.4).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        let r = bfs(&g, g.default_source());
        assert_eq!(r.reached, g.n());
        assert!(r.height <= 8 + 4, "depth {}", r.height);
    }

    #[test]
    fn kmer_is_deep_and_low_degree() {
        let g = kmer_paths(4000, 80, 2);
        let s = GraphStats::compute(&g);
        assert!(s.degree.max <= 12, "max {}", s.degree.max);
        assert!(
            (1.8..2.6).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        let r = bfs(&g, g.default_source());
        assert!(r.height >= 40, "k-mer graphs are deep, got {}", r.height);
        assert_eq!(r.reached, g.n(), "stitching keeps one component");
    }

    #[test]
    fn deterministic() {
        assert!(mawi_star(200, 4, 5)
            .edges()
            .eq(mawi_star(200, 4, 5).edges()));
        assert!(kmer_paths(200, 20, 5)
            .edges()
            .eq(kmer_paths(200, 20, 5).edges()));
    }

    #[test]
    #[should_panic(expected = "n >= 16")]
    fn mawi_rejects_tiny_n() {
        mawi_star(4, 1, 0);
    }
}

//! Elementary generators used across tests and as building blocks.

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly (duplicates and
/// loops discarded by graph normalisation, so the final arc count can be
/// slightly below the request).
pub fn gnm(n: usize, m: usize, directed: bool, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(m);
    if n >= 2 {
        for _ in 0..m {
            let u = r.gen_range(0..n) as VertexId;
            let v = r.gen_range(0..n) as VertexId;
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, directed, &edges)
}

/// A `nx × ny` 4-connected grid (undirected). Vertex `(i, j)` has index
/// `i * ny + j`.
pub fn grid2d(nx: usize, ny: usize) -> Graph {
    let mut edges = Vec::with_capacity(2 * nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            let v = (i * ny + j) as VertexId;
            if j + 1 < ny {
                edges.push((v, v + 1));
            }
            if i + 1 < nx {
                edges.push((v, v + ny as VertexId));
            }
        }
    }
    Graph::from_edges(nx * ny, false, &edges)
}

/// A simple path `0 – 1 – … – (n-1)`.
pub fn path(n: usize, directed: bool) -> Graph {
    let edges: Vec<_> = (1..n)
        .map(|v| ((v - 1) as VertexId, v as VertexId))
        .collect();
    Graph::from_edges(n, directed, &edges)
}

/// A star `K_{1, n-1}` centred on vertex 0 (undirected).
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| (0 as VertexId, v as VertexId)).collect();
    Graph::from_edges(n, false, &edges)
}

/// The complete graph `K_n` (undirected).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn gnm_is_deterministic() {
        let a = gnm(50, 200, true, 7);
        let b = gnm(50, 200, true, 7);
        assert_eq!(a.m(), b.m());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn gnm_differs_across_seeds() {
        let a = gnm(50, 200, true, 1);
        let b = gnm(50, 200, true, 2);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.n(), 12);
        // 2·(3·3 + 2·4) arcs: 3 rows × 3 horizontal + 2×4 vertical edges.
        assert_eq!(g.m(), 2 * (3 * 3 + 2 * 4));
        let r = bfs(&g, 0);
        assert_eq!(r.reached, 12);
        assert_eq!(r.height, 1 + (3 - 1) + (4 - 1));
    }

    #[test]
    fn path_has_full_diameter() {
        let g = path(10, false);
        assert_eq!(bfs(&g, 0).height, 10);
        let d = path(10, true);
        assert_eq!(bfs(&d, 9).reached, 1, "directed path only goes forward");
    }

    #[test]
    fn star_and_complete_shapes() {
        let s = star(9);
        assert_eq!(s.out_degrees()[0], 8);
        assert_eq!(bfs(&s, 3).height, 3);
        let k = complete(6);
        assert_eq!(k.m(), 6 * 5);
        assert_eq!(bfs(&k, 0).height, 2);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(gnm(0, 10, true, 1).m(), 0);
        assert_eq!(gnm(1, 10, false, 1).m(), 0);
        assert_eq!(path(1, true).n(), 1);
        assert_eq!(grid2d(1, 1).m(), 0);
    }
}

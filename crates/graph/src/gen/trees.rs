//! Tree-heavy and disconnected stress generators for the graph-reduction
//! pipeline: pendant-rich trees the degree-1 fold collapses, and
//! multi-component unions the component split must scatter back.

use super::{preferential_attachment, rng};
use crate::{Graph, VertexId};
use rand::Rng;

/// A caterpillar tree: a spine path of `spine` vertices with `0..=legs`
/// pendant legs hung off each spine vertex (leg counts drawn per vertex,
/// seeded). Spine vertices come first (`0..spine`), legs after.
pub fn caterpillar(spine: usize, legs: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = (1..spine)
        .map(|v| ((v - 1) as VertexId, v as VertexId))
        .collect();
    let mut next = spine as VertexId;
    for v in 0..spine {
        for _ in 0..r.gen_range(0..=legs) {
            edges.push((v as VertexId, next));
            next += 1;
        }
    }
    Graph::from_edges(next as usize, false, &edges)
}

/// A broom: a handle path of `handle` vertices with `bristles` leaves
/// attached to its far end. Deterministic. The fold collapses the whole
/// graph to a point in `handle` waves (bristles and handle peel together).
pub fn broom(handle: usize, bristles: usize) -> Graph {
    let handle = handle.max(1);
    let mut edges: Vec<(VertexId, VertexId)> = (1..handle)
        .map(|v| ((v - 1) as VertexId, v as VertexId))
        .collect();
    let tip = (handle - 1) as VertexId;
    for b in 0..bristles {
        edges.push((tip, (handle + b) as VertexId));
    }
    Graph::from_edges(handle + bristles, false, &edges)
}

/// A disjoint union of `parts` preferential-attachment graphs of
/// `n_each` vertices (no edges across parts): `parts` power-law
/// components the prep split runs independently.
pub fn powerlaw_union(parts: usize, n_each: usize, seed: u64) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for k in 0..parts {
        let part = preferential_attachment(n_each, 2, seed.wrapping_add(k as u64));
        let off = (k * n_each) as VertexId;
        edges.extend(part.edges().map(|(u, v)| (u + off, v + off)));
    }
    Graph::from_edges(parts * n_each, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, connected_components};

    #[test]
    fn caterpillar_is_a_tree_with_pendant_legs() {
        let g = caterpillar(20, 3, 11);
        assert!(!g.directed());
        // A connected tree: m = 2(n − 1) stored arcs.
        assert_eq!(g.m(), 2 * (g.n() - 1));
        assert_eq!(bfs(&g, 0).reached, g.n());
        // Legs exist and are degree-1.
        let deg1 = g.out_degrees().iter().filter(|&&d| d == 1).count();
        assert!(deg1 > 10, "only {deg1} leaves");
        // Deterministic.
        assert_eq!(caterpillar(20, 3, 11).n(), g.n());
    }

    #[test]
    fn broom_shape() {
        let g = broom(5, 7);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 2 * 11);
        let deg = g.out_degrees();
        assert_eq!(deg[4], 1 + 7, "tip joins handle and all bristles");
        assert_eq!(deg.iter().filter(|&&d| d == 1).count(), 1 + 7);
        assert_eq!(bfs(&g, 0).height, 6, "handle then bristles");
    }

    #[test]
    fn powerlaw_union_has_exactly_parts_components() {
        let g = powerlaw_union(4, 100, 3);
        assert_eq!(g.n(), 400);
        let (_, ncomp) = connected_components(&g);
        assert_eq!(ncomp, 4);
        // No cross-part edges.
        assert!(g.edges().all(|(u, v)| u / 100 == v / 100));
    }
}

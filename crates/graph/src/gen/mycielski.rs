//! The Mycielskian construction (the paper's most irregular family).
//!
//! Table 3's `mycielski15 … mycielski19` are SuiteSparse graphs built by
//! repeatedly applying the Mycielski transformation to `K₂`. Starting from
//! `M₂ = K₂`, each step maps `Mₖ = (V, E)` with `|V| = n` to `Mₖ₊₁` on
//! `2n + 1` vertices: a shadow vertex `uᵢ` per original `vᵢ` plus an apex
//! `w`; edges are `E`, `{uᵢ, vⱼ}` for every `{vᵢ, vⱼ} ∈ E`, and `{uᵢ, w}`
//! for all `i`. The result is triangle-rich-free growth: chromatic number
//! increases while the clique number stays 2, degrees spread widely and the
//! diameter collapses to ~2–4 — exactly the high-`scf`, depth-3 profile the
//! paper reports.

use crate::{Graph, VertexId};

/// Generates the Mycielski graph `M_k` (so `mycielski(15)` matches the
/// SuiteSparse `mycielskian15` graph: `n = 3·2^(k-2) − 1`).
///
/// # Panics
/// Panics if `k < 2` or if the result would exceed `u32` vertex ids
/// (`k > 32`).
pub fn mycielski(k: u32) -> Graph {
    assert!((2..=32).contains(&k), "mycielski(k) requires 2 <= k <= 32");
    // M2 = K2.
    let mut n: usize = 2;
    let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    for _ in 2..k {
        let m = edges.len();
        let mut next = Vec::with_capacity(3 * m + n);
        // Original edges.
        next.extend_from_slice(&edges);
        // Shadow edges: u_i = n + i, apex w = 2n.
        for &(a, b) in &edges {
            next.push((n as VertexId + a, b));
            next.push((a, n as VertexId + b));
        }
        let w = (2 * n) as VertexId;
        for i in 0..n {
            next.push((n as VertexId + i as VertexId, w));
        }
        n = 2 * n + 1;
        edges = next;
    }
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphClass, GraphStats};

    #[test]
    fn known_small_mycielskians() {
        // M3 is the 5-cycle.
        let m3 = mycielski(3);
        assert_eq!(m3.n(), 5);
        assert_eq!(m3.m(), 10);
        assert!(m3.out_degrees().iter().all(|&d| d == 2));
        // M4 is the Grötzsch graph: 11 vertices, 20 edges.
        let m4 = mycielski(4);
        assert_eq!(m4.n(), 11);
        assert_eq!(m4.m(), 40);
    }

    #[test]
    fn vertex_count_follows_recurrence() {
        // n_k = 3 · 2^(k-2) − 1.
        for k in 2..=10u32 {
            let expected = 3 * (1usize << (k - 2)) - 1;
            assert_eq!(mycielski(k).n(), expected, "k = {k}");
        }
    }

    #[test]
    fn edge_count_follows_recurrence() {
        // m_{k+1} = 3 m_k + n_k (undirected edge counts).
        let mut m = 1usize;
        let mut n = 2usize;
        for k in 3..=10u32 {
            m = 3 * m + n;
            n = 2 * n + 1;
            assert_eq!(mycielski(k).m(), 2 * m, "k = {k}");
        }
    }

    #[test]
    fn diameter_is_small_and_graph_connected() {
        let g = mycielski(8);
        let r = bfs(&g, g.default_source());
        assert_eq!(r.reached, g.n(), "Mycielskians are connected");
        assert!(r.height <= 4, "paper reports BFS depth 3 from a hub");
    }

    #[test]
    fn classified_irregular() {
        let g = mycielski(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.class(), GraphClass::Irregular, "scf = {}", s.scf);
        assert!(s.degree.max as f64 > 4.0 * s.degree.mean);
    }

    #[test]
    fn triangle_free() {
        // The Mycielski construction preserves triangle-freeness.
        let g = mycielski(6);
        let csr = g.to_csr();
        for u in 0..g.n() {
            for &v in csr.row(u) {
                for &w in csr.row(v as usize) {
                    assert!(
                        !csr.row(w as usize).contains(&(u as VertexId)) || w == u as VertexId,
                        "triangle {u}-{v}-{w}"
                    );
                }
            }
        }
    }
}

//! Watts–Strogatz small-world generator (Table 2's `smallworld` graph).

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Generates a Watts–Strogatz small-world graph: a ring lattice on `n`
/// vertices where each vertex connects to its `k` nearest neighbours on
/// each side, with every edge rewired to a random target with probability
/// `p`.
///
/// The SuiteSparse `smallworld` graph (n = 100k, mean degree 10, BFS depth
/// 9) corresponds to `k = 5` and a small `p`.
pub fn small_world(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 2 * k, "ring lattice needs n > 2k");
    assert!(
        (0.0..=1.0).contains(&p),
        "rewiring probability must be in [0, 1]"
    );
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k);
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if r.gen::<f64>() < p {
                // Rewire to a uniform non-self target.
                v = loop {
                    let cand = r.gen_range(0..n);
                    if cand != u {
                        break cand;
                    }
                };
            }
            edges.push((u as VertexId, v as VertexId));
        }
    }
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphClass, GraphStats};

    #[test]
    fn unrewired_lattice_is_regular() {
        let g = small_world(100, 3, 0.0, 1);
        let s = GraphStats::compute(&g);
        assert_eq!(s.degree.max, 6);
        assert_eq!(s.degree.mean, 6.0);
        assert_eq!(s.degree.std, 0.0);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = small_world(2000, 5, 0.0, 2);
        let rewired = small_world(2000, 5, 0.1, 2);
        let dl = bfs(&lattice, 0).height;
        let dr = bfs(&rewired, 0).height;
        assert!(dr < dl / 4, "lattice depth {dl}, rewired depth {dr}");
    }

    #[test]
    fn smallworld_profile_matches_paper_family() {
        let g = small_world(4000, 5, 0.05, 3);
        let s = GraphStats::compute(&g);
        assert!(
            (9.0..11.0).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        assert!(s.degree.max <= 22, "max {}", s.degree.max);
        assert_eq!(s.class(), GraphClass::Regular);
        let r = bfs(&g, g.default_source());
        assert_eq!(r.reached, g.n());
        assert!(r.height <= 16, "small worlds are shallow, got {}", r.height);
    }

    #[test]
    fn deterministic() {
        assert!(small_world(300, 4, 0.2, 5)
            .edges()
            .eq(small_world(300, 4, 0.2, 5).edges()));
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_too_dense_lattice() {
        small_world(6, 3, 0.0, 0);
    }
}

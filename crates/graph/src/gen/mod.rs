//! Deterministic synthetic generators for every graph family in the
//! paper's benchmark (Tables 1–4).
//!
//! The paper's 33 graphs come from SuiteSparse/SNAP and are not bundled
//! here; each *family* is instead generated synthetically with matching
//! structure (degree shape, diameter class, scale-free class), at sizes
//! scaled to the host. All generators are seeded and bit-reproducible.
//!
//! | family | paper graphs | generator |
//! |---|---|---|
//! | Markov-chain Jacobian mesh | mark3jac*sc | [`markov_mesh`] |
//! | economic-model Jacobian | g7jac*sc | [`jacobian`] |
//! | Delaunay triangulation | delaunay_n15/16 | [`delaunay`] |
//! | road network | luxembourg_osm | [`road_network`] |
//! | AS-level internet | internet topology | [`internet_topology`] |
//! | Watts–Strogatz | smallworld | [`small_world`] |
//! | circuit | ASIC_100ks/680ks | [`circuit`] |
//! | social network | com-Youtube | [`preferential_attachment`] |
//! | packet trace super-star | mawi_* | [`mawi_star`] |
//! | Mycielskian | mycielski15–19 | [`mycielski`] |
//! | Graph500 Kronecker | kron_g500-logn18–21 | [`rmat`] |
//! | de Bruijn / k-mer | kmer_V1r | [`kmer_paths`] |
//! | web crawl | it-2004, sk-2005, GAP-twitter | [`webgraph`], [`chung_lu`] |
//!
//! Utility generators for tests: [`gnm`], [`grid2d`], [`path`], [`star`],
//! [`complete`]. Reduction-stress generators for the prep pipeline:
//! [`caterpillar`], [`broom`], [`powerlaw_union`].

mod circuit;
mod delaunay;
mod mesh;
mod mycielski;
mod powerlaw;
mod random;
mod rmat;
mod road;
mod smallworld;
mod trace;
mod trees;

pub use circuit::circuit;
pub use delaunay::delaunay;
pub use mesh::{jacobian, markov_mesh};
pub use mycielski::mycielski;
pub use powerlaw::{chung_lu, internet_topology, preferential_attachment, webgraph};
pub use random::{complete, gnm, grid2d, path, star};
pub use rmat::rmat;
pub use road::road_network;
pub use smallworld::small_world;
pub use trace::{kmer_paths, mawi_star};
pub use trees::{broom, caterpillar, powerlaw_union};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used by every randomised generator (fast, seedable,
/// reproducible across platforms).
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

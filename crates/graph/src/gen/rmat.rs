//! R-MAT / Kronecker generator (Graph500 style) for the `kron_g500-lognXX`
//! family of Table 3.

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Generates an undirected R-MAT graph with `n = 2^scale` vertices and
/// `edge_factor · n` sampled edges, using the Graph500 partition
/// probabilities `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
///
/// Duplicate edges and self-loops are discarded by graph normalisation, so
/// (as with the real `kron_g500` matrices) the stored non-zero count is
/// somewhat below `2 · edge_factor · n`. The resulting degree distribution
/// is heavily skewed — the paper's prototypical *irregular* input along
/// with the Mycielskians.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    rmat_with_probs(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// R-MAT with explicit partition probabilities `a`, `b`, `c`
/// (`d = 1 − a − b − c`).
pub fn rmat_with_probs(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(
        scale <= 30,
        "scale > 30 would overflow the workspace index type"
    );
    assert!(
        a + b + c <= 1.0 + 1e-9,
        "probabilities must sum to at most 1"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let mut u = 0usize;
        let mut v = 0usize;
        for _ in 0..scale {
            let x: f64 = r.gen();
            let (du, dv) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        edges.push((u as VertexId, v as VertexId));
    }
    Graph::from_edges(n, false, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphClass, GraphStats};

    #[test]
    fn size_is_power_of_two() {
        let g = rmat(8, 8, 42);
        assert_eq!(g.n(), 256);
        assert!(g.m() > 0);
        assert!(g.m() <= 2 * 8 * 256);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(8, 8, 5);
        let b = rmat(8, 8, 5);
        assert_eq!(a.m(), b.m());
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = rmat(12, 48, 1);
        let s = GraphStats::compute(&g);
        assert!(
            s.degree.max as f64 > 8.0 * s.degree.mean,
            "R-MAT must be hub-heavy: max {} mean {}",
            s.degree.max,
            s.degree.mean
        );
        assert_eq!(s.class(), GraphClass::Irregular, "scf = {}", s.scf);
    }

    #[test]
    fn uniform_probs_degenerate_to_erdos_renyi_like() {
        let g = rmat_with_probs(10, 8, 0.25, 0.25, 0.25, 3);
        let s = GraphStats::compute(&g);
        // With uniform quadrant probabilities the graph loses its hubs.
        assert!(s.degree.max < 40, "max degree {}", s.degree.max);
    }

    #[test]
    #[should_panic(expected = "scale > 30")]
    fn rejects_huge_scale() {
        rmat(31, 1, 0);
    }
}

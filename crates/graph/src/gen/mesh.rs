//! Directed Jacobian-style meshes (the `mark3jac*sc` and `g7jac*sc`
//! families of Tables 1–2).
//!
//! Both SuiteSparse families are Jacobians of economic models: sparse,
//! directed, near-banded matrices with bounded degree and a BFS depth that
//! grows linearly with the problem size (mark3jac: `d = 42 … 82` as
//! `n = 28k … 64k`) or stays shallow with a few denser coupling columns
//! (g7jac: `d ≈ 15–18`, max degree 153).

use super::rng;
use crate::{Graph, VertexId};
use rand::Rng;

/// Generates a `stages × width` directed staged mesh mimicking the
/// `mark3jacXXXsc` Jacobians: vertex `(s, i)` couples to a small
/// neighbourhood in its own stage and in stage `s + 1`, plus a sparse
/// back-edge, giving mean out-degree ≈ 6, max ≈ 40+ and BFS depth ≈
/// `stages` from a stage-0 source.
pub fn markov_mesh(stages: usize, width: usize, seed: u64) -> Graph {
    assert!(
        stages >= 1 && width >= 2,
        "markov_mesh needs stages >= 1, width >= 2"
    );
    let n = stages * width;
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(6 * n);
    let id = |s: usize, i: usize| (s * width + i) as VertexId;
    for s in 0..stages {
        for i in 0..width {
            let u = id(s, i);
            // Intra-stage band (tridiagonal couplings).
            if i + 1 < width {
                edges.push((u, id(s, i + 1)));
                edges.push((id(s, i + 1), u));
            }
            // Intra-stage skip couplings: keep the within-stage diameter
            // small so the BFS depth tracks the stage count, as in the
            // real mark3jac family (d ≈ problem stages).
            if r.gen::<f64>() < 0.2 {
                let j = r.gen_range(0..width);
                edges.push((u, id(s, j)));
                edges.push((id(s, j), u));
            }
            // Forward couplings to the next stage: always the aligned
            // vertex plus 1–3 random neighbours.
            if s + 1 < stages {
                edges.push((u, id(s + 1, i)));
                let extra = 1 + (r.gen::<u32>() % 3) as usize;
                for _ in 0..extra {
                    let j = r.gen_range(0..width);
                    edges.push((u, id(s + 1, j)));
                }
            }
            // Backward coupling (Jacobians are not triangular): dense
            // enough that the BFS walks one stage per level in both
            // directions, keeping d ≈ stages as in the real family.
            if s > 0 && r.gen::<f64>() < 0.6 {
                let j = r.gen_range(0..width);
                edges.push((u, id(s - 1, j)));
            }
        }
        // A couple of wider rows per stage (the "sc" scaling leaves a few
        // denser rows, giving the family's max degree ≈ 44).
        if width >= 16 {
            let hub = id(s, r.gen_range(0..width));
            for _ in 0..(16 + (r.gen::<u32>() % 16) as usize) {
                let j = r.gen_range(0..width);
                edges.push((hub, id(s, j)));
            }
        }
    }
    Graph::from_edges(n, true, &edges)
}

/// Generates a directed banded matrix with dense coupling columns,
/// mimicking the `g7jacXXXsc` Jacobians: band half-width `band` gives the
/// bulk mean degree, and `hubs` vertices get an out-fan of ≈ `hub_fan`
/// random targets (the family's max degree ≈ 153). BFS depth is
/// `O(n / (band · hub reach))` — shallow, like the paper's `d = 15–18`.
pub fn jacobian(n: usize, band: usize, hubs: usize, hub_fan: usize, seed: u64) -> Graph {
    assert!(n >= 2 && band >= 1, "jacobian needs n >= 2, band >= 1");
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * (band + 2));
    for u in 0..n {
        // Band: couple to the next `band` indices, and sparsely backwards.
        for k in 1..=band {
            if u + k < n {
                edges.push((u as VertexId, (u + k) as VertexId));
            }
            if u >= k && r.gen::<f64>() < 0.5 {
                edges.push((u as VertexId, (u - k) as VertexId));
            }
        }
        // Long-range couplings make the BFS tree shallow.
        if r.gen::<f64>() < 0.3 {
            let v = r.gen_range(0..n);
            edges.push((u as VertexId, v as VertexId));
        }
    }
    for _ in 0..hubs {
        let h = r.gen_range(0..n) as VertexId;
        for _ in 0..hub_fan {
            let v = r.gen_range(0..n) as VertexId;
            edges.push((h, v));
        }
    }
    Graph::from_edges(n, true, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, GraphClass, GraphStats};

    #[test]
    fn markov_mesh_depth_tracks_stages() {
        let g = markov_mesh(40, 64, 1);
        assert_eq!(g.n(), 40 * 64);
        let r = bfs(&g, 0);
        // Depth should be close to the stage count (+1 for the paper's
        // source-at-depth-1 convention, ± intra-stage hops).
        assert!(
            r.height >= 40 && r.height <= 40 + 66,
            "height = {} for 40 stages",
            r.height
        );
        assert!(r.reached as f64 >= 0.9 * g.n() as f64);
    }

    #[test]
    fn markov_mesh_degree_profile() {
        let g = markov_mesh(30, 64, 2);
        let s = GraphStats::compute(&g);
        assert!(
            (3.0..9.0).contains(&s.degree.mean),
            "mean {}",
            s.degree.mean
        );
        assert!(
            s.degree.max >= 16 && s.degree.max <= 64,
            "max {}",
            s.degree.max
        );
        assert_eq!(s.class(), GraphClass::Regular, "scf = {}", s.scf);
    }

    #[test]
    fn jacobian_is_shallow_with_hubs() {
        let g = jacobian(4000, 7, 12, 120, 3);
        let s = GraphStats::compute(&g);
        assert!(s.degree.max >= 100, "hub fan missing: max {}", s.degree.max);
        let r = bfs(&g, g.default_source());
        assert!(
            r.height <= 40,
            "long-range couplings keep BFS shallow, got {}",
            r.height
        );
        assert!(r.reached as f64 >= 0.9 * g.n() as f64);
    }

    #[test]
    fn generators_are_deterministic() {
        assert!(markov_mesh(10, 16, 9)
            .edges()
            .eq(markov_mesh(10, 16, 9).edges()));
        assert!(jacobian(200, 5, 2, 30, 9)
            .edges()
            .eq(jacobian(200, 5, 2, 30, 9).edges()));
    }

    #[test]
    #[should_panic(expected = "stages >= 1")]
    fn markov_mesh_rejects_degenerate_width() {
        markov_mesh(3, 1, 0);
    }
}

//! The [`Graph`] type: an unweighted graph as an adjacency-matrix pattern.

use std::fmt;

use turbobc_sparse::{Coo, Cooc, Csc, Csr, Index};

/// Vertex identifier (alias of the sparse index type).
pub type VertexId = Index;

/// What [`Graph::try_from_edges`] rejected and where. `line` is the
/// 1-based position of the offending edge in the input list, matching
/// the line numbering of one-edge-per-line files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryFromEdgesError {
    /// The vertex count does not fit the `u32` index type.
    TooManyVertices {
        /// The requested vertex count.
        n: usize,
    },
    /// An edge endpoint names a vertex `>= n`.
    EndpointOutOfRange {
        /// 1-based edge position.
        line: usize,
        /// The offending endpoint.
        vertex: VertexId,
        /// The declared vertex count.
        n: usize,
    },
    /// A vertex's raw incidence count overflowed the `u32` degree
    /// counter. Only reachable on multigraph input: duplicates are
    /// collapsed *after* validation, so a vertex repeated on more than
    /// `u32::MAX` input edges would otherwise wrap silently.
    DegreeOverflow {
        /// 1-based edge position.
        line: usize,
        /// The overflowing vertex.
        vertex: VertexId,
    },
}

impl fmt::Display for TryFromEdgesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryFromEdgesError::TooManyVertices { n } => {
                write!(f, "vertex count {n} exceeds the u32 index range")
            }
            TryFromEdgesError::EndpointOutOfRange { line, vertex, n } => {
                write!(f, "edge {line}: endpoint {vertex} out of range 0..{n}")
            }
            TryFromEdgesError::DegreeOverflow { line, vertex } => {
                write!(
                    f,
                    "edge {line}: vertex {vertex} appears on more than u32::MAX edges"
                )
            }
        }
    }
}

impl std::error::Error for TryFromEdgesError {}

/// Guards one raw incidence-counter increment; returns the vertex back
/// on overflow so the caller can report the offending edge.
fn bump_incidence(incidence: &mut [u32], x: VertexId) -> Result<(), VertexId> {
    match incidence[x as usize].checked_add(1) {
        Some(d) => {
            incidence[x as usize] = d;
            Ok(())
        }
        None => Err(x),
    }
}

/// An unweighted graph stored as the pattern of its `n × n` adjacency
/// matrix `A` (`A[u][v] = 1 ⇔` edge `u → v`).
///
/// * **Directed** graphs store each arc once.
/// * **Undirected** graphs store both orientations of every edge (the
///   symmetric closure), matching SuiteSparse symmetric-matrix expansion;
///   `m()` therefore counts `2 ×` the number of undirected edges, which is
///   exactly the paper's `m` (stored non-zeros) used in its MTEPS formulas.
///
/// Self-loops are removed and duplicate edges collapse on construction:
/// neither affects shortest paths, and the paper preprocesses its datasets
/// the same way ("the weighted graphs were considered unweighted graphs").
#[derive(Debug, Clone)]
pub struct Graph {
    directed: bool,
    coo: Coo,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. For undirected
    /// graphs each `(u, v)` pair is stored in both orientations.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or `n` exceeds `u32::MAX`. Use
    /// [`Graph::try_from_edges`] when the edge list comes from untrusted
    /// input (e.g. a file) and should be validated instead.
    pub fn from_edges(n: usize, directed: bool, edges: &[(VertexId, VertexId)]) -> Self {
        Self::try_from_edges(n, directed, edges).expect("invalid edge list")
    }

    /// Fallible [`Graph::from_edges`]: returns a line-numbered
    /// [`TryFromEdgesError`] instead of panicking when `n` does not fit
    /// the index type, an endpoint is `>= n`, or (on multigraph input) a
    /// vertex's raw incidence count would overflow the `u32` degree
    /// counters.
    pub fn try_from_edges(
        n: usize,
        directed: bool,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, TryFromEdgesError> {
        let mut coo = Coo::new(n, n).map_err(|_| TryFromEdgesError::TooManyVertices { n })?;
        coo.reserve(edges.len());
        let mut incidence = vec![0u32; n];
        for (idx, &(u, v)) in edges.iter().enumerate() {
            let line = idx + 1;
            for x in [u, v] {
                if (x as usize) >= n {
                    return Err(TryFromEdgesError::EndpointOutOfRange { line, vertex: x, n });
                }
                bump_incidence(&mut incidence, x)
                    .map_err(|vertex| TryFromEdgesError::DegreeOverflow { line, vertex })?;
            }
            coo.push(u, v);
        }
        Ok(Self::from_coo(directed, coo))
    }

    /// Builds a graph from an adjacency pattern in COO form, normalising it
    /// (loops removed, duplicates removed, symmetrised when undirected).
    pub fn from_coo(directed: bool, mut coo: Coo) -> Self {
        assert_eq!(
            coo.n_rows(),
            coo.n_cols(),
            "adjacency matrix must be square"
        );
        coo.remove_diagonal();
        if directed {
            coo.dedup();
        } else {
            coo.symmetrize();
        }
        Graph { directed, coo }
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.coo.n_rows()
    }

    /// Number of stored arcs `m` (non-zeros of `A`). For undirected graphs
    /// this counts both orientations, as in the paper.
    pub fn m(&self) -> usize {
        self.coo.nnz()
    }

    /// Whether the graph is directed.
    pub fn directed(&self) -> bool {
        self.directed
    }

    /// The paper's BC double-counting compensation: contributions are
    /// halved for undirected graphs.
    pub fn bc_scale(&self) -> f64 {
        if self.directed {
            1.0
        } else {
            0.5
        }
    }

    /// The underlying adjacency pattern in COO form.
    pub fn coo(&self) -> &Coo {
        &self.coo
    }

    /// Adjacency matrix in CSC form (column `v` = in-neighbours of `v`).
    pub fn to_csc(&self) -> Csc {
        self.coo.to_csc()
    }

    /// Adjacency matrix in CSR form (row `u` = out-neighbours of `u`).
    pub fn to_csr(&self) -> Csr {
        self.coo.to_csr()
    }

    /// Adjacency matrix in the paper's COOC form (edge list sorted by
    /// head/column vertex).
    pub fn to_cooc(&self) -> Cooc {
        self.coo.to_cooc()
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        crate::stats::count_degrees(self.n(), self.coo.iter().map(|(u, _)| u))
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        crate::stats::count_degrees(self.n(), self.coo.iter().map(|(_, v)| v))
    }

    /// Iterates over stored arcs `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.coo.iter()
    }

    /// The transpose graph (every arc reversed). Undirected graphs are
    /// their own transpose.
    pub fn transpose(&self) -> Graph {
        Graph {
            directed: self.directed,
            coo: self.coo.transpose(),
        }
    }

    /// Relabels vertices by descending out-degree (GPU BC's standard
    /// locality preprocessing: hub-adjacent index ranges coalesce
    /// better). Returns the relabelled graph and the permutation
    /// `perm[old] = new`; scores computed on the new graph map back via
    /// `score_old[v] = score_new[perm[v]]`.
    pub fn relabeled_by_degree(&self) -> (Graph, Vec<VertexId>) {
        let deg = self.out_degrees();
        let mut order: Vec<usize> = (0..self.n()).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(deg[v]), v));
        let mut perm = vec![0 as VertexId; self.n()];
        for (new, &old) in order.iter().enumerate() {
            perm[old] = new as VertexId;
        }
        let edges: Vec<(VertexId, VertexId)> = if self.directed {
            self.edges()
                .map(|(u, v)| (perm[u as usize], perm[v as usize]))
                .collect()
        } else {
            self.edges()
                .filter(|&(u, v)| u <= v)
                .map(|(u, v)| (perm[u as usize], perm[v as usize]))
                .collect()
        };
        (Graph::from_edges(self.n(), self.directed, &edges), perm)
    }

    /// The vertex with the largest out-degree — the paper computes
    /// BC/vertex from a fixed, deterministic source; a hub source reaches
    /// most of the graph, making runs comparable across implementations.
    pub fn default_source(&self) -> VertexId {
        let deg = self.out_degrees();
        deg.iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
            .map(|(i, _)| i as VertexId)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_graph_keeps_arcs_one_way() {
        let g = Graph::from_edges(3, true, &[(0, 1), (1, 2), (0, 1)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2, "duplicate arc collapses");
        assert!(g.directed());
        assert_eq!(g.bc_scale(), 1.0);
    }

    #[test]
    fn undirected_graph_stores_both_orientations() {
        let g = Graph::from_edges(3, false, &[(0, 1), (1, 2)]);
        assert_eq!(g.m(), 4);
        assert_eq!(g.bc_scale(), 0.5);
        assert!(g.to_csc().is_symmetric());
    }

    #[test]
    fn loops_are_removed() {
        let g = Graph::from_edges(2, true, &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn degrees_count_correctly() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (0, 3), (2, 0)]);
        assert_eq!(g.out_degrees(), vec![3, 0, 1, 0]);
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn default_source_is_max_out_degree() {
        let g = Graph::from_edges(4, true, &[(0, 1), (2, 0), (2, 1), (2, 3)]);
        assert_eq!(g.default_source(), 2);
    }

    #[test]
    fn default_source_prefers_smallest_index_on_tie() {
        let g = Graph::from_edges(4, true, &[(1, 0), (3, 0)]);
        assert_eq!(g.default_source(), 1);
    }

    #[test]
    fn formats_agree_on_nnz() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(g.to_csc().nnz(), g.m());
        assert_eq!(g.to_csr().nnz(), g.m());
        assert_eq!(g.to_cooc().nnz(), g.m());
    }

    #[test]
    fn transpose_reverses_arcs() {
        let g = Graph::from_edges(3, true, &[(0, 1), (1, 2)]);
        let t = g.transpose();
        let mut arcs: Vec<_> = t.edges().collect();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![(1, 0), (2, 1)]);
        let u = Graph::from_edges(3, false, &[(0, 1)]);
        assert_eq!(u.transpose().m(), u.m());
    }

    #[test]
    fn relabeling_preserves_structure() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (1, 3), (1, 4), (3, 4)]);
        let (r, perm) = g.relabeled_by_degree();
        assert_eq!(r.n(), g.n());
        assert_eq!(r.m(), g.m());
        // The hub (old vertex 1, degree 4) becomes vertex 0.
        assert_eq!(perm[1], 0);
        assert_eq!(r.out_degrees()[0], 4);
        // Degree multiset is preserved.
        let mut a = g.out_degrees();
        let mut b = r.out_degrees();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn relabeling_directed_keeps_arcs() {
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (0, 3), (2, 1)]);
        let (r, perm) = g.relabeled_by_degree();
        assert_eq!(r.m(), 4);
        // Arc (2, 1) must map to (perm[2], perm[1]).
        assert!(r.edges().any(|(u, v)| (u, v) == (perm[2], perm[1])));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = Graph::from_edges(0, true, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.default_source(), 0);
        let g1 = Graph::from_edges(1, false, &[]);
        assert_eq!(g1.m(), 0);
    }

    #[test]
    fn try_from_edges_validates_endpoints() {
        assert!(Graph::try_from_edges(3, true, &[(0, 1), (2, 0)]).is_ok());
        // The error carries the 1-based position of the offending edge.
        assert_eq!(
            Graph::try_from_edges(3, true, &[(0, 1), (3, 0)]).unwrap_err(),
            TryFromEdgesError::EndpointOutOfRange {
                line: 2,
                vertex: 3,
                n: 3
            }
        );
        assert_eq!(
            Graph::try_from_edges(3, true, &[(0, 7)]).unwrap_err(),
            TryFromEdgesError::EndpointOutOfRange {
                line: 1,
                vertex: 7,
                n: 3
            }
        );
        assert_eq!(
            Graph::try_from_edges(u32::MAX as usize + 1, true, &[]).unwrap_err(),
            TryFromEdgesError::TooManyVertices {
                n: u32::MAX as usize + 1
            }
        );
        let msg = TryFromEdgesError::EndpointOutOfRange {
            line: 2,
            vertex: 3,
            n: 3,
        }
        .to_string();
        assert!(msg.contains("edge 2"), "got: {msg}");
    }

    #[test]
    fn incidence_counter_overflow_is_caught() {
        // A real reproduction needs > u32::MAX duplicate edges; exercise
        // the guard directly on a pre-saturated counter instead.
        let mut incidence = vec![u32::MAX - 1, u32::MAX];
        assert_eq!(bump_incidence(&mut incidence, 0), Ok(()));
        assert_eq!(incidence[0], u32::MAX);
        assert_eq!(bump_incidence(&mut incidence, 0), Err(0));
        assert_eq!(bump_incidence(&mut incidence, 1), Err(1));
        assert_eq!(
            TryFromEdgesError::DegreeOverflow { line: 9, vertex: 1 }.to_string(),
            "edge 9: vertex 1 appears on more than u32::MAX edges"
        );
    }
}

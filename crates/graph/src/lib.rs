//! Graph representation, statistics, traversal utilities, synthetic graph
//! generators and file I/O for the TurboBC reproduction.
//!
//! The paper evaluates on 33 graphs from the SuiteSparse Matrix Collection
//! and SNAP, spanning 13 structural families (road networks, Jacobians,
//! Delaunay meshes, social networks, Mycielski graphs, Kronecker graphs,
//! packet traces, web crawls, …). Those exact files are not redistributable
//! here, so [`gen`] provides a deterministic, seeded generator for **every
//! family**, and [`io`] provides MatrixMarket / edge-list readers so the
//! original files can be dropped in when available. [`families`] maps each
//! paper graph name to its generator at a configurable scale.
//!
//! A [`Graph`] is an unweighted directed or undirected graph stored as the
//! pattern of its adjacency matrix (`A[u][v] = 1 ⇔ u → v`); undirected
//! graphs store both orientations, matching how SuiteSparse symmetric
//! matrices expand and how the paper counts `m` (number of stored
//! non-zeros).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
pub mod families;
pub mod gen;
mod graph;
pub mod io;
#[cfg(test)]
mod proptests;
mod stats;
pub mod weighted;

pub use bfs::{bfs, connected_components, largest_component, BfsResult};
pub use graph::{Graph, TryFromEdgesError, VertexId};
pub use stats::{
    DegreeStats, GraphClass, GraphStats, DENSE_DIRECTION_FRACTION, IRREGULAR_MEAN_DEGREE,
    SCALE_FREE_SCF,
};

//! Property tests: I/O round trips and structural invariants over
//! arbitrary graphs.

use crate::{bfs, io, Graph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40, any::<bool>()).prop_flat_map(|(n, directed)| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..150)
            .prop_map(move |edges| Graph::from_edges(n, directed, &edges))
    })
}

fn sorted_edges(g: &Graph) -> Vec<(u32, u32)> {
    let mut e: Vec<_> = g.edges().collect();
    e.sort_unstable();
    e
}

proptest! {
    /// MatrixMarket write → read reproduces the graph exactly.
    #[test]
    fn matrix_market_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_matrix_market(&g, &mut buf).unwrap();
        let back = io::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(back.n(), g.n());
        prop_assert_eq!(back.directed(), g.directed());
        prop_assert_eq!(sorted_edges(&back), sorted_edges(&g));
    }

    /// Edge-list write → read reproduces the graph exactly.
    #[test]
    fn edge_list_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice(), g.directed(), Some(g.n())).unwrap();
        prop_assert_eq!(sorted_edges(&back), sorted_edges(&g));
    }

    /// Graph normalisation invariants: no self-loops, no duplicate arcs,
    /// undirected graphs are symmetric.
    #[test]
    fn normalisation_invariants(g in arb_graph()) {
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            prop_assert_ne!(u, v, "self-loop survived");
            prop_assert!(seen.insert((u, v)), "duplicate arc {:?}", (u, v));
        }
        if !g.directed() {
            for (u, v) in g.edges() {
                prop_assert!(seen.contains(&(v, u)), "missing reverse of {:?}", (u, v));
            }
        }
        // Degree sums equal arc count.
        prop_assert_eq!(g.out_degrees().iter().map(|&d| d as usize).sum::<usize>(), g.m());
        prop_assert_eq!(g.in_degrees().iter().map(|&d| d as usize).sum::<usize>(), g.m());
    }

    /// Reader fuzzing: arbitrary bytes — truncated files, garbage tokens,
    /// binary noise — must never panic the MatrixMarket reader. Any input
    /// either parses or yields a clean `IoError`.
    #[test]
    fn matrix_market_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = io::read_matrix_market(bytes.as_slice());
    }

    /// Same fuzz property for the edge-list reader, with and without an
    /// explicit vertex count.
    #[test]
    fn edge_list_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        n in (any::<bool>(), 0usize..64).prop_map(|(some, n)| some.then_some(n)),
        directed in any::<bool>(),
    ) {
        let _ = io::read_edge_list(bytes.as_slice(), directed, n);
    }

    /// Structured fuzz: token soup that *looks* like a MatrixMarket body
    /// (valid header, then short strings over a numeric-ish alphabet)
    /// exercises the per-line parse paths more densely than raw bytes.
    #[test]
    fn matrix_market_never_panics_on_token_soup(
        lines in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24),
            0..20,
        )
    ) {
        const ALPHABET: &[u8] = b"0123456789 .%+-e:na\t";
        let mut text = String::from("%%MatrixMarket matrix coordinate pattern general\n");
        for line in &lines {
            for &b in line {
                text.push(ALPHABET[b as usize % ALPHABET.len()] as char);
            }
            text.push('\n');
        }
        let _ = io::read_matrix_market(text.as_bytes());
    }

    /// BFS sanity: depths are 0 or ≥ 1, the source has depth 1, every
    /// reached non-source vertex has an in-neighbour one level up.
    #[test]
    fn bfs_parent_property(g in arb_graph(), src in any::<prop::sample::Index>()) {
        let s = src.index(g.n()) as u32;
        let r = bfs(&g, s);
        prop_assert_eq!(r.depths[s as usize], 1);
        prop_assert_eq!(r.reached, r.depths.iter().filter(|&&d| d != 0).count());
        let csc = g.to_csc();
        for v in 0..g.n() {
            let dv = r.depths[v];
            if dv > 1 {
                let has_parent = csc
                    .column(v)
                    .iter()
                    .any(|&u| r.depths[u as usize] == dv - 1);
                prop_assert!(has_parent, "vertex {} at depth {} has no parent", v, dv);
            }
        }
    }

}

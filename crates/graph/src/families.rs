//! Catalog of the paper's 33 benchmark graphs: published parameters and
//! results (Tables 1–4), and scaled synthetic stand-ins for each.
//!
//! Every row of the paper's tables is transcribed here so the benchmark
//! harness can print *paper vs. measured* side by side, and each graph name
//! maps to a generator from [`crate::gen`] with parameters chosen to match
//! the family's structure at a host-appropriate scale.

use crate::{gen, Graph};

/// Instance size knob. The paper's originals range up to 214M vertices /
/// 1.95B edges; the stand-ins scale linearly from `Small` (seconds per
/// table on a laptop) in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~1/8 of `Small` — used by integration tests.
    Tiny,
    /// Default benchmarking size (n ≈ 10⁴ per graph).
    Small,
    /// 4× `Small`.
    Medium,
    /// 16× `Small` — closest to the paper's originals that is still
    /// laptop-friendly.
    Large,
}

impl Scale {
    /// Multiplier applied to each family's base vertex count.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.125,
            Scale::Small => 1.0,
            Scale::Medium => 4.0,
            Scale::Large => 16.0,
        }
    }

    /// Additive adjustment for logarithmically-sized families
    /// (Mycielski index, R-MAT scale).
    pub fn log2_offset(self) -> i32 {
        match self {
            Scale::Tiny => -3,
            Scale::Small => 0,
            Scale::Medium => 2,
            Scale::Large => 4,
        }
    }
}

/// One row of the paper's evaluation tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Graph name as printed in the paper.
    pub name: &'static str,
    /// Directed (`(D)`) or undirected (`(U)`).
    pub directed: bool,
    /// Which table the row appears in (1–4).
    pub table: u8,
    /// The TurboBC kernel the paper found fastest for this graph.
    pub kernel: &'static str,
    /// Vertices, ×10³ as printed.
    pub n_thousands: f64,
    /// Stored non-zeros, ×10³ as printed.
    pub m_thousands: f64,
    /// Degree column: max / μ / σ (out-degree for directed graphs).
    pub deg_max: f64,
    /// Mean degree.
    pub deg_mean: f64,
    /// Degree standard deviation.
    pub deg_std: f64,
    /// BFS-tree depth `d`.
    pub d: u32,
    /// The paper's `scf` column (units unreproducible from Eq. 5 as
    /// printed; kept for ordering comparisons).
    pub scf: f64,
    /// TurboBC runtime in milliseconds (BC of one vertex).
    pub runtime_ms: f64,
    /// Reported MTEPS.
    pub mteps: f64,
    /// Speedup over the sequential Algorithm 1.
    pub speedup_seq: f64,
    /// Speedup over gunrock (None where gunrock ran out of memory).
    pub speedup_gunrock: Option<f64>,
    /// Speedup over ligra.
    pub speedup_ligra: Option<f64>,
}

#[allow(clippy::too_many_arguments)] // transcribes a full paper table row
const fn row(
    name: &'static str,
    directed: bool,
    table: u8,
    kernel: &'static str,
    n_thousands: f64,
    m_thousands: f64,
    deg: (f64, f64, f64),
    d: u32,
    scf: f64,
    runtime_ms: f64,
    mteps: f64,
    sx: f64,
    gx: Option<f64>,
    lx: Option<f64>,
) -> PaperRow {
    PaperRow {
        name,
        directed,
        table,
        kernel,
        n_thousands,
        m_thousands,
        deg_max: deg.0,
        deg_mean: deg.1,
        deg_std: deg.2,
        d,
        scf,
        runtime_ms,
        mteps,
        speedup_seq: sx,
        speedup_gunrock: gx,
        speedup_ligra: lx,
    }
}

/// Table 1: ten regular graphs where `TurboBC-scCSC` was fastest.
pub const TABLE1: &[PaperRow] = &[
    row(
        "mark3jac060sc",
        true,
        1,
        "scCSC",
        28.0,
        171.0,
        (44.0, 6.0, 4.0),
        42,
        10.0,
        2.1,
        82.0,
        11.5,
        Some(2.7),
        Some(2.2),
    ),
    row(
        "mark3jac080sc",
        true,
        1,
        "scCSC",
        37.0,
        228.0,
        (44.0, 6.0, 4.0),
        52,
        10.0,
        2.8,
        82.0,
        9.8,
        Some(2.5),
        Some(1.5),
    ),
    row(
        "mark3jac100sc",
        true,
        1,
        "scCSC",
        46.0,
        285.0,
        (44.0, 6.0, 4.0),
        62,
        10.0,
        3.5,
        82.0,
        11.4,
        Some(2.4),
        Some(1.5),
    ),
    row(
        "mark3jac120sc",
        true,
        1,
        "scCSC",
        55.0,
        343.0,
        (44.0, 6.0, 4.0),
        72,
        10.0,
        4.4,
        78.0,
        12.9,
        Some(2.2),
        Some(1.6),
    ),
    row(
        "g7jac140sc",
        true,
        1,
        "scCSC",
        42.0,
        566.0,
        (153.0, 14.0, 24.0),
        15,
        197.0,
        1.2,
        472.0,
        12.5,
        Some(1.9),
        Some(2.3),
    ),
    row(
        "g7jac160sc",
        true,
        1,
        "scCSC",
        47.0,
        657.0,
        (153.0, 14.0, 24.0),
        16,
        208.0,
        1.4,
        469.0,
        13.3,
        Some(1.8),
        Some(2.6),
    ),
    row(
        "delaunay_n15",
        false,
        1,
        "scCSC",
        33.0,
        197.0,
        (18.0, 6.0, 1.0),
        84,
        13.0,
        4.7,
        42.0,
        14.4,
        Some(2.4),
        Some(1.2),
    ),
    row(
        "delaunay_n16",
        false,
        1,
        "scCSC",
        66.0,
        393.0,
        (17.0, 6.0, 1.0),
        110,
        14.0,
        7.1,
        55.0,
        25.3,
        Some(2.2),
        Some(1.9),
    ),
    row(
        "luxembourg_osm",
        false,
        1,
        "scCSC",
        115.0,
        239.0,
        (6.0, 2.0, 0.0),
        1035,
        2.0,
        50.0,
        5.0,
        24.7,
        Some(2.3),
        Some(1.0),
    ),
    row(
        "internet",
        true,
        1,
        "scCSC",
        125.0,
        207.0,
        (138.0, 2.0, 4.0),
        21,
        1.0,
        1.5,
        138.0,
        37.8,
        Some(1.9),
        Some(2.0),
    ),
];

/// Table 2: ten regular graphs where `TurboBC-scCOOC` was fastest.
pub const TABLE2: &[PaperRow] = &[
    row(
        "g7jac180sc",
        true,
        2,
        "scCOOC",
        53.0,
        747.0,
        (153.0, 14.0, 24.0),
        17,
        217.0,
        1.6,
        467.0,
        13.9,
        Some(1.7),
        Some(1.7),
    ),
    row(
        "g7jac200sc",
        true,
        2,
        "scCOOC",
        59.0,
        838.0,
        (153.0, 14.0, 25.0),
        18,
        224.0,
        1.7,
        493.0,
        14.6,
        Some(1.7),
        Some(1.8),
    ),
    row(
        "mark3jac140sc",
        true,
        2,
        "scCOOC",
        64.0,
        400.0,
        (44.0, 6.0, 4.0),
        82,
        10.0,
        5.3,
        76.0,
        13.2,
        Some(2.1),
        Some(1.2),
    ),
    row(
        "smallworld",
        false,
        2,
        "scCOOC",
        100.0,
        1000.0,
        (17.0, 10.0, 1.0),
        9,
        61.0,
        1.0,
        1000.0,
        27.6,
        Some(1.5),
        Some(1.5),
    ),
    row(
        "ASIC_100ks",
        true,
        2,
        "scCOOC",
        99.0,
        579.0,
        (206.0, 6.0, 6.0),
        33,
        3.0,
        2.7,
        215.0,
        25.7,
        Some(1.6),
        Some(1.7),
    ),
    row(
        "ASIC_680ks",
        true,
        2,
        "scCOOC",
        683.0,
        2329.0,
        (210.0, 3.0, 4.0),
        31,
        2.0,
        6.6,
        353.0,
        43.9,
        Some(1.0),
        Some(1.5),
    ),
    row(
        "com-Youtube",
        false,
        2,
        "scCOOC",
        1135.0,
        5975.0,
        (28754.0, 5.0, 51.0),
        14,
        8.0,
        9.7,
        616.0,
        48.4,
        Some(1.0),
        Some(2.8),
    ),
    row(
        "mawi_201512012345",
        false,
        2,
        "scCOOC",
        18571.0,
        38040.0,
        (16e6, 2.0, 3806.0),
        10,
        2.0,
        74.8,
        509.0,
        33.6,
        Some(1.0),
        Some(3.6),
    ),
    row(
        "mawi_201512020000",
        false,
        2,
        "scCOOC",
        35991.0,
        74485.0,
        (33e6, 2.0, 5414.0),
        11,
        2.0,
        143.0,
        521.0,
        33.9,
        Some(1.0),
        Some(3.4),
    ),
    row(
        "mawi_201512020030",
        false,
        2,
        "scCOOC",
        68863.0,
        143415.0,
        (63e6, 2.0, 7597.0),
        12,
        2.0,
        261.4,
        549.0,
        32.3,
        Some(1.0),
        Some(3.2),
    ),
];

/// Table 3: nine irregular graphs where `TurboBC-veCSC` was fastest.
pub const TABLE3: &[PaperRow] = &[
    row(
        "mycielskian15",
        false,
        3,
        "veCSC",
        25.0,
        11111.0,
        (12287.0, 452.0, 664.0),
        3,
        41166.0,
        1.7,
        6536.0,
        17.4,
        Some(1.2),
        Some(2.3),
    ),
    row(
        "mycielskian16",
        false,
        3,
        "veCSC",
        49.0,
        33383.0,
        (24575.0, 679.0, 1078.0),
        3,
        82833.0,
        3.4,
        9819.0,
        26.6,
        Some(1.5),
        Some(3.4),
    ),
    row(
        "mycielskian17",
        false,
        3,
        "veCSC",
        98.0,
        100246.0,
        (49151.0, 1020.0, 1747.0),
        3,
        166407.0,
        7.9,
        12689.0,
        34.6,
        Some(1.7),
        Some(4.4),
    ),
    row(
        "mycielskian18",
        false,
        3,
        "veCSC",
        197.0,
        300934.0,
        (98303.0, 1531.0, 2817.0),
        3,
        333199.0,
        18.5,
        16267.0,
        45.8,
        Some(2.1),
        Some(5.1),
    ),
    row(
        "mycielskian19",
        false,
        3,
        "veCSC",
        393.0,
        903195.0,
        (196607.0, 2297.0, 4530.0),
        3,
        651837.0,
        48.9,
        18470.0,
        53.1,
        Some(2.7),
        Some(5.2),
    ),
    row(
        "kron_g500-logn18",
        false,
        3,
        "veCSC",
        262.0,
        21166.0,
        (49164.0, 81.0, 454.0),
        6,
        5846.0,
        8.7,
        2433.0,
        31.6,
        Some(0.9),
        Some(1.1),
    ),
    row(
        "kron_g500-logn19",
        false,
        3,
        "veCSC",
        524.0,
        43563.0,
        (80676.0, 83.0, 541.0),
        6,
        6609.0,
        17.4,
        2504.0,
        44.7,
        Some(1.0),
        Some(0.9),
    ),
    row(
        "kron_g500-logn20",
        false,
        3,
        "veCSC",
        1049.0,
        89241.0,
        (131505.0, 85.0, 641.0),
        6,
        7410.0,
        58.4,
        1528.0,
        34.0,
        Some(1.3),
        Some(1.0),
    ),
    row(
        "kron_g500-logn21",
        false,
        3,
        "veCSC",
        2097.0,
        182084.0,
        (213906.0, 87.0, 756.0),
        6,
        8161.0,
        193.2,
        943.0,
        24.5,
        Some(1.1),
        Some(1.0),
    ),
];

/// Table 4: four big graphs for which gunrock's BC ran out of memory
/// (runtimes in the paper are in seconds; stored here in ms).
pub const TABLE4: &[PaperRow] = &[
    row(
        "kmer_V1r",
        false,
        4,
        "scCSC",
        214e3,
        465e3,
        (8.0, 2.0, 1.0),
        324,
        2.0,
        14300.0,
        33.0,
        94.5,
        None,
        Some(0.9),
    ),
    row(
        "it-2004",
        true,
        4,
        "scCOOC",
        42e3,
        1151e3,
        (9964.0, 28.0, 67.0),
        50,
        543.0,
        3100.0,
        371.0,
        39.5,
        None,
        Some(0.8),
    ),
    row(
        "GAP-twitter",
        true,
        4,
        "veCSC",
        62e3,
        1469e3,
        (3e6, 24.0, 1990.0),
        15,
        126.0,
        7300.0,
        201.0,
        50.4,
        None,
        Some(0.8),
    ),
    row(
        "sk-2005",
        true,
        4,
        "veCSC",
        51e3,
        1950e3,
        (12870.0, 39.0, 78.0),
        54,
        1262.0,
        6800.0,
        287.0,
        30.5,
        None,
        Some(0.7),
    ),
];

/// Table 5: exact (all-sources) BC results. `(name, d, n·m ×10⁶,
/// runtime s, MTEPS, speedup over sequential)`.
pub const TABLE5: &[(&str, u32, f64, f64, f64, f64)] = &[
    ("mark3jac060sc", 42, 4694.0, 49.3, 95.0, 8.2),
    ("mark3jac080sc", 52, 8345.0, 90.8, 92.0, 9.2),
    ("g7jac180sc", 17, 39906.0, 105.9, 377.0, 13.4),
    ("g7jac200sc", 17, 49688.0, 129.7, 383.0, 14.3),
    ("mycielskian16", 3, 1639081.0, 159.8, 10257.0, 27.5),
    ("mycielskian17", 3, 9854152.0, 715.2, 13778.0, 38.0),
];

/// Reduction-stress fixtures for the prep pipeline: tree-heavy and
/// disconnected graphs outside the paper's tables (deliberately **not**
/// part of [`all_rows`] — the catalog pin stays at 33). [`generate`]
/// accepts these names like any paper graph.
pub const STRESS_FIXTURES: &[&str] = &[
    "stress-caterpillar",
    "stress-broom",
    "stress-powerlaw-union",
];

/// Every table-row in one list.
pub fn all_rows() -> Vec<PaperRow> {
    TABLE1
        .iter()
        .chain(TABLE2)
        .chain(TABLE3)
        .chain(TABLE4)
        .copied()
        .collect()
}

/// Looks a row up by paper graph name.
pub fn find(name: &str) -> Option<PaperRow> {
    all_rows().into_iter().find(|r| r.name == name)
}

fn scaled(base: usize, scale: Scale) -> usize {
    ((base as f64 * scale.factor()) as usize).max(64)
}

/// Generates the synthetic stand-in for a paper graph at the given scale.
/// Returns `None` for unknown names. Deterministic: the seed is derived
/// from the graph name.
///
/// ```
/// use turbobc_graph::families::{generate, Scale};
///
/// let g = generate("mycielskian15", Scale::Tiny).unwrap();
/// assert!(!g.directed());
/// assert!(g.n() > 100);
/// assert!(generate("no-such-graph", Scale::Tiny).is_none());
/// ```
pub fn generate(name: &str, scale: Scale) -> Option<Graph> {
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let s = scale;
    let g = match name {
        // mark3jac family: staged mesh, depth tracks the paper's d.
        "mark3jac060sc" => gen::markov_mesh(40, scaled(175, s), seed),
        "mark3jac080sc" => gen::markov_mesh(50, scaled(185, s), seed),
        "mark3jac100sc" => gen::markov_mesh(60, scaled(190, s), seed),
        "mark3jac120sc" => gen::markov_mesh(70, scaled(196, s), seed),
        "mark3jac140sc" => gen::markov_mesh(80, scaled(200, s), seed),
        // g7jac family: banded + hub columns, shallow.
        "g7jac140sc" => {
            let n = scaled(10_000, s);
            gen::jacobian(n, 7, n / 400, 150, seed)
        }
        "g7jac160sc" => {
            let n = scaled(11_500, s);
            gen::jacobian(n, 7, n / 400, 150, seed)
        }
        "g7jac180sc" => {
            let n = scaled(13_000, s);
            gen::jacobian(n, 7, n / 400, 150, seed)
        }
        "g7jac200sc" => {
            let n = scaled(14_500, s);
            gen::jacobian(n, 7, n / 400, 150, seed)
        }
        "delaunay_n15" => gen::delaunay(scaled(8_000, s), seed),
        "delaunay_n16" => gen::delaunay(scaled(16_000, s), seed),
        "luxembourg_osm" => {
            let b = (30.0 * scale.factor().sqrt()) as usize;
            gen::road_network(b.max(4), b.max(4), 12, seed)
        }
        "internet" => gen::internet_topology(scaled(30_000, s), seed),
        "smallworld" => gen::small_world(scaled(25_000, s), 5, 0.05, seed),
        "ASIC_100ks" => {
            let n = scaled(25_000, s);
            gen::circuit(n, 3, 8, 200, seed)
        }
        "ASIC_680ks" => {
            let n = scaled(80_000, s);
            gen::circuit(n, 2, 12, 200, seed)
        }
        "com-Youtube" => gen::preferential_attachment(scaled(50_000, s), 3, seed),
        "mawi_201512012345" => gen::mawi_star(scaled(100_000, s), 8, seed),
        "mawi_201512020000" => gen::mawi_star(scaled(150_000, s), 9, seed),
        "mawi_201512020030" => gen::mawi_star(scaled(200_000, s), 10, seed),
        "mycielskian15" => gen::mycielski((11 + s.log2_offset()) as u32),
        "mycielskian16" => gen::mycielski((12 + s.log2_offset()) as u32),
        "mycielskian17" => gen::mycielski((13 + s.log2_offset()) as u32),
        "mycielskian18" => gen::mycielski((14 + s.log2_offset()) as u32),
        "mycielskian19" => gen::mycielski((15 + s.log2_offset()) as u32),
        "kron_g500-logn18" => gen::rmat((13 + s.log2_offset()) as u32, 48, seed),
        "kron_g500-logn19" => gen::rmat((14 + s.log2_offset()) as u32, 48, seed),
        "kron_g500-logn20" => gen::rmat((15 + s.log2_offset()) as u32, 48, seed),
        "kron_g500-logn21" => gen::rmat((16 + s.log2_offset()) as u32, 48, seed),
        "kmer_V1r" => gen::kmer_paths(scaled(300_000, s), 300, seed),
        "it-2004" => gen::webgraph(scaled(100_000, s), 28, 0.5, seed),
        "GAP-twitter" => gen::chung_lu(scaled(150_000, s), 24.0, 1.75, seed),
        "sk-2005" => gen::webgraph(scaled(120_000, s), 39, 0.55, seed),
        // Reduction-stress fixtures (see [`STRESS_FIXTURES`]).
        "stress-caterpillar" => gen::caterpillar(scaled(2_500, s), 3, seed),
        "stress-broom" => gen::broom(scaled(400, s), scaled(2_100, s)),
        "stress-powerlaw-union" => gen::powerlaw_union(4, scaled(1_200, s), seed),
        _ => return None,
    };
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphStats;

    #[test]
    fn catalog_covers_thirty_three_graphs() {
        assert_eq!(all_rows().len(), 33);
        assert_eq!(TABLE1.len(), 10);
        assert_eq!(TABLE2.len(), 10);
        assert_eq!(TABLE3.len(), 9);
        assert_eq!(TABLE4.len(), 4);
        assert_eq!(TABLE5.len(), 6);
    }

    #[test]
    fn every_catalog_graph_generates_at_tiny_scale() {
        for row in all_rows() {
            let g = generate(row.name, Scale::Tiny)
                .unwrap_or_else(|| panic!("no generator for {}", row.name));
            assert!(g.n() >= 32, "{}: n = {}", row.name, g.n());
            assert!(g.m() > 0, "{}: empty graph", row.name);
            assert_eq!(g.directed(), row.directed, "{}", row.name);
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(generate("definitely-not-a-graph", Scale::Small).is_none());
        assert!(find("mark3jac060sc").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn scales_are_monotonic() {
        for &name in &["smallworld", "delaunay_n15", "mycielskian16"] {
            let tiny = generate(name, Scale::Tiny).unwrap();
            let small = generate(name, Scale::Small).unwrap();
            assert!(
                tiny.n() < small.n(),
                "{name}: {} !< {}",
                tiny.n(),
                small.n()
            );
        }
    }

    #[test]
    fn stress_fixtures_have_pinned_stats() {
        // (name, n, m, degree-1 vertices, components) at Tiny scale —
        // pinned so reduction benchmarks stay comparable across runs.
        let pins = [
            ("stress-caterpillar", 782, 1562, 470, 1),
            ("stress-broom", 326, 650, 263, 1),
            ("stress-powerlaw-union", 600, 2296, 14, 4),
        ];
        for (name, n, m, deg1, comps) in pins {
            assert!(STRESS_FIXTURES.contains(&name));
            let g = generate(name, Scale::Tiny).unwrap();
            assert_eq!(g.n(), n, "{name} n");
            assert_eq!(g.m(), m, "{name} m");
            assert_eq!(
                g.out_degrees().iter().filter(|&&d| d == 1).count(),
                deg1,
                "{name} degree-1 count"
            );
            assert_eq!(
                crate::connected_components(&g).1,
                comps,
                "{name} components"
            );
        }
    }

    #[test]
    fn stress_fixtures_stay_out_of_the_catalog() {
        for &name in STRESS_FIXTURES {
            assert!(find(name).is_none(), "{name} must not join the 33 rows");
        }
    }

    #[test]
    fn table3_stand_ins_are_irregular_and_tables12_regular() {
        use crate::GraphClass;
        for row in TABLE3 {
            let g = generate(row.name, Scale::Tiny).unwrap();
            let s = GraphStats::compute(&g);
            assert_eq!(
                s.class(),
                GraphClass::Irregular,
                "{}: scf {}",
                row.name,
                s.scf
            );
        }
        for name in [
            "mark3jac060sc",
            "delaunay_n15",
            "smallworld",
            "luxembourg_osm",
        ] {
            let g = generate(name, Scale::Tiny).unwrap();
            let s = GraphStats::compute(&g);
            assert_eq!(s.class(), GraphClass::Regular, "{name}: scf {}", s.scf);
        }
    }
}

//! Graph file I/O: MatrixMarket (SuiteSparse) and SNAP-style edge lists.
//!
//! The paper's benchmark graphs come from the SuiteSparse Matrix Collection
//! (MatrixMarket `.mtx` files) and the Stanford SNAP collection (whitespace
//! edge lists with `#` comments). These readers let the original files be
//! used with the reproduction when available; the test-suite exercises them
//! on embedded fixtures.

use crate::{Graph, VertexId};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file violates the expected format; the string names the problem
    /// and the 1-based line number.
    Parse(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line_no: usize, msg: impl fmt::Display) -> IoError {
    IoError::Parse(format!("line {line_no}: {msg}"))
}

/// Reads a MatrixMarket `coordinate` file as a graph.
///
/// * `%%MatrixMarket matrix coordinate <field> general` → directed graph;
/// * `... symmetric` → undirected graph (the stored lower/upper triangle is
///   expanded, as SuiteSparse specifies);
/// * `<field>` may be `pattern`, `real` or `integer`; numeric values are
///   ignored (the paper treats weighted graphs as unweighted).
///
/// Indices in the file are 1-based, per the standard.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty file"))?
        .map_err(IoError::Io)?;
    let lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(1, "not a MatrixMarket matrix header"));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err(
            1,
            "only coordinate (sparse) matrices are supported",
        ));
    }
    let field = tokens[3];
    if !matches!(field, "pattern" | "real" | "integer") {
        return Err(parse_err(1, format!("unsupported field type `{field}`")));
    }
    let symmetry = tokens[4];
    let directed = match symmetry {
        "general" => true,
        "symmetric" => false,
        other => return Err(parse_err(1, format!("unsupported symmetry `{other}`"))),
    };

    let mut line_no = 1usize;
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for line in lines {
        let line = line.map_err(IoError::Io)?;
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let Some((n, _, _)) = dims else {
            let nr: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(line_no, "bad row count"))?;
            let nc: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(line_no, "bad column count"))?;
            let nnz: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(line_no, "bad nnz count"))?;
            if nr != nc {
                return Err(parse_err(line_no, "adjacency matrix must be square"));
            }
            if nr > u32::MAX as usize {
                return Err(parse_err(
                    line_no,
                    format!("dimension {nr} exceeds the u32 index range"),
                ));
            }
            dims = Some((nr, nc, nnz));
            // A hostile header can declare an absurd nnz; cap the eager
            // reservation so a short file never triggers a huge allocation.
            edges.reserve(nnz.min(1 << 20));
            continue;
        };
        let r: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(line_no, "bad row index"))?;
        let c: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(line_no, "bad column index"))?;
        if r == 0 || c == 0 || r > n || c > n {
            return Err(parse_err(
                line_no,
                format!("index ({r}, {c}) out of range 1..={n}"),
            ));
        }
        // Values (if any) are ignored: unweighted interpretation.
        edges.push(((r - 1) as VertexId, (c - 1) as VertexId));
    }
    let (n, _, declared_nnz) = dims.ok_or_else(|| parse_err(line_no, "missing size line"))?;
    if edges.len() != declared_nnz {
        return Err(parse_err(
            line_no,
            format!("declared {declared_nnz} entries but found {}", edges.len()),
        ));
    }
    Graph::try_from_edges(n, directed, &edges)
        .map_err(|e| parse_err(line_no, format!("invalid matrix: {e}")))
}

/// Reads a MatrixMarket file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a graph as a MatrixMarket `pattern` file (1-based indices).
/// Undirected graphs are written `symmetric` with each edge stored once
/// (`row ≥ col` triangle).
pub fn write_matrix_market<W: Write>(graph: &Graph, mut w: W) -> std::io::Result<()> {
    let symmetry = if graph.directed() {
        "general"
    } else {
        "symmetric"
    };
    writeln!(w, "%%MatrixMarket matrix coordinate pattern {symmetry}")?;
    writeln!(w, "% written by turbobc-graph")?;
    let entries: Vec<(VertexId, VertexId)> = if graph.directed() {
        graph.edges().collect()
    } else {
        graph.edges().filter(|&(u, v)| u >= v).collect()
    };
    writeln!(w, "{} {} {}", graph.n(), graph.n(), entries.len())?;
    for (u, v) in entries {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Reads a SNAP-style edge list: one `u v` pair per line (0-based vertex
/// ids), `#` comment lines ignored, vertex count inferred as `max id + 1`
/// unless `n` is given.
pub fn read_edge_list<R: Read>(
    reader: R,
    directed: bool,
    n: Option<usize>,
) -> Result<Graph, IoError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(IoError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(idx + 1, "bad source vertex"))?;
        let v: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(idx + 1, "bad target vertex"))?;
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(parse_err(idx + 1, "vertex id exceeds u32"));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let n = n.unwrap_or(inferred);
    if n < inferred {
        return Err(IoError::Parse(format!(
            "given n = {n} but the file references vertex {max_id}"
        )));
    }
    Graph::try_from_edges(n, directed, &edges)
        .map_err(|e| IoError::Parse(format!("invalid edge list: {e}")))
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file(
    path: impl AsRef<Path>,
    directed: bool,
    n: Option<usize>,
) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?, directed, n)
}

/// Writes a graph as an edge list (0-based). Undirected graphs are written
/// with each edge once.
pub fn write_edge_list<W: Write>(graph: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# turbobc edge list: n = {}, directed = {}",
        graph.n(),
        graph.directed()
    )?;
    for (u, v) in graph.edges() {
        if graph.directed() || u <= v {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MTX_GENERAL: &str = "\
%%MatrixMarket matrix coordinate pattern general
% a comment
4 4 5
1 2
1 3
2 3
3 1
3 4
";

    const MTX_SYMMETRIC_REAL: &str = "\
%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 0.5
3 2 1.25
";

    #[test]
    fn reads_general_pattern_as_directed() {
        let g = read_matrix_market(MTX_GENERAL.as_bytes()).unwrap();
        assert!(g.directed());
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        let edges: Vec<_> = g.edges().collect();
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 3)));
    }

    #[test]
    fn reads_symmetric_real_as_undirected_ignoring_values() {
        let g = read_matrix_market(MTX_SYMMETRIC_REAL.as_bytes()).unwrap();
        assert!(!g.directed());
        assert_eq!(g.m(), 4, "each stored edge expands to both orientations");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n".as_bytes())
                .is_err()
        );
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let bad = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        let err = read_matrix_market(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let bad = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
    }

    #[test]
    fn rejects_rectangular_matrix() {
        let bad = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
    }

    #[test]
    fn rejects_dimension_beyond_index_type() {
        let bad =
            "%%MatrixMarket matrix coordinate pattern general\n5000000000 5000000000 1\n1 2\n";
        let err = read_matrix_market(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("u32"), "got: {err}");
    }

    #[test]
    fn huge_declared_nnz_fails_without_allocating() {
        // Declares 10^15 entries but supplies one; must return a clean
        // parse error (mismatched count), not attempt a huge reservation.
        let bad = "%%MatrixMarket matrix coordinate pattern general\n3 3 1000000000000000\n1 2\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_vertex_beyond_index_type_is_an_error() {
        let bad = "0 4294967296\n";
        let err = read_edge_list(bad.as_bytes(), true, None).unwrap_err();
        assert!(err.to_string().contains("u32"), "got: {err}");
    }

    #[test]
    fn mtx_round_trip_directed() {
        let g = Graph::from_edges(4, true, &[(0, 1), (1, 2), (3, 0)]);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.n(), g.n());
        assert_eq!(back.m(), g.m());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn mtx_round_trip_undirected() {
        let g = Graph::from_edges(5, false, &[(0, 1), (2, 4), (1, 3)]);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert!(!back.directed());
        assert_eq!(back.m(), g.m());
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::from_edges(6, true, &[(0, 5), (5, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), true, Some(6)).unwrap();
        assert_eq!(back.m(), 3);
        assert_eq!(back.n(), 6);
    }

    #[test]
    fn edge_list_infers_vertex_count() {
        let src = "# comment\n0 3\n3 7\n";
        let g = read_edge_list(src.as_bytes(), false, None).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn edge_list_rejects_too_small_n() {
        let src = "0 9\n";
        assert!(read_edge_list(src.as_bytes(), true, Some(4)).is_err());
    }
}

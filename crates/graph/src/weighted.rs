//! Weighted graphs — the substrate for the weighted-BC extension.
//!
//! The paper's TurboBC handles unweighted graphs only ("applicable to
//! unweighted, directed and undirected graphs"); extending the same
//! machinery to positively-weighted graphs is the natural follow-on
//! (Brandes' original algorithm covers them via Dijkstra). This module
//! provides the graph side: arc weights aligned with a CSR view, plus
//! weighted generators.

use crate::{Graph, VertexId};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A positively-weighted graph: a [`Graph`] plus one weight per stored
/// arc. Undirected graphs carry the same weight on both orientations.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    graph: Graph,
    /// Weight per arc, aligned with `graph.edges()` order.
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// Builds from a weighted edge list. Duplicate arcs keep the
    /// *minimum* weight (shortest-path semantics); undirected graphs
    /// mirror each weight. Weights must be strictly positive.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite weights or out-of-range
    /// endpoints.
    pub fn from_edges(n: usize, directed: bool, edges: &[(VertexId, VertexId, f64)]) -> Self {
        for &(_, _, w) in edges {
            assert!(
                w > 0.0 && w.is_finite(),
                "weights must be positive and finite, got {w}"
            );
        }
        let plain: Vec<(VertexId, VertexId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let graph = Graph::from_edges(n, directed, &plain);
        // Minimum weight per (u, v) over the input, in both orientations
        // for undirected graphs.
        let mut min_w: HashMap<(VertexId, VertexId), f64> = HashMap::with_capacity(edges.len());
        for &(u, v, w) in edges {
            if u == v {
                continue;
            }
            let e = min_w.entry((u, v)).or_insert(f64::INFINITY);
            *e = e.min(w);
            if !directed {
                let e = min_w.entry((v, u)).or_insert(f64::INFINITY);
                *e = e.min(w);
            }
        }
        let weights: Vec<f64> = graph
            .edges()
            .map(|arc| *min_w.get(&arc).expect("normalised arc came from the input"))
            .collect();
        WeightedGraph { graph, weights }
    }

    /// Wraps an unweighted graph with unit weights (weighted algorithms
    /// then agree exactly with their unweighted counterparts).
    pub fn unit_weights(graph: Graph) -> Self {
        let weights = vec![1.0; graph.m()];
        WeightedGraph { graph, weights }
    }

    /// Wraps a graph with deterministic pseudo-random weights in
    /// `[lo, hi)`.
    pub fn random_weights(graph: Graph, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Undirected graphs need matching weights on mirror arcs: draw
        // per unordered pair.
        let mut pair_w: HashMap<(VertexId, VertexId), f64> = HashMap::new();
        let weights = graph
            .edges()
            .map(|(u, v)| {
                let key = if graph.directed() {
                    (u, v)
                } else {
                    (u.min(v), u.max(v))
                };
                *pair_w.entry(key).or_insert_with(|| r.gen_range(lo..hi))
            })
            .collect();
        WeightedGraph { graph, weights }
    }

    /// The underlying unweighted structure.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Stored arc count.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Arc weights in `graph().edges()` order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// BC double-counting compensation (see [`Graph::bc_scale`]).
    pub fn bc_scale(&self) -> f64 {
        self.graph.bc_scale()
    }

    /// Out-adjacency with aligned weights: `(csr, w)` where `w[k]` is the
    /// weight of the arc stored at CSR slot `k`.
    pub fn to_weighted_csr(&self) -> (turbobc_sparse::Csr, Vec<f64>) {
        // The graph's arcs are in (col, row)-sorted COO order; CSR wants
        // row-major. Rebuild by counting sort over rows, carrying weights.
        let n = self.n();
        let mut row_ptr = vec![0usize; n + 1];
        for (u, _) in self.graph.edges() {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0 as VertexId; self.m()];
        let mut w = vec![0.0f64; self.m()];
        for ((u, v), &wt) in self.graph.edges().zip(&self.weights) {
            let slot = cursor[u as usize];
            col_idx[slot] = v;
            w[slot] = wt;
            cursor[u as usize] += 1;
        }
        let csr = turbobc_sparse::Csr::from_parts(n, n, row_ptr, col_idx)
            .expect("normalised graph produces a valid CSR");
        (csr, w)
    }

    /// Sum of all arc weights (diagnostics).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// A weighted road network: the planar structure of
/// [`crate::gen::road_network`] with segment lengths as weights.
pub fn weighted_road_network(bx: usize, by: usize, subdiv: usize, seed: u64) -> WeightedGraph {
    let g = crate::gen::road_network(bx, by, subdiv, seed);
    WeightedGraph::random_weights(g, 10.0, 100.0, seed ^ 0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_arcs_keep_minimum_weight() {
        let g = WeightedGraph::from_edges(3, true, &[(0, 1, 5.0), (0, 1, 2.0), (1, 2, 1.0)]);
        assert_eq!(g.m(), 2);
        let w: HashMap<(u32, u32), f64> =
            g.graph().edges().zip(g.weights().iter().copied()).collect();
        assert_eq!(w[&(0, 1)], 2.0);
        assert_eq!(w[&(1, 2)], 1.0);
    }

    #[test]
    fn undirected_weights_mirror() {
        let g = WeightedGraph::from_edges(3, false, &[(0, 1, 3.5), (1, 2, 1.25)]);
        assert_eq!(g.m(), 4);
        let w: HashMap<(u32, u32), f64> =
            g.graph().edges().zip(g.weights().iter().copied()).collect();
        assert_eq!(w[&(0, 1)], 3.5);
        assert_eq!(w[&(1, 0)], 3.5);
        assert_eq!(w[&(2, 1)], 1.25);
    }

    #[test]
    fn random_weights_are_symmetric_on_undirected_graphs() {
        let g = crate::gen::gnm(30, 120, false, 7);
        let wg = WeightedGraph::random_weights(g, 1.0, 10.0, 3);
        let w: HashMap<(u32, u32), f64> = wg
            .graph()
            .edges()
            .zip(wg.weights().iter().copied())
            .collect();
        for (&(u, v), &wt) in &w {
            assert_eq!(w[&(v, u)], wt, "asymmetric weight on {u}-{v}");
        }
    }

    #[test]
    fn weighted_csr_aligns_weights() {
        let g = WeightedGraph::from_edges(
            4,
            true,
            &[(0, 1, 1.0), (0, 2, 2.0), (2, 3, 3.0), (1, 3, 4.0)],
        );
        let (csr, w) = g.to_weighted_csr();
        for u in 0..4 {
            let lo = csr.row_ptr()[u];
            for (k, &v) in csr.row(u).iter().enumerate() {
                let expect = match (u as u32, v) {
                    (0, 1) => 1.0,
                    (0, 2) => 2.0,
                    (2, 3) => 3.0,
                    (1, 3) => 4.0,
                    other => panic!("unexpected arc {other:?}"),
                };
                assert_eq!(w[lo + k], expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weights() {
        WeightedGraph::from_edges(2, true, &[(0, 1, 0.0)]);
    }

    #[test]
    fn unit_weights_match_structure() {
        let g = crate::gen::grid2d(3, 3);
        let m = g.m();
        let wg = WeightedGraph::unit_weights(g);
        assert_eq!(wg.weights().len(), m);
        assert!(wg.weights().iter().all(|&w| w == 1.0));
        assert_eq!(wg.total_weight(), m as f64);
    }

    #[test]
    fn weighted_road_network_has_positive_lengths() {
        let g = weighted_road_network(6, 6, 4, 9);
        assert!(g.weights().iter().all(|&w| (10.0..100.0).contains(&w)));
    }
}

//! Degree statistics, the scale-free metric and graph classification.
//!
//! §3.1 of the paper classifies graphs as *regular* (scalar kernels win) or
//! *irregular* (the warp-per-vertex `veCSC` kernel wins) and quantifies the
//! boundary with the scale-free metric of Li et al. (Eq. 5):
//!
//! ```text
//! scf = Σ_{(u,v) ∈ E} degree(u) · degree(v)
//! ```
//!
//! As printed, Eq. 5 is a raw sum whose magnitude grows with `m·μ²` and
//! cannot yield the paper's reported values (e.g. `scf = 2` for the mawi
//! graphs, whose hub vertex alone has degree 16 × 10⁶). We therefore expose
//! **both** the raw sum ([`GraphStats::scf_raw`]) and a dimensionless
//! normalisation `scf = scf_raw / (m · μ²)` ([`GraphStats::scf`]) — the
//! mean over edges of `d(u)d(v)/μ²`, i.e. how much the edge-endpoint degree
//! product exceeds that of a degree-regular graph. It is ≈ 1 for meshes,
//! roads and Delaunay graphs and grows to 10²–10⁴ for Kronecker and
//! Mycielski graphs, reproducing the paper's *ordering*. `EXPERIMENTS.md`
//! reports both columns.

use crate::{Graph, VertexId};

/// The one shared degree-counting routine: occurrences of each vertex id
/// among `endpoints`. [`Graph::out_degrees`] feeds it the arc tails,
/// [`Graph::in_degrees`] the heads, and the [`GraphStats`] degree columns
/// build on the same counts (via [`Graph::out_degrees`]). Counts come
/// from the *normalised* adjacency pattern (duplicates already
/// collapsed), so a `u32` per vertex cannot overflow — raw multigraph
/// input is guarded earlier, in [`Graph::try_from_edges`].
pub(crate) fn count_degrees(n: usize, endpoints: impl Iterator<Item = VertexId>) -> Vec<u32> {
    let mut deg = vec![0u32; n];
    for x in endpoints {
        deg[x as usize] += 1;
    }
    deg
}

/// Max / mean / standard deviation of a degree distribution — the paper's
/// `degree(max/μ/σ)` column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum degree.
    pub max: u32,
    /// Mean degree `μ`.
    pub mean: f64,
    /// Population standard deviation `σ`.
    pub std: f64,
}

impl DegreeStats {
    /// Computes statistics over a degree array.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        if degrees.is_empty() {
            return DegreeStats {
                max: 0,
                mean: 0.0,
                std: 0.0,
            };
        }
        let n = degrees.len() as f64;
        let max = degrees.iter().copied().max().unwrap_or(0);
        let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
        let mean = sum as f64 / n;
        let var = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        DegreeStats {
            max,
            mean,
            std: var.sqrt(),
        }
    }
}

/// The paper's two-way classification of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphClass {
    /// Low scale-free metric: scalar kernels (`scCSC`, `scCOOC`) win.
    Regular,
    /// High scale-free metric: the vector kernel (`veCSC`) wins.
    Irregular,
}

/// Summary statistics for one graph — one row of the paper's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of stored arcs (non-zeros).
    pub m: usize,
    /// Out-degree statistics (the paper uses out-degree for directed
    /// graphs).
    pub degree: DegreeStats,
    /// Raw Eq. 5 sum `Σ_(u,v)∈E d(u)·d(v)`.
    pub scf_raw: u128,
    /// Normalised scale-free metric `scf_raw / (m · μ²)`; see module docs.
    pub scf: f64,
}

/// Mean out-degree at or above which a graph is classified *irregular*
/// (vector kernel territory).
///
/// The paper's own definition of the classes is circular ("regular graphs
/// are those for which the scalar BC algorithms obtained the best
/// performance"), and its scf column cannot be recomputed from Eq. 5 as
/// printed (see module docs). The *mechanistic* discriminator for the
/// `veCSC` kernel is column density: a warp of 32 lanes per column only
/// pays off when columns hold roughly a warp's worth of entries. The
/// paper's Table 3 (veCSC) graphs have mean degree 81–2297 while every
/// Table 1–2 (scalar) graph has mean degree ≤ 14 — including the mawi
/// super-stars, which its scf column also puts on the regular side. A mean
/// degree threshold reproduces the published split exactly.
pub const IRREGULAR_MEAN_DEGREE: f64 = 24.0;

/// Normalised [`GraphStats::scf`] at or above which a graph counts as
/// *scale-free*.
///
/// Meshes, roads and Delaunay triangulations sit at `scf ≈ 1`; Kronecker,
/// Mycielski and web graphs reach 10¹–10⁴. The threshold is deliberately
/// conservative: it is a *secondary* signal used by kernel auto-selection
/// to resolve boundary cases near [`IRREGULAR_MEAN_DEGREE`], never the
/// primary discriminator (the mawi super-stars also have elevated scf but
/// belong to the scalar kernels).
pub const SCALE_FREE_SCF: f64 = 8.0;

/// Beamer/Ligra direction-switching fraction `α`: a BFS level is advanced
/// *pull* (dense, gather over in-neighbours) when
/// `|frontier| + Σ out-degree(frontier) > m / α`, and *push* (sparse,
/// scatter along out-edges of the frontier) otherwise.
///
/// Shared by the `ligra` baseline's `edge_map` and TurboBC's `frontier`
/// subsystem so both switch representation at the same point.
pub const DENSE_DIRECTION_FRACTION: usize = 20;

impl GraphStats {
    /// Computes the full statistics row for a graph.
    pub fn compute(graph: &Graph) -> Self {
        let degrees = graph.out_degrees();
        let degree = DegreeStats::from_degrees(&degrees);
        let mut scf_raw: u128 = 0;
        for (u, v) in graph.edges() {
            scf_raw += degrees[u as usize] as u128 * degrees[v as usize] as u128;
        }
        let m = graph.m();
        let scf = if m == 0 || degree.mean == 0.0 {
            0.0
        } else {
            scf_raw as f64 / (m as f64 * degree.mean * degree.mean)
        };
        GraphStats {
            n: graph.n(),
            m,
            degree,
            scf_raw,
            scf,
        }
    }

    /// Whether the normalised scf marks this graph as scale-free
    /// (see [`SCALE_FREE_SCF`]).
    pub fn is_scale_free(&self) -> bool {
        self.scf >= SCALE_FREE_SCF
    }

    /// Classifies the graph per §3.1 (see [`IRREGULAR_MEAN_DEGREE`]).
    pub fn class(&self) -> GraphClass {
        if self.degree.mean >= IRREGULAR_MEAN_DEGREE {
            GraphClass::Irregular
        } else {
            GraphClass::Regular
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_stats_of_constant_array() {
        let s = DegreeStats::from_degrees(&[4, 4, 4, 4]);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn degree_stats_of_mixed_array() {
        let s = DegreeStats::from_degrees(&[0, 2, 4]);
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_of_empty() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn cycle_graph_has_unit_scf() {
        // Directed 4-cycle: every vertex out-degree 1, every edge product 1.
        let g = Graph::from_edges(4, true, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.scf_raw, 4);
        assert!((s.scf - 1.0).abs() < 1e-12);
        assert_eq!(s.class(), GraphClass::Regular);
    }

    #[test]
    fn star_graph_has_high_scf() {
        // Undirected star K_{1,8}: hub degree 8, leaves 1.
        let edges: Vec<_> = (1..9).map(|v| (0u32, v as u32)).collect();
        let g = Graph::from_edges(9, false, &edges);
        let s = GraphStats::compute(&g);
        // Every stored arc has product 8·1; μ = 16/9.
        assert_eq!(s.scf_raw, 16 * 8);
        assert!(s.scf > 2.0, "hub graphs have elevated scf, got {}", s.scf);
        // …but like the paper's mawi super-stars it stays *regular*: its
        // mean degree is far below a warp's width.
        assert_eq!(s.class(), GraphClass::Regular);
    }

    #[test]
    fn wide_star_is_scale_free_but_narrow_star_is_not() {
        // K_{1,32}: every stored arc has degree product 32·1 against a
        // mean degree just below 2 — the edge-endpoint product dominates.
        let edges: Vec<_> = (1..33).map(|v| (0u32, v as u32)).collect();
        let wide = Graph::from_edges(33, false, &edges);
        assert!(GraphStats::compute(&wide).is_scale_free());
        // K_{1,8} stays below the threshold.
        let edges: Vec<_> = (1..9).map(|v| (0u32, v as u32)).collect();
        let narrow = Graph::from_edges(9, false, &edges);
        assert!(!GraphStats::compute(&narrow).is_scale_free());
    }

    #[test]
    fn dense_graph_is_irregular() {
        // Complete-ish graph: mean degree n-1 >= threshold.
        let n = 32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        let g = Graph::from_edges(n, true, &edges);
        let s = GraphStats::compute(&g);
        assert_eq!(s.class(), GraphClass::Irregular);
    }

    #[test]
    fn scf_of_empty_graph_is_zero() {
        let g = Graph::from_edges(3, true, &[]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.scf_raw, 0);
        assert_eq!(s.scf, 0.0);
        assert_eq!(s.class(), GraphClass::Regular);
    }

    #[test]
    fn stats_row_matches_graph() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 6);
        assert_eq!(s.degree.max, 2);
    }
}

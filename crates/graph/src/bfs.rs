//! Breadth-first search utilities (reference, queue-based).
//!
//! Used to compute the paper's per-graph parameter `d` (the height of the
//! BFS tree rooted at the source) and as a structural oracle in tests.

use crate::{Graph, VertexId};
use std::collections::VecDeque;
use turbobc_sparse::Csr;

/// Result of a breadth-first search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Discovery depth per vertex, using the paper's convention: the source
    /// has depth 1, its neighbours depth 2, …; `0` means unreachable.
    pub depths: Vec<u32>,
    /// Height of the BFS tree — the paper's `d` column.
    pub height: u32,
    /// Number of vertices reachable from the source (including it).
    pub reached: usize,
}

/// Runs a queue-based BFS over out-edges from `source`.
pub fn bfs(graph: &Graph, source: VertexId) -> BfsResult {
    bfs_csr(&graph.to_csr(), source)
}

/// BFS over an already-built CSR adjacency structure.
pub fn bfs_csr(csr: &Csr, source: VertexId) -> BfsResult {
    let n = csr.n_rows();
    let mut depths = vec![0u32; n];
    if n == 0 {
        return BfsResult {
            depths,
            height: 0,
            reached: 0,
        };
    }
    let mut queue = VecDeque::new();
    depths[source as usize] = 1;
    queue.push_back(source);
    let mut height = 1;
    let mut reached = 1;
    while let Some(u) = queue.pop_front() {
        let du = depths[u as usize];
        for &v in csr.row(u as usize) {
            if depths[v as usize] == 0 {
                depths[v as usize] = du + 1;
                height = height.max(du + 1);
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    BfsResult {
        depths,
        height,
        reached,
    }
}

impl BfsResult {
    /// Whether vertex `v` was reached.
    pub fn reached_vertex(&self, v: VertexId) -> bool {
        self.depths[v as usize] != 0
    }
}

/// Weakly-connected component label per vertex (labels are the smallest
/// vertex id in the component), plus the component count. Treats arcs as
/// undirected.
pub fn connected_components(graph: &Graph) -> (Vec<VertexId>, usize) {
    let n = graph.n();
    let mut label: Vec<VertexId> = vec![VertexId::MAX; n];
    if n == 0 {
        return (label, 0);
    }
    // Union via BFS over the symmetrised adjacency.
    let csr = graph.to_csr();
    let csc = graph.to_csc();
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != VertexId::MAX {
            continue;
        }
        count += 1;
        label[s] = s as VertexId;
        queue.push_back(s as VertexId);
        while let Some(u) = queue.pop_front() {
            for &v in csr.row(u as usize).iter().chain(csc.column(u as usize)) {
                if label[v as usize] == VertexId::MAX {
                    label[v as usize] = s as VertexId;
                    queue.push_back(v);
                }
            }
        }
    }
    (label, count)
}

/// The vertices of the largest weakly-connected component.
pub fn largest_component(graph: &Graph) -> Vec<VertexId> {
    let (label, _) = connected_components(graph);
    let mut sizes: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
    for &l in &label {
        if l != VertexId::MAX {
            *sizes.entry(l).or_insert(0) += 1;
        }
    }
    let Some((&best, _)) = sizes.iter().max_by_key(|(_, &c)| c) else {
        return Vec::new();
    };
    (0..graph.n() as VertexId)
        .filter(|&v| label[v as usize] == best)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_depths() {
        let g = Graph::from_edges(4, true, &[(0, 1), (1, 2), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depths, vec![1, 2, 3, 4]);
        assert_eq!(r.height, 4);
        assert_eq!(r.reached, 4);
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = Graph::from_edges(3, true, &[(0, 1), (2, 1)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depths, vec![1, 2, 0]);
        assert_eq!(r.reached, 2);
        assert!(!r.reached_vertex(2));
    }

    #[test]
    fn undirected_bfs_goes_both_ways() {
        let g = Graph::from_edges(3, false, &[(1, 0), (1, 2)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depths, vec![1, 2, 3]);
    }

    #[test]
    fn disconnected_component_unreached() {
        let g = Graph::from_edges(5, false, &[(0, 1), (2, 3), (3, 4)]);
        let r = bfs(&g, 0);
        assert_eq!(r.reached, 2);
        assert_eq!(r.depths[2], 0);
        assert_eq!(r.height, 2);
    }

    #[test]
    fn shortest_depth_wins_over_longer_route() {
        // 0→1→2→3 and shortcut 0→3.
        let g = Graph::from_edges(4, true, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depths[3], 2);
        assert_eq!(r.height, 3);
    }

    #[test]
    fn components_are_labelled_and_counted() {
        let g = Graph::from_edges(7, false, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        let (label, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(label[0], label[2]);
        assert_eq!(label[3], label[4]);
        assert_ne!(label[0], label[3]);
        let big = largest_component(&g);
        assert_eq!(big, vec![0, 1, 2]);
    }

    #[test]
    fn directed_arcs_count_as_weak_links() {
        let g = Graph::from_edges(4, true, &[(1, 0), (2, 3)]);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::from_edges(0, true, &[]);
        let (label, count) = connected_components(&g);
        assert!(label.is_empty());
        assert_eq!(count, 0);
        assert!(largest_component(&g).is_empty());
    }

    #[test]
    fn singleton_source() {
        let g = Graph::from_edges(1, true, &[]);
        let r = bfs(&g, 0);
        assert_eq!(r.depths, vec![1]);
        assert_eq!(r.height, 1);
        assert_eq!(r.reached, 1);
    }
}

//! The TCP server: connection handling, graph registry, and the
//! request handlers gluing scheduler, cache and metrics together.
//!
//! # Invariants
//!
//! * **Cache coherence** — every cache entry is keyed by the *content*
//!   fingerprint of the graph it was computed on. Updates re-key the
//!   graph, so the handler invalidates the old fingerprint's entries
//!   inside the same graphs-lock critical section that applied the
//!   batch: no window exists where a query could cache a result under
//!   a fingerprint the graph no longer has.
//! * **Sharding determinism** — a job folds its per-block partials in
//!   block order, so two runs of the same query produce the same
//!   float-for-float vector for a given batch width (and match a
//!   single-threaded solver run to the usual `1e-6` graded tolerance).
//! * **Derived queries share work** — `bc_topk` and `bc_vertex` are
//!   projections of the full vector: they first probe their own cache
//!   key, then the `bc_full` key, and only then schedule a job (which
//!   primes the `bc_full` entry for everyone else).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use turbobc::observe::json::Json;
use turbobc::{BcOptions, BcSolver, DispatchMode, DynamicBc, DynamicGraph, EdgeUpdate};
use turbobc_graph::families::{self, Scale};
use turbobc_graph::{io as graph_io, Graph};

use crate::cache::{fnv, options_fingerprint, CachedFields, ResultCache};
use crate::metrics::MetricsHub;
use crate::protocol::{err_line, fingerprint_hex, ok_line, Envelope, GraphSource, Request};
use crate::scheduler::{CheckpointSpec, Job, JobOutput, Scheduler};

/// Server configuration. `Default` binds an ephemeral loopback port
/// with 4 workers, a 64 MiB result cache, no checkpoint directory and
/// cost-model dispatch (each shard's executor is chosen per block).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (`:0` for ephemeral).
    pub addr: String,
    /// Worker pool width.
    pub workers: usize,
    /// Result-cache payload budget in bytes.
    pub cache_bytes: u64,
    /// Where preemptible jobs snapshot their completed prefix; `None`
    /// disables job checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in completed blocks.
    pub checkpoint_every_blocks: usize,
    /// Solver options every loaded graph's solver is built with.
    pub options: BcOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_bytes: 64 << 20,
            checkpoint_dir: None,
            checkpoint_every_blocks: 4,
            options: BcOptions::builder()
                .dispatch(DispatchMode::CostModel)
                .build(),
        }
    }
}

/// A loaded graph's evolving state: plain delta logs, or a warm
/// incremental-BC session that keeps a live full-BC vector.
enum GraphState {
    /// Updates maintain the graph only; BC is computed on demand.
    Cold(Box<DynamicGraph>),
    /// Updates also refresh the full-BC vector incrementally.
    Warm(Box<DynamicBc>),
}

struct GraphEntry {
    state: GraphState,
    /// The epoch solver jobs run on; rebuilt from a snapshot after
    /// every update batch.
    solver: Arc<BcSolver>,
    /// In-flight jobs, for cancellation on unload.
    jobs: Vec<Arc<Job>>,
}

impl GraphEntry {
    fn fingerprint(&self) -> u64 {
        match &self.state {
            GraphState::Cold(g) => g.fingerprint(),
            GraphState::Warm(s) => s.graph().fingerprint(),
        }
    }

    fn n(&self) -> usize {
        match &self.state {
            GraphState::Cold(g) => g.n(),
            GraphState::Warm(s) => s.graph().n(),
        }
    }

    fn m(&self) -> usize {
        match &self.state {
            GraphState::Cold(g) => g.m(),
            GraphState::Warm(s) => s.graph().m(),
        }
    }

    fn pending(&self) -> usize {
        match &self.state {
            GraphState::Cold(g) => g.pending(),
            GraphState::Warm(s) => s.graph().pending(),
        }
    }

    fn snapshot(&self) -> Graph {
        match &self.state {
            GraphState::Cold(g) => g.snapshot(),
            GraphState::Warm(s) => s.graph().snapshot(),
        }
    }
}

struct ServerState {
    graphs: Mutex<HashMap<String, GraphEntry>>,
    cache: Mutex<ResultCache>,
    scheduler: Scheduler,
    hub: MetricsHub,
    config: ServeConfig,
    shutdown: AtomicBool,
}

/// The bound-but-not-yet-serving server. [`Server::run`] blocks on the
/// accept loop; [`Server::spawn`] runs it on a thread and returns a
/// [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the configured address and spins up the worker pool.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let scheduler = Scheduler::new(config.workers);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                graphs: Mutex::new(HashMap::new()),
                cache: Mutex::new(ResultCache::new(config.cache_bytes)),
                scheduler,
                hub: MetricsHub::new(),
                config,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until [`ServerHandle::shutdown`] flips the flag: accepts
    /// connections and hands each to its own line-loop thread.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = self.state.clone();
            std::thread::Builder::new()
                .name("turbobc-serve-conn".into())
                .spawn(move || handle_connection(&state, stream))
                .expect("spawn connection thread");
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state.clone();
        let thread = std::thread::Builder::new()
            .name("turbobc-serve-accept".into())
            .spawn(move || {
                let _ = self.run();
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// A running server: its address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins it. Live
    /// connections finish their current request and drop at the next
    /// read.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(peer) = stream.try_clone() else { return };
    let reader = BufReader::new(peer);
    let mut writer = stream;
    for line in reader.lines() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let response = match Envelope::parse_line(&line) {
            Ok(env) => {
                let kind = env.request.kind();
                let outcome = handle_request(state, &env.request);
                let ok = outcome.is_ok();
                state
                    .hub
                    .record_request(kind, ok, t0.elapsed().as_secs_f64());
                match outcome {
                    Ok(payload) => ok_line(env.id.as_deref(), payload),
                    Err(err) => err_line(env.id.as_deref(), &err),
                }
            }
            Err(err) => {
                state
                    .hub
                    .record_request("invalid", false, t0.elapsed().as_secs_f64());
                err_line(None, &err)
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

type Payload = Vec<(String, Json)>;

fn handle_request(state: &Arc<ServerState>, request: &Request) -> Result<Payload, String> {
    match request {
        Request::Load {
            graph,
            source,
            warm,
        } => handle_load(state, graph, source, *warm),
        Request::Unload { graph } => handle_unload(state, graph),
        Request::BcFull { graph } => handle_bc_full(state, graph),
        Request::BcTopK { graph, k } => handle_bc_topk(state, graph, *k),
        Request::BcVertex { graph, vertex } => handle_bc_vertex(state, graph, *vertex),
        Request::BcSubset { graph, sources } => handle_bc_subset(state, graph, sources),
        Request::Update { graph, updates } => handle_update(state, graph, updates),
        Request::Status => Ok(handle_status(state)),
        Request::Metrics => Ok(handle_metrics(state)),
    }
}

fn build_graph(source: &GraphSource) -> Result<Graph, String> {
    match source {
        GraphSource::Path { path, directed } => {
            if path.ends_with(".mtx") {
                graph_io::read_matrix_market_file(path).map_err(|e| e.to_string())
            } else {
                graph_io::read_edge_list_file(path, *directed, None).map_err(|e| e.to_string())
            }
        }
        GraphSource::Inline { n, directed, edges } => {
            for &(u, v) in edges {
                if u as usize >= *n || v as usize >= *n {
                    return Err(format!("edge ({u}, {v}) out of range for n = {n}"));
                }
            }
            Ok(Graph::from_edges(*n, *directed, edges))
        }
        GraphSource::Family { family, scale } => {
            let scale = match scale.as_str() {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "medium" => Scale::Medium,
                "large" => Scale::Large,
                other => return Err(format!("unknown scale {other:?}")),
            };
            families::generate(family, scale)
                .ok_or_else(|| format!("unknown graph family {family:?}"))
        }
    }
}

fn handle_load(
    state: &Arc<ServerState>,
    name: &str,
    source: &GraphSource,
    warm: bool,
) -> Result<Payload, String> {
    let graph = build_graph(source)?;
    let solver =
        Arc::new(BcSolver::new(&graph, state.config.options.clone()).map_err(|e| e.to_string())?);
    let (graph_state, warmed) = if warm {
        let sources: Vec<u32> = (0..graph.n() as u32).collect();
        match DynamicBc::new(&graph, &sources, state.config.options.clone()) {
            Ok(session) => (GraphState::Warm(Box::new(session)), true),
            Err(_) => (
                GraphState::Cold(Box::new(DynamicGraph::from_graph(&graph))),
                false,
            ),
        }
    } else {
        (
            GraphState::Cold(Box::new(DynamicGraph::from_graph(&graph))),
            false,
        )
    };
    let entry = GraphEntry {
        state: graph_state,
        solver,
        jobs: Vec::new(),
    };
    let fp = entry.fingerprint();
    let (n, m, directed) = (entry.n(), entry.m(), graph.directed());
    let mut graphs = state.graphs.lock().expect("graph registry");
    if let Some(old) = graphs.insert(name.to_string(), entry) {
        for job in &old.jobs {
            job.cancel();
        }
        let old_fp = old.fingerprint();
        if old_fp != fp {
            state
                .cache
                .lock()
                .expect("result cache")
                .invalidate_graph(old_fp);
        }
    }
    Ok(vec![
        ("graph".into(), name.into()),
        ("n".into(), n.into()),
        ("m".into(), m.into()),
        ("directed".into(), directed.into()),
        ("fingerprint".into(), fingerprint_hex(fp).into()),
        ("warm".into(), warmed.into()),
    ])
}

fn handle_unload(state: &Arc<ServerState>, name: &str) -> Result<Payload, String> {
    let mut graphs = state.graphs.lock().expect("graph registry");
    let entry = graphs
        .remove(name)
        .ok_or_else(|| format!("no such graph {name:?}"))?;
    let cancelled = entry.jobs.len();
    for job in &entry.jobs {
        job.cancel();
    }
    let fp = entry.fingerprint();
    drop(graphs);
    let invalidated = state
        .cache
        .lock()
        .expect("result cache")
        .invalidate_graph(fp);
    Ok(vec![
        ("graph".into(), name.into()),
        ("cancelled_jobs".into(), cancelled.into()),
        ("invalidated".into(), invalidated.into()),
    ])
}

/// Snapshot of the per-query graph facts every handler needs, taken
/// under one short registry lock.
struct GraphView {
    solver: Arc<BcSolver>,
    fp: u64,
    n: usize,
    m: usize,
    warm_bc: Option<Vec<f64>>,
}

fn view(state: &Arc<ServerState>, name: &str) -> Result<GraphView, String> {
    let graphs = state.graphs.lock().expect("graph registry");
    let entry = graphs
        .get(name)
        .ok_or_else(|| format!("no such graph {name:?}"))?;
    Ok(GraphView {
        solver: entry.solver.clone(),
        fp: entry.fingerprint(),
        n: entry.n(),
        m: entry.m(),
        warm_bc: match &entry.state {
            GraphState::Warm(s) => Some(s.bc().to_vec()),
            GraphState::Cold(_) => None,
        },
    })
}

fn checkpoint_spec(
    state: &Arc<ServerState>,
    graph_fp: u64,
    options_fp: u64,
) -> Option<CheckpointSpec> {
    let dir = state.config.checkpoint_dir.as_ref()?;
    let fp = fnv(&[graph_fp, options_fp]);
    Some(CheckpointSpec {
        path: dir.join(format!("job-{}.ckpt", fingerprint_hex(fp))),
        fp,
        every_blocks: state.config.checkpoint_every_blocks,
    })
}

/// Runs `sources` through the sharded scheduler for graph `name`,
/// tracking the job in the registry so unload can cancel it.
fn run_job(
    state: &Arc<ServerState>,
    name: &str,
    view: &GraphView,
    sources: Vec<u32>,
    options_fp: u64,
) -> Result<JobOutput, String> {
    let n_sources = sources.len();
    let job = Job::new(
        view.solver.clone(),
        sources,
        checkpoint_spec(state, view.fp, options_fp),
    );
    {
        let mut graphs = state.graphs.lock().expect("graph registry");
        if let Some(entry) = graphs.get_mut(name) {
            entry.jobs.push(job.clone());
        }
    }
    let outcome = state.scheduler.run(&job);
    {
        let mut graphs = state.graphs.lock().expect("graph registry");
        if let Some(entry) = graphs.get_mut(name) {
            entry.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        }
    }
    let out = outcome?;
    state
        .hub
        .record_job(&out, view.n, view.m, view.solver.kernel().name(), n_sources);
    Ok(out)
}

fn bc_json(bc: &[f64]) -> Json {
    Json::Arr(bc.iter().map(|&x| x.into()).collect())
}

fn json_bc(fields: &[(String, Json)]) -> Option<Vec<f64>> {
    let arr = fields.iter().find(|(k, _)| k == "bc")?.1.as_arr()?;
    arr.iter().map(Json::as_f64).collect()
}

fn full_fields(name: &str, fp: u64, n: usize, m: usize, bc: &[f64]) -> CachedFields {
    Arc::new(vec![
        ("graph".into(), name.into()),
        ("fingerprint".into(), fingerprint_hex(fp).into()),
        ("n".into(), n.into()),
        ("m".into(), m.into()),
        ("bc".into(), bc_json(bc)),
    ])
}

/// The full-BC vector for a graph, via (in order): the `bc_full`
/// cache entry, the warm session, or a sharded job (which then primes
/// the cache). Returns `(bc, served_from_cache)`.
fn full_bc(
    state: &Arc<ServerState>,
    name: &str,
    view: &GraphView,
) -> Result<(Vec<f64>, bool), String> {
    let full_fp = options_fingerprint("bc_full", &[]);
    if let Some(fields) = state
        .cache
        .lock()
        .expect("result cache")
        .get(view.fp, full_fp)
    {
        if let Some(bc) = json_bc(&fields) {
            state.hub.record_cache_hit();
            return Ok((bc, true));
        }
    }
    if let Some(bc) = &view.warm_bc {
        state.cache.lock().expect("result cache").insert(
            view.fp,
            full_fp,
            full_fields(name, view.fp, view.n, view.m, bc),
        );
        return Ok((bc.clone(), true));
    }
    let sources: Vec<u32> = (0..view.n as u32).collect();
    let out = run_job(state, name, view, sources, full_fp)?;
    state.cache.lock().expect("result cache").insert(
        view.fp,
        full_fp,
        full_fields(name, view.fp, view.n, view.m, &out.bc),
    );
    Ok((out.bc, false))
}

fn executors_field(out: &JobOutput) -> Json {
    let mut names: Vec<String> = Vec::new();
    for shard in &out.shards {
        for e in &shard.executors {
            if !names.contains(e) {
                names.push(e.clone());
            }
        }
    }
    Json::Arr(names.into_iter().map(Json::Str).collect())
}

fn handle_bc_full(state: &Arc<ServerState>, name: &str) -> Result<Payload, String> {
    let view = view(state, name)?;
    let full_fp = options_fingerprint("bc_full", &[]);
    if let Some(fields) = state
        .cache
        .lock()
        .expect("result cache")
        .get(view.fp, full_fp)
    {
        state.hub.record_cache_hit();
        let mut payload = fields.as_ref().clone();
        payload.push(("cached".into(), true.into()));
        return Ok(payload);
    }
    if let Some(bc) = &view.warm_bc {
        let fields = full_fields(name, view.fp, view.n, view.m, bc);
        state
            .cache
            .lock()
            .expect("result cache")
            .insert(view.fp, full_fp, fields.clone());
        let mut payload = fields.as_ref().clone();
        payload.push(("cached".into(), true.into()));
        payload.push(("warm".into(), true.into()));
        return Ok(payload);
    }
    let sources: Vec<u32> = (0..view.n as u32).collect();
    let out = run_job(state, name, &view, sources, full_fp)?;
    let fields = full_fields(name, view.fp, view.n, view.m, &out.bc);
    state
        .cache
        .lock()
        .expect("result cache")
        .insert(view.fp, full_fp, fields.clone());
    let mut payload = fields.as_ref().clone();
    payload.push(("cached".into(), false.into()));
    payload.push(("blocks".into(), out.blocks_total.into()));
    payload.push(("blocks_resumed".into(), out.blocks_resumed.into()));
    payload.push(("elapsed_s".into(), out.elapsed_s.into()));
    payload.push(("executors".into(), executors_field(&out)));
    Ok(payload)
}

fn handle_bc_topk(state: &Arc<ServerState>, name: &str, k: usize) -> Result<Payload, String> {
    let view = view(state, name)?;
    let topk_fp = options_fingerprint("bc_topk", &[k as u64]);
    if let Some(fields) = state
        .cache
        .lock()
        .expect("result cache")
        .get(view.fp, topk_fp)
    {
        state.hub.record_cache_hit();
        let mut payload = fields.as_ref().clone();
        payload.push(("cached".into(), true.into()));
        return Ok(payload);
    }
    let (bc, cached) = full_bc(state, name, &view)?;
    let mut order: Vec<u32> = (0..view.n as u32).collect();
    order.sort_by(|&a, &b| {
        bc[b as usize]
            .partial_cmp(&bc[a as usize])
            .expect("finite BC")
            .then(a.cmp(&b))
    });
    order.truncate(k);
    let top = Json::Arr(
        order
            .iter()
            .map(|&v| Json::Arr(vec![v.into(), bc[v as usize].into()]))
            .collect(),
    );
    let fields: CachedFields = Arc::new(vec![
        ("graph".into(), name.into()),
        ("fingerprint".into(), fingerprint_hex(view.fp).into()),
        ("k".into(), k.into()),
        ("top".into(), top),
    ]);
    state
        .cache
        .lock()
        .expect("result cache")
        .insert(view.fp, topk_fp, fields.clone());
    let mut payload = fields.as_ref().clone();
    payload.push(("cached".into(), cached.into()));
    Ok(payload)
}

fn handle_bc_vertex(state: &Arc<ServerState>, name: &str, vertex: u32) -> Result<Payload, String> {
    let view = view(state, name)?;
    if vertex as usize >= view.n {
        return Err(format!("vertex {vertex} out of range (n = {})", view.n));
    }
    let vertex_fp = options_fingerprint("bc_vertex", &[vertex as u64]);
    if let Some(fields) = state
        .cache
        .lock()
        .expect("result cache")
        .get(view.fp, vertex_fp)
    {
        state.hub.record_cache_hit();
        let mut payload = fields.as_ref().clone();
        payload.push(("cached".into(), true.into()));
        return Ok(payload);
    }
    let (bc, cached) = full_bc(state, name, &view)?;
    let fields: CachedFields = Arc::new(vec![
        ("graph".into(), name.into()),
        ("fingerprint".into(), fingerprint_hex(view.fp).into()),
        ("vertex".into(), vertex.into()),
        ("bc".into(), bc[vertex as usize].into()),
    ]);
    state
        .cache
        .lock()
        .expect("result cache")
        .insert(view.fp, vertex_fp, fields.clone());
    let mut payload = fields.as_ref().clone();
    payload.push(("cached".into(), cached.into()));
    Ok(payload)
}

fn handle_bc_subset(
    state: &Arc<ServerState>,
    name: &str,
    sources: &[u32],
) -> Result<Payload, String> {
    let view = view(state, name)?;
    if sources.is_empty() {
        return Err("bc_subset needs at least one source".into());
    }
    for &s in sources {
        if s as usize >= view.n {
            return Err(format!("source {s} out of range (n = {})", view.n));
        }
    }
    let words: Vec<u64> = sources.iter().map(|&s| s as u64).collect();
    let subset_fp = options_fingerprint("bc_subset", &words);
    if let Some(fields) = state
        .cache
        .lock()
        .expect("result cache")
        .get(view.fp, subset_fp)
    {
        state.hub.record_cache_hit();
        let mut payload = fields.as_ref().clone();
        payload.push(("cached".into(), true.into()));
        return Ok(payload);
    }
    let out = run_job(state, name, &view, sources.to_vec(), subset_fp)?;
    let fields: CachedFields = Arc::new(vec![
        ("graph".into(), name.into()),
        ("fingerprint".into(), fingerprint_hex(view.fp).into()),
        ("sources".into(), sources.len().into()),
        ("bc".into(), bc_json(&out.bc)),
    ]);
    state
        .cache
        .lock()
        .expect("result cache")
        .insert(view.fp, subset_fp, fields.clone());
    let mut payload = fields.as_ref().clone();
    payload.push(("cached".into(), false.into()));
    payload.push(("blocks".into(), out.blocks_total.into()));
    payload.push(("elapsed_s".into(), out.elapsed_s.into()));
    payload.push(("executors".into(), executors_field(&out)));
    Ok(payload)
}

fn handle_update(
    state: &Arc<ServerState>,
    name: &str,
    updates: &[EdgeUpdate],
) -> Result<Payload, String> {
    let t0 = Instant::now();
    let mut graphs = state.graphs.lock().expect("graph registry");
    let entry = graphs
        .get_mut(name)
        .ok_or_else(|| format!("no such graph {name:?}"))?;
    let old_fp = entry.fingerprint();
    let report = match &mut entry.state {
        GraphState::Cold(g) => g.apply(updates).map_err(|e| e.to_string())?,
        GraphState::Warm(s) => s.apply_updates(updates).map_err(|e| e.to_string())?,
    };
    let snapshot = entry.snapshot();
    entry.solver = Arc::new(
        BcSolver::new(&snapshot, state.config.options.clone()).map_err(|e| e.to_string())?,
    );
    let new_fp = entry.fingerprint();
    let refreshed_bc = match &entry.state {
        GraphState::Warm(s) => Some(s.bc().to_vec()),
        GraphState::Cold(_) => None,
    };
    let (n, m) = (entry.n(), entry.m());
    drop(graphs);

    let mut cache = state.cache.lock().expect("result cache");
    let invalidated = if new_fp == old_fp {
        0 // a no-op batch keeps the key and the entries
    } else {
        cache.invalidate_graph(old_fp)
    };
    let refreshed = if let Some(bc) = &refreshed_bc {
        cache.insert(
            new_fp,
            options_fingerprint("bc_full", &[]),
            full_fields(name, new_fp, n, m, bc),
        );
        true
    } else {
        false
    };
    drop(cache);

    state.hub.record_update(
        report.inserts,
        report.deletes,
        report.dirty_blocks,
        report.total_blocks,
        report.strategy,
        t0.elapsed().as_secs_f64(),
    );
    Ok(vec![
        ("graph".into(), name.into()),
        ("inserts".into(), report.inserts.into()),
        ("deletes".into(), report.deletes.into()),
        ("ignored".into(), report.ignored.into()),
        ("dirty_blocks".into(), report.dirty_blocks.into()),
        ("total_blocks".into(), report.total_blocks.into()),
        ("strategy".into(), report.strategy.into()),
        ("compacted".into(), report.compacted.into()),
        ("invalidated".into(), invalidated.into()),
        ("refreshed".into(), refreshed.into()),
        ("fingerprint".into(), fingerprint_hex(new_fp).into()),
    ])
}

fn handle_status(state: &Arc<ServerState>) -> Payload {
    let graphs = state.graphs.lock().expect("graph registry");
    let mut listed: Vec<(&String, &GraphEntry)> = graphs.iter().collect();
    listed.sort_by_key(|(name, _)| name.as_str());
    let graph_list = Json::Arr(
        listed
            .iter()
            .map(|(name, entry)| {
                Json::Obj(vec![
                    ("name".into(), name.as_str().into()),
                    ("n".into(), entry.n().into()),
                    ("m".into(), entry.m().into()),
                    (
                        "fingerprint".into(),
                        fingerprint_hex(entry.fingerprint()).into(),
                    ),
                    ("pending_updates".into(), entry.pending().into()),
                    (
                        "warm".into(),
                        matches!(entry.state, GraphState::Warm(_)).into(),
                    ),
                    ("jobs_inflight".into(), entry.jobs.len().into()),
                ])
            })
            .collect(),
    );
    drop(graphs);
    let stats = state.cache.lock().expect("result cache").stats();
    vec![
        ("graphs".into(), graph_list),
        ("workers".into(), state.scheduler.workers().into()),
        ("queued_shards".into(), state.scheduler.queued().into()),
        (
            "cache".into(),
            Json::Obj(vec![
                ("entries".into(), stats.entries.into()),
                ("bytes".into(), stats.bytes.into()),
                ("budget".into(), stats.budget.into()),
                ("hits".into(), stats.hits.into()),
                ("misses".into(), stats.misses.into()),
                ("evictions".into(), stats.evictions.into()),
                ("invalidations".into(), stats.invalidations.into()),
                ("hit_rate".into(), stats.hit_rate().into()),
            ]),
        ),
        ("uptime_s".into(), state.hub.uptime_s().into()),
    ]
}

fn handle_metrics(state: &Arc<ServerState>) -> Payload {
    let profile = state.hub.profile();
    vec![
        ("profile".into(), profile.to_json()),
        ("counters".into(), state.hub.counters()),
        (
            "cache".into(),
            Json::Obj(vec![(
                "hit_rate".into(),
                state
                    .cache
                    .lock()
                    .expect("result cache")
                    .stats()
                    .hit_rate()
                    .into(),
            )]),
        ),
    ]
}

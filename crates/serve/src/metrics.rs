//! Live server metrics, exported in the `turbobc-profile-v1` schema.
//!
//! The hub folds every handled request, executed job and applied
//! update batch into one evolving [`RunProfile`] (engine `"serve"`):
//! shard executions land as block-granularity [`DispatchTrace`]s,
//! update batches as [`UpdateTrace`]s, and the trace arrays are capped
//! so a long-lived server's metrics response stays bounded. The
//! `metrics` endpoint serialises the profile with
//! [`RunProfile::to_json`], so it validates against the same schema
//! as every other profile producer in the workspace.

use std::time::Instant;

use turbobc::observe::json::Json;
use turbobc::observe::{DispatchTrace, RunProfile, UpdateTrace};

use crate::protocol::Request;
use crate::scheduler::JobOutput;

/// Cap on each stored trace array; the newest entries win.
const TRACE_CAP: usize = 256;
/// Cap on the per-request latency reservoir.
const LATENCY_CAP: usize = 65_536;

#[derive(Default)]
struct HubState {
    requests: Vec<u64>,
    errors: u64,
    jobs: u64,
    blocks: u64,
    resumed_blocks: u64,
    sources: u64,
    cached_responses: u64,
    latencies_s: Vec<f64>,
    dispatch: Vec<DispatchTrace>,
    updates: Vec<UpdateTrace>,
    last_kernel: String,
    last_n: usize,
    last_m: usize,
}

/// The server's metrics aggregator. One per server, shared by every
/// connection thread.
pub struct MetricsHub {
    started: Instant,
    state: std::sync::Mutex<HubState>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// An empty hub; the uptime clock starts now.
    pub fn new() -> Self {
        MetricsHub {
            started: Instant::now(),
            state: std::sync::Mutex::new(HubState {
                requests: vec![0; Request::KINDS.len()],
                ..Default::default()
            }),
        }
    }

    /// Server uptime in seconds.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Counts one handled request of `kind` with its wall-clock
    /// latency; `ok` distinguishes error responses.
    pub fn record_request(&self, kind: &str, ok: bool, latency_s: f64) {
        let mut state = self.state.lock().expect("metrics hub");
        if let Some(i) = Request::KINDS.iter().position(|&k| k == kind) {
            state.requests[i] += 1;
        }
        if !ok {
            state.errors += 1;
        }
        if state.latencies_s.len() < LATENCY_CAP {
            state.latencies_s.push(latency_s);
        }
    }

    /// Counts one response served straight from the result cache.
    pub fn record_cache_hit(&self) {
        self.state.lock().expect("metrics hub").cached_responses += 1;
    }

    /// Folds one executed job into the profile: shard traces become
    /// block-granularity dispatch entries.
    pub fn record_job(&self, out: &JobOutput, n: usize, m: usize, kernel: &str, sources: usize) {
        let mut state = self.state.lock().expect("metrics hub");
        state.jobs += 1;
        state.blocks += out.blocks_executed as u64;
        state.resumed_blocks += out.blocks_resumed as u64;
        state.sources += sources as u64;
        state.last_kernel = kernel.to_string();
        state.last_n = n;
        state.last_m = m;
        for shard in &out.shards {
            if state.dispatch.len() >= TRACE_CAP {
                state.dispatch.remove(0);
            }
            state.dispatch.push(DispatchTrace {
                granularity: "block".into(),
                executor: shard
                    .executors
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "unknown".into()),
                source: shard.first_source,
                depth: 0,
                frontier: shard.len,
                reason: shard.reason.clone(),
                t_s: shard.t_s,
            });
        }
    }

    /// Folds one applied update batch into the profile.
    #[allow(clippy::too_many_arguments)]
    pub fn record_update(
        &self,
        inserts: usize,
        deletes: usize,
        dirty_blocks: usize,
        total_blocks: usize,
        strategy: &str,
        t_s: f64,
    ) {
        let mut state = self.state.lock().expect("metrics hub");
        if state.updates.len() >= TRACE_CAP {
            state.updates.remove(0);
        }
        state.updates.push(UpdateTrace {
            inserts,
            deletes,
            dirty_blocks,
            total_blocks,
            strategy: strategy.to_string(),
            t_s,
        });
    }

    /// The live profile: a valid `turbobc-profile-v1` document when
    /// serialised with [`RunProfile::to_json`].
    pub fn profile(&self) -> RunProfile {
        let state = self.state.lock().expect("metrics hub");
        let mut profile = RunProfile {
            engine: "serve".into(),
            kernel: if state.last_kernel.is_empty() {
                "auto".into()
            } else {
                state.last_kernel.clone()
            },
            n: state.last_n,
            m: state.last_m,
            sources: state.sources as usize,
            attempts: 1,
            elapsed_s: self.uptime_s(),
            ..RunProfile::default()
        };
        profile.dispatch = state.dispatch.clone();
        profile.updates = state.updates.clone();
        profile
    }

    /// Request counters and latency percentiles as a JSON object for
    /// the `metrics` response, alongside the profile.
    pub fn counters(&self) -> Json {
        let state = self.state.lock().expect("metrics hub");
        let kinds = Request::KINDS
            .iter()
            .zip(&state.requests)
            .map(|(&k, &c)| (k.to_string(), c.into()))
            .collect();
        let mut sorted = state.latencies_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Json::Obj(vec![
            ("requests".into(), Json::Obj(kinds)),
            ("errors".into(), state.errors.into()),
            ("jobs".into(), state.jobs.into()),
            ("blocks_executed".into(), state.blocks.into()),
            ("blocks_resumed".into(), state.resumed_blocks.into()),
            ("sources_executed".into(), state.sources.into()),
            ("cached_responses".into(), state.cached_responses.into()),
            ("latency_p50_s".into(), percentile(&sorted, 0.50).into()),
            ("latency_p90_s".into(), percentile(&sorted, 0.90).into()),
            ("latency_p99_s".into(), percentile(&sorted, 0.99).into()),
        ])
    }
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when
/// empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc::observe::RunProfile;

    #[test]
    fn profile_validates_against_the_schema() {
        let hub = MetricsHub::new();
        hub.record_request("bc_full", true, 0.01);
        hub.record_update(1, 0, 2, 4, "incremental", 0.002);
        let text = hub.profile().to_json_string();
        let doc = RunProfile::validate(&text).expect("serve profile must validate");
        assert_eq!(
            doc.get("engine").and_then(Json::as_str),
            Some("serve"),
            "engine tag"
        );
    }

    #[test]
    fn counters_track_kinds_and_percentiles() {
        let hub = MetricsHub::new();
        for i in 0..100 {
            hub.record_request("status", true, (i + 1) as f64 / 1000.0);
        }
        hub.record_request("bogus_kind", false, 0.5);
        let c = hub.counters();
        let reqs = c.get("requests").expect("requests object");
        assert_eq!(reqs.get("status").and_then(Json::as_f64), Some(100.0));
        assert_eq!(c.get("errors").and_then(Json::as_f64), Some(1.0));
        let p50 = c.get("latency_p50_s").and_then(Json::as_f64).unwrap();
        // 101 samples: the 0.5 outlier shifts nearest-rank p50 to 51ms.
        assert!((0.045..=0.06).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}

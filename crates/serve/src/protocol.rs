//! The wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response line per request, in order.
//! Both sides speak the hand-rolled [`Json`] dialect of
//! `turbobc::observe::json` — the service adds a *compact* writer
//! (one line, no indentation) because the transport is line-framed.
//!
//! # Grammar
//!
//! ```text
//! request  = "{" '"id"': string? , '"kind"': kind , fields "}" "\n"
//! kind     = "load" | "unload" | "bc_full" | "bc_topk" | "bc_vertex"
//!          | "bc_subset" | "update" | "status" | "metrics"
//! response = "{" '"id"': string? , '"ok"': bool , payload "}" "\n"
//! ```
//!
//! `id` is an opaque client token echoed verbatim in the response.
//! Numbers are IEEE doubles (the JSON substrate), so 64-bit graph
//! fingerprints travel as fixed-width hex *strings* — see
//! [`fingerprint_hex`].

use turbobc::observe::json::{parse, Json};
use turbobc::EdgeUpdate;

/// Where a `load` request gets its graph from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// Read from a file on the *server's* filesystem; `.mtx` is parsed
    /// as Matrix Market, anything else as a whitespace edge list.
    Path {
        /// Server-side path.
        path: String,
        /// Whether arcs are one-way.
        directed: bool,
    },
    /// Edges shipped inline in the request.
    Inline {
        /// Vertex count.
        n: usize,
        /// Whether arcs are one-way.
        directed: bool,
        /// The `(u, v)` edge list.
        edges: Vec<(u32, u32)>,
    },
    /// A generated graph family from `turbobc_graph::families`
    /// (e.g. `smallworld` at scale `tiny`).
    Family {
        /// Family name.
        family: String,
        /// Scale name: `tiny`/`small`/`medium`/`large`.
        scale: String,
    },
}

/// One parsed request, minus the envelope `id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Load (or replace) a named graph.
    Load {
        /// Server-side graph name.
        graph: String,
        /// Where the edges come from.
        source: GraphSource,
        /// Warm a full incremental-BC session at load time
        /// (`DynamicBc`): `bc_full` then answers from the session and
        /// `update` batches refresh it incrementally.
        warm: bool,
    },
    /// Drop a named graph, cancelling its in-flight jobs and evicting
    /// its cache entries.
    Unload {
        /// Graph name.
        graph: String,
    },
    /// Exact BC over all sources.
    BcFull {
        /// Graph name.
        graph: String,
    },
    /// The `k` highest-BC vertices.
    BcTopK {
        /// Graph name.
        graph: String,
        /// How many vertices to return.
        k: usize,
    },
    /// The exact BC score of one vertex.
    BcVertex {
        /// Graph name.
        graph: String,
        /// The vertex.
        vertex: u32,
    },
    /// Partial BC restricted to a source subset.
    BcSubset {
        /// Graph name.
        graph: String,
        /// The sources to traverse from.
        sources: Vec<u32>,
    },
    /// Apply a batch of edge updates.
    Update {
        /// Graph name.
        graph: String,
        /// The batch, in order.
        updates: Vec<EdgeUpdate>,
    },
    /// Server, graph and cache status.
    Status,
    /// The live `turbobc-profile-v1` profile plus request counters.
    Metrics,
}

impl Request {
    /// The wire name of the request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Unload { .. } => "unload",
            Request::BcFull { .. } => "bc_full",
            Request::BcTopK { .. } => "bc_topk",
            Request::BcVertex { .. } => "bc_vertex",
            Request::BcSubset { .. } => "bc_subset",
            Request::Update { .. } => "update",
            Request::Status => "status",
            Request::Metrics => "metrics",
        }
    }

    /// Every request kind, in wire order (indexes the metrics hub's
    /// per-kind counters).
    pub const KINDS: &'static [&'static str] = &[
        "load",
        "unload",
        "bc_full",
        "bc_topk",
        "bc_vertex",
        "bc_subset",
        "update",
        "status",
        "metrics",
    ];
}

/// A request plus its client-chosen echo token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Opaque token echoed in the response, if the client sent one.
    pub id: Option<String>,
    /// The request.
    pub request: Request,
}

impl Envelope {
    /// Wraps a request with no id.
    pub fn new(request: Request) -> Self {
        Envelope { id: None, request }
    }

    /// Wraps a request with an echo token.
    pub fn with_id(id: impl Into<String>, request: Request) -> Self {
        Envelope {
            id: Some(id.into()),
            request,
        }
    }

    /// Serialises to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &self.id {
            fields.push(("id".into(), Json::Str(id.clone())));
        }
        fields.push(("kind".into(), self.request.kind().into()));
        match &self.request {
            Request::Load {
                graph,
                source,
                warm,
            } => {
                fields.push(("graph".into(), graph.clone().into()));
                match source {
                    GraphSource::Path { path, directed } => {
                        fields.push(("path".into(), path.clone().into()));
                        fields.push(("directed".into(), (*directed).into()));
                    }
                    GraphSource::Inline { n, directed, edges } => {
                        fields.push(("n".into(), (*n).into()));
                        fields.push(("directed".into(), (*directed).into()));
                        let arr = edges
                            .iter()
                            .map(|&(u, v)| Json::Arr(vec![u.into(), v.into()]))
                            .collect();
                        fields.push(("edges".into(), Json::Arr(arr)));
                    }
                    GraphSource::Family { family, scale } => {
                        fields.push(("family".into(), family.clone().into()));
                        fields.push(("scale".into(), scale.clone().into()));
                    }
                }
                if *warm {
                    fields.push(("warm".into(), true.into()));
                }
            }
            Request::Unload { graph } | Request::BcFull { graph } => {
                fields.push(("graph".into(), graph.clone().into()));
            }
            Request::BcTopK { graph, k } => {
                fields.push(("graph".into(), graph.clone().into()));
                fields.push(("k".into(), (*k).into()));
            }
            Request::BcVertex { graph, vertex } => {
                fields.push(("graph".into(), graph.clone().into()));
                fields.push(("vertex".into(), (*vertex).into()));
            }
            Request::BcSubset { graph, sources } => {
                fields.push(("graph".into(), graph.clone().into()));
                let arr = sources.iter().map(|&s| s.into()).collect();
                fields.push(("sources".into(), Json::Arr(arr)));
            }
            Request::Update { graph, updates } => {
                fields.push(("graph".into(), graph.clone().into()));
                let arr = updates
                    .iter()
                    .map(|u| {
                        let (op, (a, b)) = match u {
                            EdgeUpdate::Insert(a, b) => ("+", (*a, *b)),
                            EdgeUpdate::Delete(a, b) => ("-", (*a, *b)),
                        };
                        Json::Arr(vec![op.into(), a.into(), b.into()])
                    })
                    .collect();
                fields.push(("updates".into(), Json::Arr(arr)));
            }
            Request::Status | Request::Metrics => {}
        }
        compact(&Json::Obj(fields))
    }

    /// Parses one wire line.
    pub fn parse_line(line: &str) -> Result<Envelope, String> {
        let doc = parse(line)?;
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(Json::Num(x)) => Some(format!("{x}")),
            Some(_) => return Err("id must be a string or number".into()),
        };
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing request kind")?;
        let graph = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind}: missing \"{key}\""))
        };
        let request = match kind {
            "load" => {
                let name = graph("graph")?;
                let directed = doc.get("directed").and_then(Json::as_bool).unwrap_or(false);
                let warm = doc.get("warm").and_then(Json::as_bool).unwrap_or(false);
                let source = if let Some(path) = doc.get("path").and_then(Json::as_str) {
                    GraphSource::Path {
                        path: path.to_string(),
                        directed,
                    }
                } else if let Some(family) = doc.get("family").and_then(Json::as_str) {
                    GraphSource::Family {
                        family: family.to_string(),
                        scale: doc
                            .get("scale")
                            .and_then(Json::as_str)
                            .unwrap_or("tiny")
                            .to_string(),
                    }
                } else {
                    let n = get_usize(&doc, "load", "n")?;
                    let mut edges = Vec::new();
                    for e in doc
                        .get("edges")
                        .and_then(Json::as_arr)
                        .ok_or("load: inline source needs \"edges\"")?
                    {
                        let pair = e.as_arr().ok_or("load: edge must be [u, v]")?;
                        if pair.len() != 2 {
                            return Err("load: edge must be [u, v]".into());
                        }
                        edges.push((json_u32(&pair[0], "u")?, json_u32(&pair[1], "v")?));
                    }
                    GraphSource::Inline { n, directed, edges }
                };
                Request::Load {
                    graph: name,
                    source,
                    warm,
                }
            }
            "unload" => Request::Unload {
                graph: graph("graph")?,
            },
            "bc_full" => Request::BcFull {
                graph: graph("graph")?,
            },
            "bc_topk" => Request::BcTopK {
                graph: graph("graph")?,
                k: get_usize(&doc, "bc_topk", "k")?,
            },
            "bc_vertex" => Request::BcVertex {
                graph: graph("graph")?,
                vertex: doc
                    .get("vertex")
                    .map(|v| json_u32(v, "vertex"))
                    .transpose()?
                    .ok_or("bc_vertex: missing \"vertex\"")?,
            },
            "bc_subset" => {
                let mut sources = Vec::new();
                for s in doc
                    .get("sources")
                    .and_then(Json::as_arr)
                    .ok_or("bc_subset: missing \"sources\"")?
                {
                    sources.push(json_u32(s, "source")?);
                }
                Request::BcSubset {
                    graph: graph("graph")?,
                    sources,
                }
            }
            "update" => {
                let mut updates = Vec::new();
                for u in doc
                    .get("updates")
                    .and_then(Json::as_arr)
                    .ok_or("update: missing \"updates\"")?
                {
                    let triple = u.as_arr().ok_or("update: entry must be [op, u, v]")?;
                    if triple.len() != 3 {
                        return Err("update: entry must be [op, u, v]".into());
                    }
                    let a = json_u32(&triple[1], "u")?;
                    let b = json_u32(&triple[2], "v")?;
                    updates.push(match triple[0].as_str() {
                        Some("+") | Some("insert") => EdgeUpdate::Insert(a, b),
                        Some("-") | Some("delete") => EdgeUpdate::Delete(a, b),
                        _ => return Err("update: op must be \"+\"/\"-\"".into()),
                    });
                }
                Request::Update {
                    graph: graph("graph")?,
                    updates,
                }
            }
            "status" => Request::Status,
            "metrics" => Request::Metrics,
            other => return Err(format!("unknown request kind {other:?}")),
        };
        Ok(Envelope { id, request })
    }
}

fn get_usize(doc: &Json, kind: &str, key: &str) -> Result<usize, String> {
    let x = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{kind}: missing \"{key}\""))?;
    if x < 0.0 || x != x.trunc() {
        return Err(format!("{kind}: \"{key}\" must be a non-negative integer"));
    }
    Ok(x as usize)
}

fn json_u32(v: &Json, what: &str) -> Result<u32, String> {
    match v.as_f64() {
        Some(x) if x >= 0.0 && x == x.trunc() && x <= u32::MAX as f64 => Ok(x as u32),
        _ => Err(format!("{what} must be a u32")),
    }
}

/// Builds an `ok: true` response line from payload fields.
pub fn ok_line(id: Option<&str>, payload: Vec<(String, Json)>) -> String {
    let mut fields: Vec<(String, Json)> = Vec::new();
    if let Some(id) = id {
        fields.push(("id".into(), id.into()));
    }
    fields.push(("ok".into(), true.into()));
    fields.extend(payload);
    compact(&Json::Obj(fields))
}

/// Builds an `ok: false` response line carrying an error message.
pub fn err_line(id: Option<&str>, error: &str) -> String {
    let mut fields: Vec<(String, Json)> = Vec::new();
    if let Some(id) = id {
        fields.push(("id".into(), id.into()));
    }
    fields.push(("ok".into(), false.into()));
    fields.push(("error".into(), error.into()));
    compact(&Json::Obj(fields))
}

/// A 64-bit fingerprint as the wire's fixed-width hex string (JSON
/// numbers are doubles and cannot carry 64 bits losslessly).
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// One-line JSON writer: the same dialect `Json::pretty` writes (same
/// escaping, same number formatting), minus the layout — the transport
/// frames messages by newline, so a message must not contain one.
pub fn compact(json: &Json) -> String {
    let mut out = String::new();
    write_compact(json, &mut out);
    out
}

fn write_compact(json: &Json, out: &mut String) {
    use std::fmt::Write as _;
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => {
            if !x.is_finite() {
                out.push_str("null");
            } else if *x == x.trunc() && x.abs() < 9e15 {
                let _ = write!(out, "{}", *x as i64);
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Json::Str(s) => write_compact_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact_str(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_compact_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_kind() {
        let envelopes = vec![
            Envelope::with_id(
                "q1",
                Request::Load {
                    graph: "g".into(),
                    source: GraphSource::Inline {
                        n: 5,
                        directed: false,
                        edges: vec![(0, 1), (1, 2)],
                    },
                    warm: true,
                },
            ),
            Envelope::new(Request::Load {
                graph: "g2".into(),
                source: GraphSource::Path {
                    path: "/tmp/a.mtx".into(),
                    directed: true,
                },
                warm: false,
            }),
            Envelope::new(Request::Load {
                graph: "g3".into(),
                source: GraphSource::Family {
                    family: "smallworld".into(),
                    scale: "tiny".into(),
                },
                warm: false,
            }),
            Envelope::new(Request::Unload { graph: "g".into() }),
            Envelope::with_id("7", Request::BcFull { graph: "g".into() }),
            Envelope::new(Request::BcTopK {
                graph: "g".into(),
                k: 10,
            }),
            Envelope::new(Request::BcVertex {
                graph: "g".into(),
                vertex: 3,
            }),
            Envelope::new(Request::BcSubset {
                graph: "g".into(),
                sources: vec![0, 2, 4],
            }),
            Envelope::new(Request::Update {
                graph: "g".into(),
                updates: vec![EdgeUpdate::Insert(0, 3), EdgeUpdate::Delete(1, 2)],
            }),
            Envelope::new(Request::Status),
            Envelope::new(Request::Metrics),
        ];
        for env in envelopes {
            let line = env.to_line();
            assert!(!line.contains('\n'), "wire lines must be newline-free");
            let back = Envelope::parse_line(&line).unwrap();
            assert_eq!(back, env, "round trip through {line}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"kind":"warp"}"#,
            r#"{"kind":"bc_topk","graph":"g"}"#,
            r#"{"kind":"bc_topk","graph":"g","k":-1}"#,
            r#"{"kind":"bc_vertex","graph":"g","vertex":1.5}"#,
            r#"{"kind":"update","graph":"g","updates":[["*",0,1]]}"#,
            r#"{"kind":"load","graph":"g","n":3}"#,
        ] {
            assert!(Envelope::parse_line(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn response_lines_carry_id_and_ok() {
        let ok = ok_line(Some("a"), vec![("x".into(), 3u32.into())]);
        assert_eq!(ok, r#"{"id":"a","ok":true,"x":3}"#);
        let err = err_line(None, "no such graph");
        assert_eq!(err, r#"{"ok":false,"error":"no such graph"}"#);
        let doc = parse(&ok).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn fingerprints_travel_as_fixed_width_hex() {
        assert_eq!(fingerprint_hex(0xe35b_f4a5_db16_90ab), "e35bf4a5db1690ab");
        assert_eq!(fingerprint_hex(7), "0000000000000007");
    }

    #[test]
    fn compact_matches_pretty_semantics() {
        let doc = Json::Obj(vec![
            ("s".into(), "a\"b\\c\nd".into()),
            ("xs".into(), Json::Arr(vec![1u32.into(), Json::Null])),
            ("f".into(), 0.5f64.into()),
        ]);
        let line = compact(&doc);
        let reparsed = parse(&line).unwrap();
        let repretty = parse(&doc.pretty()).unwrap();
        assert_eq!(compact(&reparsed), compact(&repretty));
    }
}

//! **BC-as-a-service**: a long-running TCP query server over the
//! TurboBC solver stack.
//!
//! The paper's engines answer one run at a time; this crate puts a
//! service in front of them for the "many queries, evolving graphs"
//! regime:
//!
//! * [`protocol`] — a line-delimited JSON wire protocol (request kinds
//!   `load`/`unload`/`bc_full`/`bc_topk`/`bc_vertex`/`bc_subset`/
//!   `update`/`status`/`metrics`) over the workspace's hand-rolled
//!   JSON dialect; no serialization dependency.
//! * [`scheduler`] — queries decompose into the batched engine's
//!   source blocks and shard across a hand-rolled worker pool; each
//!   shard runs through [`turbobc::BcSolver::plan`]/`execute`, so
//!   cost-model dispatch picks every shard's executor. Long jobs are
//!   cancellable and preemptible via the checkpoint layer.
//! * [`cache`] — finished responses are cached under
//!   `(graph fingerprint, options fingerprint)` with LRU eviction
//!   under a byte budget; `update` batches invalidate exactly the
//!   touched graph's entries (and a warm [`turbobc::DynamicBc`]
//!   session re-primes `bc_full` incrementally).
//! * [`metrics`] — everything the server does folds into a live
//!   [`turbobc::observe::RunProfile`], streamed by the `metrics`
//!   request as `turbobc-profile-v1` JSON.
//!
//! # Quick start
//!
//! ```
//! use turbobc_serve::{Client, GraphSource, Request, ServeConfig, Server};
//!
//! let handle = Server::bind(ServeConfig::default())?.spawn()?;
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client
//!     .request(Request::Load {
//!         graph: "path".into(),
//!         source: GraphSource::Inline {
//!             n: 5,
//!             directed: false,
//!             edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
//!         },
//!         warm: false,
//!     })
//!     .unwrap();
//! let reply = client.request(Request::BcTopK { graph: "path".into(), k: 1 }).unwrap();
//! let top = reply.get("top").and_then(|t| t.as_arr()).unwrap();
//! assert_eq!(top[0].as_arr().unwrap()[0].as_f64(), Some(2.0));
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::{options_fingerprint, CacheStats, ResultCache};
pub use client::Client;
pub use metrics::MetricsHub;
pub use protocol::{Envelope, GraphSource, Request};
pub use scheduler::{CheckpointSpec, Job, JobOutput, Scheduler};
pub use server::{ServeConfig, Server, ServerHandle};

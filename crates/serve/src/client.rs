//! A minimal blocking client for the line-delimited protocol: one
//! request line out, one response line back, in order. Used by the
//! `turbobc query` CLI, the benches and the smoke tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use turbobc::observe::json::{parse, Json};

use crate::protocol::{Envelope, Request};

/// One connection to a serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn round_trip_line(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut response = String::new();
        let read = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if read == 0 {
            return Err("server closed the connection".into());
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends an envelope and parses the response document.
    pub fn send(&mut self, envelope: &Envelope) -> Result<Json, String> {
        let response = self.round_trip_line(&envelope.to_line())?;
        parse(&response)
    }

    /// Sends a request (no id) and returns the response payload if the
    /// server answered `ok: true`, the error message otherwise.
    pub fn request(&mut self, request: Request) -> Result<Json, String> {
        let doc = self.send(&Envelope::new(request))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            _ => Err(doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("malformed response")
                .to_string()),
        }
    }
}

//! The job scheduler: a hand-rolled worker pool sharding BC queries
//! into the batched engine's source blocks.
//!
//! A query becomes one [`Job`]: its source list cut into width-`b`
//! blocks (`b` = [`turbobc::BcSolver::resolve_batch_width`], 64 for
//! block-sized source sets), each block one [`Shard`] on the shared
//! queue. Workers pop shards and run them through
//! [`turbobc::BcSolver::plan`] / `execute`, so the dispatch layer
//! picks each shard's executor independently — one job can run batched
//! shards next to sequential ones. Per-block BC contributions sum to
//! the whole (the same per-block decomposition the incremental engine
//! caches), folded in block order so a job's result is deterministic
//! for a given width.
//!
//! Long jobs are preemptible through the checkpoint layer: a job built
//! with a [`CheckpointSpec`] persists its completed *prefix* of blocks
//! every `every_blocks` completions (via [`turbobc::checkpoint`]'s
//! atomic save), and [`Job::cancel`] — unload, shutdown, or an error
//! on a sibling shard — snapshots the prefix one last time before the
//! waiters are released. A resubmitted job with the same spec resumes
//! past the snapshotted blocks instead of starting over.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use turbobc::{checkpoint, BcSolver};

/// Where and how often a job persists its completed block prefix.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Snapshot file (atomic `.tmp` + rename, one file per job key).
    pub path: PathBuf,
    /// The job fingerprint snapshots are keyed by — a stale file from
    /// another graph or query never resumes.
    pub fp: u64,
    /// Snapshot cadence, in completed-prefix blocks.
    pub every_blocks: usize,
}

/// What one executed shard reports back for observability.
#[derive(Debug, Clone)]
pub struct ShardTrace {
    /// First source of the block.
    pub first_source: u32,
    /// Sources in the block.
    pub len: usize,
    /// Executor names the plan assigned (usually one).
    pub executors: Vec<String>,
    /// The plan's rationale for the first segment.
    pub reason: String,
    /// Shard wall-clock seconds.
    pub t_s: f64,
}

/// A finished job's result.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The folded BC vector (resumed prefix + executed blocks, in
    /// block order).
    pub bc: Vec<f64>,
    /// Blocks the job was decomposed into.
    pub blocks_total: usize,
    /// Blocks actually executed this run.
    pub blocks_executed: usize,
    /// Blocks restored from a checkpoint snapshot.
    pub blocks_resumed: usize,
    /// Per-shard traces, in completion order.
    pub shards: Vec<ShardTrace>,
    /// Job wall-clock seconds (submit → last block).
    pub elapsed_s: f64,
}

struct JobState {
    partials: Vec<Option<Vec<f64>>>,
    settled: usize,
    shards: Vec<ShardTrace>,
    error: Option<String>,
    saved_prefix: usize,
}

/// One query's worth of sharded work. Built with [`Job::new`],
/// submitted with [`Scheduler::submit`], awaited with [`Job::wait`].
pub struct Job {
    solver: Arc<BcSolver>,
    sources: Vec<u32>,
    blocks: Vec<(usize, usize)>,
    resume_blocks: usize,
    resume_bc: Option<Vec<f64>>,
    checkpoint: Option<CheckpointSpec>,
    state: Mutex<JobState>,
    done: Condvar,
    cancelled: AtomicBool,
    started: Instant,
}

impl Job {
    /// Decomposes `sources` into batch-width blocks over `solver`.
    /// With a [`CheckpointSpec`], a matching snapshot on disk resumes
    /// the job past its already-completed prefix.
    pub fn new(solver: Arc<BcSolver>, sources: Vec<u32>, spec: Option<CheckpointSpec>) -> Arc<Job> {
        let width = solver.resolve_batch_width(sources.len().max(1));
        let mut blocks = Vec::new();
        let mut first = 0;
        while first < sources.len() {
            let len = width.min(sources.len() - first);
            blocks.push((first, len));
            first += len;
        }
        let mut resume_blocks = 0;
        let mut resume_bc = None;
        if let Some(spec) = &spec {
            if let Ok(Some(snap)) = checkpoint::load(&spec.path, spec.fp, solver.n()) {
                while resume_blocks < blocks.len() {
                    let (start, len) = blocks[resume_blocks];
                    if start + len > snap.done {
                        break;
                    }
                    resume_blocks += 1;
                }
                if resume_blocks > 0 {
                    resume_bc = Some(snap.bc);
                }
            }
        }
        let n_blocks = blocks.len();
        Arc::new(Job {
            solver,
            sources,
            blocks,
            resume_blocks,
            resume_bc,
            checkpoint: spec,
            state: Mutex::new(JobState {
                partials: vec![None; n_blocks],
                settled: 0,
                shards: Vec::new(),
                error: None,
                saved_prefix: 0,
            }),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    /// Blocks this run still has to execute (total minus resumed).
    pub fn pending_blocks(&self) -> usize {
        self.blocks.len() - self.resume_blocks
    }

    /// Blocks restored from a checkpoint snapshot.
    pub fn resumed_blocks(&self) -> usize {
        self.resume_blocks
    }

    /// Cancels the job: remaining shards become no-ops, waiters are
    /// released with an error, and — the preemption half — the
    /// completed prefix is snapshotted so a resubmission resumes.
    pub fn cancel(&self) {
        if self.cancelled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut state = self.state.lock().expect("job state");
        self.save_prefix(&mut state, 0);
        self.done.notify_all();
    }

    /// Whether [`Job::cancel`] ran.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Waits for every shard to settle and folds the result. Errors on
    /// cancellation or the first failed shard.
    pub fn wait(&self) -> Result<JobOutput, String> {
        let pending = self.pending_blocks();
        let mut state = self.state.lock().expect("job state");
        loop {
            if let Some(err) = &state.error {
                return Err(err.clone());
            }
            if self.is_cancelled() {
                return Err("job cancelled".into());
            }
            if state.settled >= pending {
                break;
            }
            state = self.done.wait(state).expect("job state");
        }
        let n = self.solver.n();
        let mut bc = match &self.resume_bc {
            Some(prefix) => prefix.clone(),
            None => vec![0.0; n],
        };
        for partial in state.partials[self.resume_blocks..].iter().flatten() {
            for (acc, x) in bc.iter_mut().zip(partial) {
                *acc += x;
            }
        }
        Ok(JobOutput {
            bc,
            blocks_total: self.blocks.len(),
            blocks_executed: pending,
            blocks_resumed: self.resume_blocks,
            shards: state.shards.clone(),
            elapsed_s: self.started.elapsed().as_secs_f64(),
        })
    }

    /// Runs one shard: plan + execute the block, fold the partial,
    /// checkpoint the grown prefix if the spec's cadence is due.
    fn run_shard(&self, block: usize) {
        if self.is_cancelled() {
            let mut state = self.state.lock().expect("job state");
            state.settled += 1;
            self.done.notify_all();
            return;
        }
        let (start, len) = self.blocks[block];
        let shard_sources = &self.sources[start..start + len];
        let t0 = Instant::now();
        let ran = self
            .solver
            .plan(shard_sources)
            .and_then(|plan| {
                let trace = ShardTrace {
                    first_source: shard_sources.first().copied().unwrap_or(0),
                    len,
                    executors: plan
                        .segments()
                        .iter()
                        .map(|s| s.executor.name().to_string())
                        .collect(),
                    reason: plan
                        .segments()
                        .first()
                        .map(|s| s.rationale.clone())
                        .unwrap_or_default(),
                    t_s: 0.0,
                };
                self.solver.execute(&plan).map(|exec| (exec, trace))
            })
            .map_err(|e| e.to_string())
            .and_then(|(exec, trace)| {
                exec.into_bc()
                    .map(|r| (r.bc, trace))
                    .ok_or_else(|| "plan produced no BC result".to_string())
            });
        let mut state = self.state.lock().expect("job state");
        state.settled += 1;
        match ran {
            Ok((bc, mut trace)) => {
                trace.t_s = t0.elapsed().as_secs_f64();
                state.partials[block] = Some(bc);
                state.shards.push(trace);
                if let Some(spec) = &self.checkpoint {
                    let every = spec.every_blocks.max(1);
                    self.save_prefix(&mut state, every);
                }
            }
            Err(err) => {
                if state.error.is_none() {
                    state.error = Some(err);
                }
                self.cancelled.store(true, Ordering::SeqCst);
            }
        }
        self.done.notify_all();
    }

    /// Persists the completed block prefix if it grew by at least
    /// `min_growth` blocks since the last snapshot (0 forces a save of
    /// any non-empty prefix — the cancellation path).
    fn save_prefix(&self, state: &mut JobState, min_growth: usize) {
        let Some(spec) = &self.checkpoint else {
            return;
        };
        let mut prefix = self.resume_blocks;
        while prefix < self.blocks.len() && state.partials[prefix].is_some() {
            prefix += 1;
        }
        if prefix == self.resume_blocks || prefix - state.saved_prefix < min_growth.max(1) {
            // An empty prefix is never worth a file; growth below the
            // cadence isn't either, except that cancellation (growth
            // floor 0 → 1) still wants the latest completed block.
            if !(min_growth == 0 && prefix > self.resume_blocks && prefix > state.saved_prefix) {
                return;
            }
        }
        if prefix >= self.blocks.len() {
            return; // finished jobs answer from the cache, not a file
        }
        let n = self.solver.n();
        let mut bc = match &self.resume_bc {
            Some(base) => base.clone(),
            None => vec![0.0; n],
        };
        for partial in state.partials[self.resume_blocks..prefix].iter().flatten() {
            for (acc, x) in bc.iter_mut().zip(partial) {
                *acc += x;
            }
        }
        let (start, len) = self.blocks[prefix - 1];
        let done_sources = start + len;
        if checkpoint::save(&spec.path, spec.fp, done_sources, &bc).is_ok() {
            state.saved_prefix = prefix;
        }
    }
}

struct Shard {
    job: Arc<Job>,
    block: usize,
}

struct PoolShared {
    queue: Mutex<VecDeque<Shard>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// The worker pool: `workers` threads draining a shared shard queue.
pub struct Scheduler {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` (at least 1) pool threads.
    pub fn new(workers: usize) -> Scheduler {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("turbobc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Scheduler { shared, workers }
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues every pending shard of `job`. Returns immediately;
    /// await the result with [`Job::wait`].
    pub fn submit(&self, job: &Arc<Job>) {
        let mut queue = self.shared.queue.lock().expect("shard queue");
        for block in job.resume_blocks..job.blocks.len() {
            queue.push_back(Shard {
                job: job.clone(),
                block,
            });
        }
        drop(queue);
        self.shared.available.notify_all();
    }

    /// Convenience: submit and wait.
    pub fn run(&self, job: &Arc<Job>) -> Result<JobOutput, String> {
        if job.pending_blocks() == 0 {
            return job.wait();
        }
        self.submit(job);
        job.wait()
    }

    /// Queue depth right now (shards not yet picked up).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("shard queue").len()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut queue = self.shared.queue.lock().expect("shard queue");
            for shard in queue.drain(..) {
                shard.job.cancel();
            }
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let shard = {
            let mut queue = shared.queue.lock().expect("shard queue");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(shard) = queue.pop_front() {
                    break shard;
                }
                queue = shared.available.wait(queue).expect("shard queue");
            }
        };
        shard.job.run_shard(shard.block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbobc::{BcOptions, BcSolver};
    use turbobc_graph::Graph;

    fn ring(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        Graph::from_edges(n as usize, false, &edges)
    }

    fn solver(g: &Graph) -> Arc<BcSolver> {
        Arc::new(BcSolver::new(g, BcOptions::builder().build()).unwrap())
    }

    #[test]
    fn sharded_job_matches_single_threaded_exact_bc() {
        let g = ring(200);
        let s = solver(&g);
        let reference = s.bc_exact().unwrap();
        let pool = Scheduler::new(4);
        let sources: Vec<u32> = (0..200).collect();
        let job = Job::new(s.clone(), sources, None);
        assert!(job.pending_blocks() > 1, "must actually shard");
        let out = pool.run(&job).unwrap();
        for (a, b) in out.bc.iter().zip(&reference.bc) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert_eq!(out.blocks_executed, out.blocks_total);
        assert!(!out.shards.is_empty());
        assert!(out.shards.iter().all(|t| !t.executors.is_empty()));
    }

    #[test]
    fn empty_source_list_returns_zeros_without_touching_the_pool() {
        let g = ring(8);
        let s = solver(&g);
        let pool = Scheduler::new(1);
        let job = Job::new(s, Vec::new(), None);
        let out = pool.run(&job).unwrap();
        assert_eq!(out.bc, vec![0.0; 8]);
        assert_eq!(out.blocks_total, 0);
    }

    #[test]
    fn cancellation_snapshots_the_prefix_and_resume_skips_it() {
        let g = ring(256);
        let s = solver(&g);
        let dir = std::env::temp_dir().join("turbobc_serve_sched_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CheckpointSpec {
            path: dir.join("cancel_resume.ckpt"),
            fp: 0xfeed,
            every_blocks: 1,
        };
        let _ = std::fs::remove_file(&spec.path);

        // Run the job to completion on a pool, but cancel after the
        // first blocks land: the prefix must hit disk.
        let pool = Scheduler::new(2);
        let sources: Vec<u32> = (0..256).collect();
        let job = Job::new(s.clone(), sources.clone(), Some(spec.clone()));
        pool.submit(&job);
        // Wait until at least one shard settled, then cancel.
        loop {
            {
                let state = job.state.lock().unwrap();
                if state.partials.iter().any(Option::is_some) {
                    break;
                }
            }
            std::thread::yield_now();
        }
        job.cancel();
        assert!(job.wait().is_err(), "cancelled jobs error out");

        // A snapshot may or may not exist depending on whether block 0
        // finished first; force determinism by re-running with a
        // 1-block cadence to completion minus cancellation.
        let job2 = Job::new(s.clone(), sources.clone(), Some(spec.clone()));
        if job2.resumed_blocks() == 0 {
            // No usable prefix was persisted (out-of-order completion);
            // complete a fresh run far enough to persist one.
            pool.submit(&job2);
            loop {
                {
                    let state = job2.state.lock().unwrap();
                    if state.saved_prefix > 0 {
                        break;
                    }
                    if state.settled >= job2.pending_blocks() {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            job2.cancel();
            let _ = job2.wait();
        } else {
            job2.cancel();
        }

        let job3 = Job::new(s.clone(), sources, Some(spec));
        assert!(job3.resumed_blocks() > 0, "resume skips the prefix");
        let out = pool.run(&job3).unwrap();
        assert_eq!(out.blocks_resumed, job3.resumed_blocks());
        let reference = s.bc_exact().unwrap();
        for (a, b) in out.bc.iter().zip(&reference.bc) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn stale_fingerprints_do_not_resume() {
        let g = ring(256);
        let s = solver(&g);
        let dir = std::env::temp_dir().join("turbobc_serve_sched_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale_fp.ckpt");
        turbobc::checkpoint::save(&path, 0xaaaa, 64, &vec![0.0; 256]).unwrap();
        let job = Job::new(
            s,
            (0..256).collect(),
            Some(CheckpointSpec {
                path,
                fp: 0xbbbb,
                every_blocks: 2,
            }),
        );
        assert_eq!(job.resumed_blocks(), 0);
    }
}

//! The fingerprint-keyed result cache.
//!
//! Entries are finished response payloads keyed by
//! `(graph fingerprint, options fingerprint)`: the graph half is
//! [`turbobc::graph_fingerprint`] (content-based, so two loads of the
//! same topology share entries and an update batch re-keys exactly the
//! touched graph), the options half is an FNV-1a digest of the query
//! kind and its parameters. Eviction is LRU under a byte budget;
//! invalidation removes every entry of one graph fingerprint.

use std::collections::HashMap;

use turbobc::observe::json::Json;

/// FNV-1a over a word list — the same digest
/// `turbobc::dynamic` keys its caches with.
pub fn fnv(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in words {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Digest of a query's kind + parameters: the options half of a cache
/// key. Kind tags keep distinct query shapes from colliding even when
/// their parameter words agree.
pub fn options_fingerprint(kind: &str, params: &[u64]) -> u64 {
    let mut words: Vec<u64> = kind.bytes().map(u64::from).collect();
    words.push(0xff); // kind/params separator
    words.extend_from_slice(params);
    fnv(&words)
}

/// A cached response payload: the `ok_line` fields minus the
/// transport envelope, shared so replays are allocation-free.
pub type CachedFields = std::sync::Arc<Vec<(String, Json)>>;

struct Entry {
    graph_fp: u64,
    fields: CachedFields,
    bytes: u64,
    last_used: u64,
}

/// Aggregate cache counters, snapshot for `status`/`metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by LRU pressure.
    pub evictions: u64,
    /// Entries dropped by update/unload invalidation.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
    /// Live payload bytes (estimated serialized size).
    pub bytes: u64,
    /// The byte budget.
    pub budget: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU result cache keyed by `(graph_fp, options_fp)` under a byte
/// budget.
pub struct ResultCache {
    map: HashMap<(u64, u64), Entry>,
    budget: u64,
    bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl ResultCache {
    /// An empty cache with the given payload byte budget.
    pub fn new(budget_bytes: u64) -> Self {
        ResultCache {
            map: HashMap::new(),
            budget: budget_bytes,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks up a key, bumping its recency on hit. Counts the lookup
    /// either way.
    pub fn get(&mut self, graph_fp: u64, options_fp: u64) -> Option<CachedFields> {
        self.tick += 1;
        match self.map.get_mut(&(graph_fp, options_fp)) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.fields.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until the budget holds again. A payload bigger than the
    /// whole budget is not admitted at all — caching it would just
    /// evict everything else and then itself on the next insert.
    pub fn insert(&mut self, graph_fp: u64, options_fp: u64, fields: CachedFields) {
        let bytes = fields
            .iter()
            .map(|(k, v)| k.len() as u64 + approx_bytes(v))
            .sum::<u64>();
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            (graph_fp, options_fp),
            Entry {
                graph_fp,
                fields,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        while self.bytes > self.budget {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(key) => {
                    let evicted = self.map.remove(&key).expect("victim came from the map");
                    self.bytes -= evicted.bytes;
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Drops every entry of one graph fingerprint (an update batch or
    /// unload re-keyed/retired that content). Returns how many went.
    pub fn invalidate_graph(&mut self, graph_fp: u64) -> usize {
        let before = self.map.len();
        let mut freed = 0;
        self.map.retain(|_, e| {
            if e.graph_fp == graph_fp {
                freed += e.bytes;
                false
            } else {
                true
            }
        });
        self.bytes -= freed;
        let dropped = before - self.map.len();
        self.invalidations += dropped as u64;
        dropped
    }

    /// The live counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.map.len(),
            bytes: self.bytes,
            budget: self.budget,
        }
    }
}

/// Serialized-size estimate of one JSON payload value, without
/// serializing: numbers count as their decimal width (bounded by 24),
/// strings as their escaped length, containers as their punctuation
/// plus contents.
fn approx_bytes(v: &Json) -> u64 {
    match v {
        Json::Null => 4,
        Json::Bool(_) => 5,
        Json::Num(_) => 24,
        Json::Str(s) => s.len() as u64 + 2,
        Json::Arr(items) => 2 + items.iter().map(approx_bytes).sum::<u64>() + items.len() as u64,
        Json::Obj(fields) => {
            2 + fields
                .iter()
                .map(|(k, v)| k.len() as u64 + 4 + approx_bytes(v))
                .sum::<u64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn payload(tag: u32, floats: usize) -> CachedFields {
        Arc::new(vec![
            ("tag".into(), tag.into()),
            (
                "bc".into(),
                Json::Arr((0..floats).map(|i| (i as f64 * 0.5).into()).collect()),
            ),
        ])
    }

    #[test]
    fn hit_returns_the_stored_payload_and_counts() {
        let mut cache = ResultCache::new(1 << 20);
        assert!(cache.get(1, 2).is_none());
        cache.insert(1, 2, payload(7, 4));
        let hit = cache.get(1, 2).expect("second lookup hits");
        assert_eq!(hit[0].1.as_f64(), Some(7.0));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_under_a_byte_budget() {
        // Each payload estimates to 131 bytes; the budget fits two.
        let mut cache = ResultCache::new(280);
        cache.insert(1, 1, payload(1, 4));
        cache.insert(1, 2, payload(2, 4));
        assert_eq!(cache.stats().entries, 2);
        cache.get(1, 1); // warm the older entry: (1, 2) is now coldest
        cache.insert(1, 3, payload(3, 4));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(1, 1).is_some(), "recently-used entry survives");
        assert!(cache.get(1, 2).is_none(), "coldest entry was evicted");
        assert!(cache.get(1, 3).is_some());
        assert!(stats.bytes <= stats.budget);
    }

    #[test]
    fn oversized_payloads_are_not_admitted() {
        let mut cache = ResultCache::new(64);
        cache.insert(1, 1, payload(1, 100));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn invalidation_removes_exactly_one_graphs_entries() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(10, 1, payload(1, 2));
        cache.insert(10, 2, payload(2, 2));
        cache.insert(20, 1, payload(3, 2));
        assert_eq!(cache.invalidate_graph(10), 2);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.invalidations, 2);
        assert!(cache.get(20, 1).is_some(), "other graph is untouched");
        assert!(cache.get(10, 1).is_none());
    }

    #[test]
    fn options_fingerprint_separates_kinds_and_params() {
        let full = options_fingerprint("bc_full", &[]);
        let topk_5 = options_fingerprint("bc_topk", &[5]);
        let topk_6 = options_fingerprint("bc_topk", &[6]);
        let vertex_5 = options_fingerprint("bc_vertex", &[5]);
        assert_ne!(full, topk_5);
        assert_ne!(topk_5, topk_6);
        assert_ne!(topk_5, vertex_5, "kind tag must separate same params");
    }

    #[test]
    fn replacing_an_entry_keeps_byte_accounting_consistent() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(1, 1, payload(1, 100));
        let first = cache.stats().bytes;
        cache.insert(1, 1, payload(1, 2));
        assert!(cache.stats().bytes < first);
        assert_eq!(cache.stats().entries, 1);
    }
}

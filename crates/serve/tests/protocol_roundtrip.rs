//! Property tests: every wire envelope survives encode → parse, and
//! the parser never panics on hostile input.

use proptest::prelude::*;
use turbobc::EdgeUpdate;
use turbobc_serve::protocol::{compact, Envelope, GraphSource, Request};

/// Graph names mixing identifiers with everything the escaper has to
/// handle: quotes, backslashes, control bytes, non-ASCII.
fn arb_name() -> impl Strategy<Value = String> {
    (any::<prop::sample::Index>(), 0u32..1000).prop_map(|(pick, salt)| {
        const AWKWARD: &[&str] = &[
            "g",
            "road-usa",
            "with space",
            "quo\"te",
            "back\\slash",
            "tab\there",
            "line\nbreak",
            "unicode-héllo-✓",
            "",
        ];
        format!("{}{salt}", AWKWARD[pick.index(AWKWARD.len())])
    })
}

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..64, 0u32..64), 0..12)
}

fn arb_source() -> impl Strategy<Value = GraphSource> {
    (0u8..3, arb_name(), any::<bool>(), 1usize..100, arb_edges()).prop_map(
        |(kind, text, directed, n, edges)| match kind {
            0 => GraphSource::Path {
                path: format!("/tmp/{text}.mtx"),
                directed,
            },
            1 => GraphSource::Inline { n, directed, edges },
            _ => GraphSource::Family {
                family: text,
                scale: if directed { "tiny" } else { "small" }.to_string(),
            },
        },
    )
}

fn arb_updates() -> impl Strategy<Value = Vec<EdgeUpdate>> {
    proptest::collection::vec(
        (any::<bool>(), 0u32..1000, 0u32..1000).prop_map(|(ins, u, v)| {
            if ins {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Delete(u, v)
            }
        }),
        0..16,
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0u8..9, arb_name(), arb_source(), any::<bool>()),
        (
            0usize..10_000,
            0u32..100_000,
            proptest::collection::vec(0u32..100_000, 0..32),
            arb_updates(),
        ),
    )
        .prop_map(
            |((kind, graph, source, warm), (k, vertex, sources, updates))| match kind {
                0 => Request::Load {
                    graph,
                    source,
                    warm,
                },
                1 => Request::Unload { graph },
                2 => Request::BcFull { graph },
                3 => Request::BcTopK { graph, k },
                4 => Request::BcVertex { graph, vertex },
                5 => Request::BcSubset { graph, sources },
                6 => Request::Update { graph, updates },
                7 => Request::Status,
                _ => Request::Metrics,
            },
        )
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (arb_request(), any::<bool>(), arb_name()).prop_map(|(request, with_id, id)| {
        if with_id {
            Envelope::with_id(id, request)
        } else {
            Envelope::new(request)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → parse is the identity on every request kind, id shape,
    /// and string content the escaper supports.
    #[test]
    fn envelope_round_trips(env in arb_envelope()) {
        let line = env.to_line();
        prop_assert!(!line.contains('\n'), "line framing: {line:?}");
        let back = Envelope::parse_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        prop_assert_eq!(back, env);
    }

    /// The parser returns Err (never panics) on arbitrary noise.
    #[test]
    fn parser_survives_noise(bytes in proptest::collection::vec(0u8..128, 0..64)) {
        let noise: String = bytes.into_iter().map(|b| b as char).collect();
        let _ = Envelope::parse_line(&noise);
    }

    /// Compact output re-parses to a document whose compact form is a
    /// fixed point (serialisation is canonical for parsed values).
    #[test]
    fn compact_is_a_fixed_point(env in arb_envelope()) {
        let line = env.to_line();
        let doc = turbobc::observe::json::parse(&line).unwrap();
        prop_assert_eq!(compact(&doc), line);
    }
}

//! BFS written against the mini-Ligra framework (the paper's §2 BFS
//! stage, Ligra-style).

use crate::edge_map::{edge_map, EdgeOp, LigraGraph};
use crate::frontier::Frontier;
use std::sync::atomic::{AtomicI64, Ordering};
use turbobc_graph::{Graph, VertexId};

struct BfsOp<'a> {
    parent: &'a [AtomicI64],
}

impl EdgeOp for BfsOp<'_> {
    fn update_atomic(&self, u: VertexId, v: VertexId) -> bool {
        self.parent[v as usize]
            .compare_exchange(-1, u as i64, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
    fn update(&self, u: VertexId, v: VertexId) -> bool {
        // Pull mode: single owner of `v`, plain read-check-write.
        if self.parent[v as usize].load(Ordering::Relaxed) == -1 {
            self.parent[v as usize].store(u as i64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
    fn cond(&self, v: VertexId) -> bool {
        self.parent[v as usize].load(Ordering::Relaxed) == -1
    }
}

/// Ligra-style BFS: returns the parent of each vertex (`-1` = unreached;
/// the source is its own parent) and the number of levels.
pub fn bfs(graph: &Graph, source: VertexId) -> (Vec<i64>, usize) {
    let lg = LigraGraph::new(graph);
    let parent: Vec<AtomicI64> = (0..graph.n()).map(|_| AtomicI64::new(-1)).collect();
    if graph.n() == 0 {
        return (Vec::new(), 0);
    }
    parent[source as usize].store(source as i64, Ordering::Relaxed);
    let op = BfsOp { parent: &parent };
    let mut frontier = Frontier::single(source);
    let mut levels = 1;
    loop {
        frontier = edge_map(&lg, &frontier, &op);
        if frontier.is_empty() {
            break;
        }
        levels += 1;
    }
    (parent.into_iter().map(|a| a.into_inner()).collect(), levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_levels_match_reference() {
        let g = turbobc_graph::gen::grid2d(7, 9);
        let (parent, levels) = bfs(&g, 0);
        let reference = turbobc_graph::bfs(&g, 0);
        assert_eq!(levels as u32, reference.height);
        // Every reached vertex has a parent one level shallower.
        for v in 0..g.n() {
            if v == 0 {
                assert_eq!(parent[v], 0);
            } else if reference.depths[v] != 0 {
                let p = parent[v] as usize;
                assert_eq!(reference.depths[p] + 1, reference.depths[v], "vertex {v}");
            } else {
                assert_eq!(parent[v], -1);
            }
        }
    }

    #[test]
    fn unreachable_vertices_have_no_parent() {
        let g = Graph::from_edges(4, true, &[(0, 1), (2, 3)]);
        let (parent, _) = bfs(&g, 0);
        assert_eq!(parent[2], -1);
        assert_eq!(parent[3], -1);
        assert_ne!(parent[1], -1);
    }
}

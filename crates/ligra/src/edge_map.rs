//! `edgeMap` / `vertexMap` — Ligra's two primitives.

use crate::frontier::Frontier;
use rayon::prelude::*;
use turbobc_graph::{Graph, VertexId};
use turbobc_sparse::{Csc, Csr};

/// A graph prepared for Ligra traversal: both adjacency directions, as in
/// the original system (which stores `G` and `Gᵀ` for push and pull).
pub struct LigraGraph {
    /// Out-adjacency (push direction).
    pub csr: Csr,
    /// In-adjacency (pull direction).
    pub csc: Csc,
    n: usize,
    m: usize,
    scale: f64,
}

impl LigraGraph {
    /// Builds both directions from a [`Graph`].
    pub fn new(graph: &Graph) -> Self {
        LigraGraph {
            csr: graph.to_csr(),
            csc: graph.to_csc(),
            n: graph.n(),
            m: graph.m(),
            scale: graph.bc_scale(),
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored arc count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// BC scaling (0.5 undirected / 1.0 directed), used by [`crate::bc`].
    pub fn bc_scale(&self) -> f64 {
        self.scale
    }
}

/// An edge functor for [`edge_map`] — Ligra's `(F, C)` pair.
///
/// `update_atomic` is used on the push side where multiple sources may
/// target one destination concurrently; `update` on the pull side where
/// each destination is owned by one task. Both return `true` when the
/// destination enters the output frontier (i.e. on first activation).
pub trait EdgeOp: Sync {
    /// Atomic update for `u → v` (push). Returns `true` if `v` was newly
    /// activated.
    fn update_atomic(&self, u: VertexId, v: VertexId) -> bool;
    /// Non-atomic update for `u → v` (pull; single owner of `v`).
    fn update(&self, u: VertexId, v: VertexId) -> bool;
    /// Whether destination `v` should still be processed (Ligra's `C`).
    fn cond(&self, v: VertexId) -> bool;
}

/// Ligra's threshold: pull (dense) when the frontier plus its out-edges
/// exceed `m / α`. The denominator is the workspace-wide
/// [`turbobc_graph::DENSE_DIRECTION_FRACTION`], shared with TurboBC's
/// direction engine so both systems flip at the same frontier size.
use turbobc_graph::DENSE_DIRECTION_FRACTION as DENSE_FRACTION;

/// Applies `op` to every edge leaving `frontier`, returning the newly
/// activated vertex subset. Direction-optimising: chooses push or pull
/// per Ligra's `|U| + outDegrees(U) > m/20` rule.
pub fn edge_map(g: &LigraGraph, frontier: &Frontier, op: &impl EdgeOp) -> Frontier {
    let members = frontier.vertices();
    let out_edges: usize = members.par_iter().map(|&v| g.csr.row_len(v as usize)).sum();
    if members.len() + out_edges > g.m / DENSE_FRACTION {
        edge_map_dense(g, frontier, op)
    } else {
        edge_map_sparse(g, &members, op)
    }
}

/// Push traversal (sparse frontier).
pub fn edge_map_sparse(g: &LigraGraph, members: &[VertexId], op: &impl EdgeOp) -> Frontier {
    let next: Vec<VertexId> = members
        .par_iter()
        .fold(Vec::new, |mut acc, &u| {
            for &v in g.csr.row(u as usize) {
                if op.cond(v) && op.update_atomic(u, v) {
                    acc.push(v);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    Frontier::Sparse(next)
}

/// Pull traversal (dense frontier): each still-active destination scans
/// its in-neighbours.
pub fn edge_map_dense(g: &LigraGraph, frontier: &Frontier, op: &impl EdgeOp) -> Frontier {
    let dense = frontier.to_dense(g.n);
    let bits = match &dense {
        Frontier::Dense { bits, .. } => bits,
        Frontier::Sparse(_) => unreachable!(),
    };
    let next_bits: Vec<bool> = (0..g.n)
        .into_par_iter()
        .map(|v| {
            if !op.cond(v as VertexId) {
                return false;
            }
            let mut added = false;
            for &u in g.csc.column(v) {
                if bits[u as usize] && op.update(u, v as VertexId) {
                    added = true;
                }
            }
            added
        })
        .collect();
    let count = next_bits.par_iter().filter(|&&b| b).count();
    Frontier::Dense {
        bits: next_bits,
        count,
    }
}

/// [`edge_map`] over the **transposed** graph: traverses `v → u` for each
/// stored edge `u → v`. Used by the backward phase of
/// [`crate::bc`], matching how Ligra's BC edge-maps the transpose.
pub fn edge_map_rev(g: &LigraGraph, frontier: &Frontier, op: &impl EdgeOp) -> Frontier {
    let members = frontier.vertices();
    let in_edges: usize = members
        .par_iter()
        .map(|&v| g.csc.column_len(v as usize))
        .sum();
    if members.len() + in_edges > g.m / DENSE_FRACTION {
        edge_map_dense_rev(g, frontier, op)
    } else {
        edge_map_sparse_rev(g, &members, op)
    }
}

/// Push traversal of the transpose: sources expand their in-neighbours.
pub fn edge_map_sparse_rev(g: &LigraGraph, members: &[VertexId], op: &impl EdgeOp) -> Frontier {
    let next: Vec<VertexId> = members
        .par_iter()
        .fold(Vec::new, |mut acc, &u| {
            for &v in g.csc.column(u as usize) {
                if op.cond(v) && op.update_atomic(u, v) {
                    acc.push(v);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    Frontier::Sparse(next)
}

/// Pull traversal of the transpose: destinations scan their
/// out-neighbours.
pub fn edge_map_dense_rev(g: &LigraGraph, frontier: &Frontier, op: &impl EdgeOp) -> Frontier {
    let dense = frontier.to_dense(g.n);
    let bits = match &dense {
        Frontier::Dense { bits, .. } => bits,
        Frontier::Sparse(_) => unreachable!(),
    };
    let next_bits: Vec<bool> = (0..g.n)
        .into_par_iter()
        .map(|v| {
            if !op.cond(v as VertexId) {
                return false;
            }
            let mut added = false;
            for &u in g.csr.row(v) {
                if bits[u as usize] && op.update(u, v as VertexId) {
                    added = true;
                }
            }
            added
        })
        .collect();
    let count = next_bits.par_iter().filter(|&&b| b).count();
    Frontier::Dense {
        bits: next_bits,
        count,
    }
}

/// Applies `f` to every member of the frontier in parallel.
pub fn vertex_map(frontier: &Frontier, f: impl Fn(VertexId) + Sync) {
    match frontier {
        Frontier::Sparse(list) => list.par_iter().for_each(|&v| f(v)),
        Frontier::Dense { bits, .. } => {
            bits.par_iter().enumerate().for_each(|(v, &b)| {
                if b {
                    f(v as VertexId)
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    struct Reach {
        visited: Vec<AtomicBool>,
    }

    impl EdgeOp for Reach {
        fn update_atomic(&self, _u: VertexId, v: VertexId) -> bool {
            !self.visited[v as usize].swap(true, Ordering::Relaxed)
        }
        fn update(&self, u: VertexId, v: VertexId) -> bool {
            self.update_atomic(u, v)
        }
        fn cond(&self, v: VertexId) -> bool {
            !self.visited[v as usize].load(Ordering::Relaxed)
        }
    }

    fn reach_count(g: &Graph, source: VertexId) -> usize {
        let lg = LigraGraph::new(g);
        let op = Reach {
            visited: (0..g.n()).map(|_| AtomicBool::new(false)).collect(),
        };
        op.visited[source as usize].store(true, Ordering::Relaxed);
        let mut frontier = Frontier::single(source);
        let mut total = 1;
        while !frontier.is_empty() {
            frontier = edge_map(&lg, &frontier, &op);
            total += frontier.len();
        }
        total
    }

    #[test]
    fn edge_map_reaches_connected_component() {
        let g = Graph::from_edges(6, false, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        assert_eq!(reach_count(&g, 0), 4);
        assert_eq!(reach_count(&g, 4), 2);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let g = turbobc_graph::gen::gnm(80, 400, true, 3);
        let lg = LigraGraph::new(&g);
        let mk = || Reach {
            visited: (0..g.n()).map(|_| AtomicBool::new(false)).collect(),
        };
        let members = vec![0u32, 5, 9];
        let a = mk();
        let sparse = edge_map_sparse(&lg, &members, &a);
        let b = mk();
        let dense = edge_map_dense(&lg, &Frontier::Sparse(members), &b);
        let mut sv = sparse.vertices();
        let mut dv = dense.vertices();
        sv.sort_unstable();
        dv.sort_unstable();
        assert_eq!(sv, dv);
    }

    #[test]
    fn dense_path_taken_for_huge_frontier() {
        // A star from 0: frontier {0} has out-degree n-1 > m/20.
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let g = Graph::from_edges(100, true, &edges);
        let lg = LigraGraph::new(&g);
        let op = Reach {
            visited: (0..100).map(|_| AtomicBool::new(false)).collect(),
        };
        op.visited[0].store(true, Ordering::Relaxed);
        let next = edge_map(&lg, &Frontier::single(0), &op);
        assert!(
            matches!(next, Frontier::Dense { .. }),
            "expected pull for dense frontier"
        );
        assert_eq!(next.len(), 99);
    }

    #[test]
    fn vertex_map_visits_each_member_once() {
        let hits = AtomicUsize::new(0);
        vertex_map(&Frontier::Sparse(vec![1, 2, 3]), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let hits2 = AtomicUsize::new(0);
        vertex_map(&Frontier::Sparse(vec![0, 4]).to_dense(6), |_| {
            hits2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits2.load(Ordering::Relaxed), 2);
    }
}

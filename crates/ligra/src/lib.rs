//! A miniature **Ligra** — the CPU shared-memory graph-processing
//! framework of Shun & Blelloch (PPoPP '13) — built as the paper's
//! ligra baseline.
//!
//! The TurboBC paper benchmarks against the BC implementation in the
//! ligra library. Ligra's defining features, all reproduced here:
//!
//! * a **frontier** abstraction ([`Frontier`]) that switches automatically
//!   between a *sparse* vertex list and a *dense* bitmap;
//! * [`edge_map`] — apply an update to every edge out of the frontier,
//!   choosing **push** (sparse frontier, atomic updates, output built by
//!   the sources) or **pull** (dense frontier, each destination scans its
//!   in-neighbours, no atomics) by comparing the frontier's out-edge
//!   count against `m / 20`, exactly Ligra's heuristic;
//! * [`vertex_map`] — parallel map over frontier vertices;
//! * algorithms written against the framework: [`bfs::bfs`] and
//!   [`bc::bc_single_source`]/[`bc::bc_all_sources`] (Shun & Blelloch
//!   §4.2).

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bc;
pub mod bfs;
mod edge_map;
mod frontier;

pub use edge_map::{edge_map, edge_map_rev, vertex_map, EdgeOp, LigraGraph};
pub use frontier::Frontier;

//! Betweenness centrality on the mini-Ligra framework, following Shun &
//! Blelloch §4.2.
//!
//! Forward phase: level-synchronous path counting with `edge_map`,
//! recording each level's frontier. Backward phase: Ligra's
//! *inverse-path-count* trick — define `ψ(v) = (1 + δ(v)) / σ(v)`; then
//! `ψ(v) = 1/σ(v) + Σ_{children w} ψ(w)`, so dependencies accumulate by
//! plain additions while edge-mapping the **transpose** of the graph from
//! the deepest level up, and `δ(v) = (ψ(v) − 1/σ(v)) · σ(v)` at the end.

use crate::edge_map::{edge_map, edge_map_rev, vertex_map, EdgeOp, LigraGraph};
use crate::frontier::Frontier;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use turbobc_graph::{Graph, VertexId};

#[inline]
fn atomic_f64_add(cell: &AtomicU64, val: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Forward functor: accumulate path counts; first touch activates.
struct PathsOp<'a> {
    num_paths: &'a [AtomicI64],
    visited: &'a [AtomicBool],
}

impl EdgeOp for PathsOp<'_> {
    fn update_atomic(&self, u: VertexId, v: VertexId) -> bool {
        let add = self.num_paths[u as usize].load(Ordering::Relaxed);
        let cell = &self.num_paths[v as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(add);
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(old) => return old == 0,
                Err(now) => cur = now,
            }
        }
    }
    fn update(&self, u: VertexId, v: VertexId) -> bool {
        self.update_atomic(u, v)
    }
    fn cond(&self, v: VertexId) -> bool {
        !self.visited[v as usize].load(Ordering::Relaxed)
    }
}

/// Backward functor: `ψ(parent) += ψ(child)` over transpose edges.
struct BackOp<'a> {
    dependencies: &'a [AtomicU64],
    done: &'a [AtomicBool],
}

impl EdgeOp for BackOp<'_> {
    fn update_atomic(&self, u: VertexId, v: VertexId) -> bool {
        let add = f64::from_bits(self.dependencies[u as usize].load(Ordering::Relaxed));
        atomic_f64_add(&self.dependencies[v as usize], add);
        false // the output frontier is unused: levels are pre-recorded
    }
    fn update(&self, u: VertexId, v: VertexId) -> bool {
        self.update_atomic(u, v)
    }
    fn cond(&self, v: VertexId) -> bool {
        !self.done[v as usize].load(Ordering::Relaxed)
    }
}

/// Accumulates one source's BC contribution into `bc`.
fn accumulate(lg: &LigraGraph, source: VertexId, bc: &mut [f64]) {
    let n = lg.n();
    if n == 0 {
        return;
    }
    let num_paths: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    num_paths[source as usize].store(1, Ordering::Relaxed);
    visited[source as usize].store(true, Ordering::Relaxed);

    let mut levels: Vec<Frontier> = vec![Frontier::single(source)];
    loop {
        let op = PathsOp {
            num_paths: &num_paths,
            visited: &visited,
        };
        let next = edge_map(lg, levels.last().unwrap(), &op);
        if next.is_empty() {
            break;
        }
        vertex_map(&next, |v| {
            visited[v as usize].store(true, Ordering::Relaxed)
        });
        levels.push(next);
    }

    let sigma: Vec<i64> = num_paths
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let dependencies: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    for r in (0..levels.len()).rev() {
        // Ligra order: vertexMap marks the level done and seeds 1/σ,
        // then the transpose edgeMap pushes ψ to the parents.
        vertex_map(&levels[r], |v| {
            done[v as usize].store(true, Ordering::Relaxed);
            atomic_f64_add(&dependencies[v as usize], 1.0 / sigma[v as usize] as f64);
        });
        if r > 0 {
            let op = BackOp {
                dependencies: &dependencies,
                done: &done,
            };
            let _ = edge_map_rev(lg, &levels[r], &op);
        }
    }

    let scale = lg.bc_scale();
    bc.par_iter_mut().enumerate().for_each(|(v, b)| {
        if v != source as usize && sigma[v] > 0 && done[v].load(Ordering::Relaxed) {
            let psi = f64::from_bits(dependencies[v].load(Ordering::Relaxed));
            *b += (psi - 1.0 / sigma[v] as f64) * sigma[v] as f64 * scale;
        }
    });
}

/// BC contribution of one source (Ligra baseline).
pub fn bc_single_source(graph: &Graph, source: VertexId) -> Vec<f64> {
    let lg = LigraGraph::new(graph);
    let mut bc = vec![0.0; graph.n()];
    accumulate(&lg, source, &mut bc);
    bc
}

/// Exact BC over all sources (Ligra baseline).
pub fn bc_all_sources(graph: &Graph) -> Vec<f64> {
    let lg = LigraGraph::new(graph);
    let mut bc = vec![0.0; graph.n()];
    for s in 0..graph.n() {
        accumulate(&lg, s as VertexId, &mut bc);
    }
    bc
}

/// BC over an explicit source set (Ligra baseline).
pub fn bc_sources(graph: &Graph, sources: &[VertexId]) -> Vec<f64> {
    let lg = LigraGraph::new(graph);
    let mut bc = vec![0.0; graph.n()];
    for &s in sources {
        accumulate(&lg, s, &mut bc);
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use turbobc_baselines::{brandes_all_sources, brandes_single_source};

    fn assert_close(got: &[f64], want: &[f64]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-6, "bc[{i}] = {g}, want {w}");
        }
    }

    #[test]
    fn matches_oracle_on_small_graphs() {
        let path = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_close(&bc_all_sources(&path), &brandes_all_sources(&path));
        let diamond = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_close(&bc_all_sources(&diamond), &brandes_all_sources(&diamond));
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for trial in 0..16 {
            let n = 3 + rng.gen_range(0..40);
            let m = rng.gen_range(0..5 * n);
            let directed = trial % 2 == 0;
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
                .collect();
            let g = Graph::from_edges(n, directed, &edges);
            assert_close(&bc_all_sources(&g), &brandes_all_sources(&g));
        }
    }

    #[test]
    fn dense_frontier_path_matches_oracle() {
        // Star forces the pull path on the first expansion.
        let edges: Vec<(u32, u32)> = (1..300).map(|v| (0, v)).collect();
        let g = Graph::from_edges(300, false, &edges);
        assert_close(&bc_single_source(&g, 0), &brandes_single_source(&g, 0));
    }

    #[test]
    fn same_level_directed_edges_are_ignored_in_backward() {
        // 0→1, 0→2, 1→2 gives a same-level edge 1→2? No: level(2) = 1.
        // Use 0→1, 0→2, 1→3, 2→3, 1→2: edge 1→2 links level 1 to level 1.
        let g = Graph::from_edges(4, true, &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)]);
        assert_close(&bc_all_sources(&g), &brandes_all_sources(&g));
    }

    #[test]
    fn sources_subset() {
        let g = Graph::from_edges(6, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let got = bc_sources(&g, &[0, 5]);
        let mut want = vec![0.0; 6];
        for s in [0u32, 5] {
            for (acc, x) in want.iter_mut().zip(brandes_single_source(&g, s)) {
                *acc += x;
            }
        }
        assert_close(&got, &want);
    }
}

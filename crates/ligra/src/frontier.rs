//! The frontier (vertex subset) abstraction with sparse/dense duality.

use turbobc_graph::VertexId;

/// A subset of vertices, stored either as a vertex list (*sparse*) or a
/// bitmap (*dense*). Ligra's `vertexSubset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frontier {
    /// Explicit vertex ids (unordered, duplicate-free).
    Sparse(Vec<VertexId>),
    /// Bitmap over all `n` vertices plus the member count.
    Dense {
        /// Membership bitmap, length `n`.
        bits: Vec<bool>,
        /// Number of set bits.
        count: usize,
    },
}

impl Frontier {
    /// The empty frontier (sparse).
    pub fn empty() -> Self {
        Frontier::Sparse(Vec::new())
    }

    /// A single-vertex frontier.
    pub fn single(v: VertexId) -> Self {
        Frontier::Sparse(vec![v])
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            Frontier::Sparse(v) => v.len(),
            Frontier::Dense { count, .. } => *count,
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test. For sparse frontiers this is a scan — callers on
    /// the hot pull path convert to dense first.
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            Frontier::Sparse(list) => list.contains(&v),
            Frontier::Dense { bits, .. } => bits[v as usize],
        }
    }

    /// Converts to a dense bitmap over `n` vertices (no-op if already
    /// dense).
    pub fn to_dense(&self, n: usize) -> Frontier {
        match self {
            Frontier::Dense { .. } => self.clone(),
            Frontier::Sparse(list) => {
                let mut bits = vec![false; n];
                for &v in list {
                    bits[v as usize] = true;
                }
                Frontier::Dense {
                    bits,
                    count: list.len(),
                }
            }
        }
    }

    /// Converts to a sparse vertex list (no-op if already sparse).
    pub fn to_sparse(&self) -> Frontier {
        match self {
            Frontier::Sparse(_) => self.clone(),
            Frontier::Dense { bits, .. } => Frontier::Sparse(
                bits.iter()
                    .enumerate()
                    .filter_map(|(i, &b)| b.then_some(i as VertexId))
                    .collect(),
            ),
        }
    }

    /// Iterates member vertices (materialises for dense frontiers).
    pub fn vertices(&self) -> Vec<VertexId> {
        match self.to_sparse() {
            Frontier::Sparse(v) => v,
            Frontier::Dense { .. } => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(Frontier::empty().is_empty());
        let f = Frontier::single(3);
        assert_eq!(f.len(), 1);
        assert!(f.contains(3));
        assert!(!f.contains(2));
    }

    #[test]
    fn dense_round_trip() {
        let f = Frontier::Sparse(vec![1, 4, 2]);
        let d = f.to_dense(6);
        assert_eq!(d.len(), 3);
        assert!(d.contains(4));
        assert!(!d.contains(0));
        let mut back = d.to_sparse().vertices();
        back.sort_unstable();
        assert_eq!(back, vec![1, 2, 4]);
    }

    #[test]
    fn dense_count_tracks_members() {
        let d = Frontier::Sparse(vec![0, 5]).to_dense(8);
        match &d {
            Frontier::Dense { count, bits } => {
                assert_eq!(*count, 2);
                assert_eq!(bits.len(), 8);
            }
            _ => panic!("expected dense"),
        }
    }

    #[test]
    fn conversions_are_idempotent() {
        let s = Frontier::Sparse(vec![1, 2]);
        assert_eq!(s.to_sparse(), s);
        let d = s.to_dense(4);
        assert_eq!(d.to_dense(4), d);
    }
}

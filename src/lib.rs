//! Umbrella crate for the TurboBC reproduction workspace.
//!
//! Re-exports every member crate under one roof so the runnable examples in
//! `examples/` and the integration tests in `tests/` can exercise the whole
//! public API with a single dependency.

pub use turbobc;
pub use turbobc_baselines as baselines;
pub use turbobc_graph as graph;
pub use turbobc_ligra as ligra;
pub use turbobc_simt as simt;
pub use turbobc_sparse as sparse;

/root/repo/target/debug/deps/pipeline-42d09b11a4251406.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-42d09b11a4251406.rmeta: tests/pipeline.rs

tests/pipeline.rs:

/root/repo/target/debug/deps/turbobc_baselines-7131c937a284bade.d: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_baselines-7131c937a284bade.rmeta: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/brandes.rs:
crates/baselines/src/gunrock_like.rs:
crates/baselines/src/gunrock_simt.rs:
crates/baselines/src/weighted_brandes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

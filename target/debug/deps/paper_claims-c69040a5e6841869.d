/root/repo/target/debug/deps/paper_claims-c69040a5e6841869.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c69040a5e6841869: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/debug/deps/observe-afc500b72131b2ac.d: tests/observe.rs

/root/repo/target/debug/deps/observe-afc500b72131b2ac: tests/observe.rs

tests/observe.rs:

/root/repo/target/debug/deps/paper_claims-2c08ec745b9bcfc1.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-2c08ec745b9bcfc1.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/debug/deps/turbobc_simt-1a652148e685ddf3.d: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/proptests.rs crates/simt/src/timing.rs crates/simt/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_simt-1a652148e685ddf3.rmeta: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/proptests.rs crates/simt/src/timing.rs crates/simt/src/warp.rs Cargo.toml

crates/simt/src/lib.rs:
crates/simt/src/buffer.rs:
crates/simt/src/cache.rs:
crates/simt/src/device.rs:
crates/simt/src/faults.rs:
crates/simt/src/interconnect.rs:
crates/simt/src/metrics.rs:
crates/simt/src/proptests.rs:
crates/simt/src/timing.rs:
crates/simt/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/turbobc_baselines-08416ecce77279b1.d: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/debug/deps/libturbobc_baselines-08416ecce77279b1.rlib: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/debug/deps/libturbobc_baselines-08416ecce77279b1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/brandes.rs:
crates/baselines/src/gunrock_like.rs:
crates/baselines/src/gunrock_simt.rs:
crates/baselines/src/weighted_brandes.rs:

/root/repo/target/debug/deps/turbobc_simt-fc486716e6119b10.d: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

/root/repo/target/debug/deps/libturbobc_simt-fc486716e6119b10.rmeta: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

crates/simt/src/lib.rs:
crates/simt/src/buffer.rs:
crates/simt/src/cache.rs:
crates/simt/src/device.rs:
crates/simt/src/faults.rs:
crates/simt/src/interconnect.rs:
crates/simt/src/metrics.rs:
crates/simt/src/timing.rs:
crates/simt/src/warp.rs:

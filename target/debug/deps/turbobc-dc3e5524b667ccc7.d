/root/repo/target/debug/deps/turbobc-dc3e5524b667ccc7.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/turbobc-dc3e5524b667ccc7: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:

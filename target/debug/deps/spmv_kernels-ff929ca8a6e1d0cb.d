/root/repo/target/debug/deps/spmv_kernels-ff929ca8a6e1d0cb.d: crates/bench/benches/spmv_kernels.rs

/root/repo/target/debug/deps/libspmv_kernels-ff929ca8a6e1d0cb.rmeta: crates/bench/benches/spmv_kernels.rs

crates/bench/benches/spmv_kernels.rs:

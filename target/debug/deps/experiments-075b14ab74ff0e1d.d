/root/repo/target/debug/deps/experiments-075b14ab74ff0e1d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-075b14ab74ff0e1d.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

/root/repo/target/debug/deps/proptest-be3f001a841b5d86.d: .typecheck/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-be3f001a841b5d86.rmeta: .typecheck/proptest/src/lib.rs

.typecheck/proptest/src/lib.rs:

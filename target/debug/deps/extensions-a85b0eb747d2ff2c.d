/root/repo/target/debug/deps/extensions-a85b0eb747d2ff2c.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-a85b0eb747d2ff2c.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

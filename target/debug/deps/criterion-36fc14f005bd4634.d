/root/repo/target/debug/deps/criterion-36fc14f005bd4634.d: .typecheck/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-36fc14f005bd4634.rlib: .typecheck/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-36fc14f005bd4634.rmeta: .typecheck/criterion/src/lib.rs

.typecheck/criterion/src/lib.rs:

/root/repo/target/debug/deps/faults-71cfeac9fc61b17a.d: tests/faults.rs

/root/repo/target/debug/deps/libfaults-71cfeac9fc61b17a.rmeta: tests/faults.rs

tests/faults.rs:

/root/repo/target/debug/deps/soak-d60b7bcf1fe3b96f.d: crates/bench/src/bin/soak.rs

/root/repo/target/debug/deps/soak-d60b7bcf1fe3b96f: crates/bench/src/bin/soak.rs

crates/bench/src/bin/soak.rs:

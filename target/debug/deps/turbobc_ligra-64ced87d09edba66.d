/root/repo/target/debug/deps/turbobc_ligra-64ced87d09edba66.d: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/debug/deps/libturbobc_ligra-64ced87d09edba66.rlib: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/debug/deps/libturbobc_ligra-64ced87d09edba66.rmeta: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

crates/ligra/src/lib.rs:
crates/ligra/src/bc.rs:
crates/ligra/src/bfs.rs:
crates/ligra/src/edge_map.rs:
crates/ligra/src/frontier.rs:

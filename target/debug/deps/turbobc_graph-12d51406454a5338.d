/root/repo/target/debug/deps/turbobc_graph-12d51406454a5338.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/families.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/circuit.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/mycielski.rs crates/graph/src/gen/powerlaw.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/smallworld.rs crates/graph/src/gen/trace.rs crates/graph/src/gen/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/stats.rs crates/graph/src/weighted.rs

/root/repo/target/debug/deps/libturbobc_graph-12d51406454a5338.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/families.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/circuit.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/mycielski.rs crates/graph/src/gen/powerlaw.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/smallworld.rs crates/graph/src/gen/trace.rs crates/graph/src/gen/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/stats.rs crates/graph/src/weighted.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/families.rs:
crates/graph/src/gen/mod.rs:
crates/graph/src/gen/circuit.rs:
crates/graph/src/gen/delaunay.rs:
crates/graph/src/gen/mesh.rs:
crates/graph/src/gen/mycielski.rs:
crates/graph/src/gen/powerlaw.rs:
crates/graph/src/gen/random.rs:
crates/graph/src/gen/rmat.rs:
crates/graph/src/gen/road.rs:
crates/graph/src/gen/smallworld.rs:
crates/graph/src/gen/trace.rs:
crates/graph/src/gen/trees.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/stats.rs:
crates/graph/src/weighted.rs:

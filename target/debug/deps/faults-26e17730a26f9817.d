/root/repo/target/debug/deps/faults-26e17730a26f9817.d: tests/faults.rs

/root/repo/target/debug/deps/faults-26e17730a26f9817: tests/faults.rs

tests/faults.rs:

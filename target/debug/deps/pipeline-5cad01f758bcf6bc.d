/root/repo/target/debug/deps/pipeline-5cad01f758bcf6bc.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-5cad01f758bcf6bc: tests/pipeline.rs

tests/pipeline.rs:

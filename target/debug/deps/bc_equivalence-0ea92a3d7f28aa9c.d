/root/repo/target/debug/deps/bc_equivalence-0ea92a3d7f28aa9c.d: tests/bc_equivalence.rs

/root/repo/target/debug/deps/bc_equivalence-0ea92a3d7f28aa9c: tests/bc_equivalence.rs

tests/bc_equivalence.rs:

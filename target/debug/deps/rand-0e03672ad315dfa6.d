/root/repo/target/debug/deps/rand-0e03672ad315dfa6.d: .typecheck/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0e03672ad315dfa6.rlib: .typecheck/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0e03672ad315dfa6.rmeta: .typecheck/rand/src/lib.rs

.typecheck/rand/src/lib.rs:

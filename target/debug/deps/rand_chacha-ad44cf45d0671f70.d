/root/repo/target/debug/deps/rand_chacha-ad44cf45d0671f70.d: .typecheck/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-ad44cf45d0671f70.rmeta: .typecheck/rand_chacha/src/lib.rs

.typecheck/rand_chacha/src/lib.rs:

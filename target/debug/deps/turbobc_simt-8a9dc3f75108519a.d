/root/repo/target/debug/deps/turbobc_simt-8a9dc3f75108519a.d: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/proptests.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

/root/repo/target/debug/deps/libturbobc_simt-8a9dc3f75108519a.rmeta: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/proptests.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

crates/simt/src/lib.rs:
crates/simt/src/buffer.rs:
crates/simt/src/cache.rs:
crates/simt/src/device.rs:
crates/simt/src/faults.rs:
crates/simt/src/interconnect.rs:
crates/simt/src/metrics.rs:
crates/simt/src/proptests.rs:
crates/simt/src/timing.rs:
crates/simt/src/warp.rs:

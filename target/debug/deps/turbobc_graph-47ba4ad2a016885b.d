/root/repo/target/debug/deps/turbobc_graph-47ba4ad2a016885b.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/families.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/circuit.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/mycielski.rs crates/graph/src/gen/powerlaw.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/smallworld.rs crates/graph/src/gen/trace.rs crates/graph/src/gen/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/proptests.rs crates/graph/src/stats.rs crates/graph/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_graph-47ba4ad2a016885b.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/families.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/circuit.rs crates/graph/src/gen/delaunay.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/mycielski.rs crates/graph/src/gen/powerlaw.rs crates/graph/src/gen/random.rs crates/graph/src/gen/rmat.rs crates/graph/src/gen/road.rs crates/graph/src/gen/smallworld.rs crates/graph/src/gen/trace.rs crates/graph/src/gen/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/proptests.rs crates/graph/src/stats.rs crates/graph/src/weighted.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/families.rs:
crates/graph/src/gen/mod.rs:
crates/graph/src/gen/circuit.rs:
crates/graph/src/gen/delaunay.rs:
crates/graph/src/gen/mesh.rs:
crates/graph/src/gen/mycielski.rs:
crates/graph/src/gen/powerlaw.rs:
crates/graph/src/gen/random.rs:
crates/graph/src/gen/rmat.rs:
crates/graph/src/gen/road.rs:
crates/graph/src/gen/smallworld.rs:
crates/graph/src/gen/trace.rs:
crates/graph/src/gen/trees.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/proptests.rs:
crates/graph/src/stats.rs:
crates/graph/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/extensions-dc4350e7f1f5b354.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/libextensions-dc4350e7f1f5b354.rmeta: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:

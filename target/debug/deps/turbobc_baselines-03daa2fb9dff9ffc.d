/root/repo/target/debug/deps/turbobc_baselines-03daa2fb9dff9ffc.d: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/debug/deps/libturbobc_baselines-03daa2fb9dff9ffc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/brandes.rs:
crates/baselines/src/gunrock_like.rs:
crates/baselines/src/gunrock_simt.rs:
crates/baselines/src/weighted_brandes.rs:

/root/repo/target/debug/deps/turbobc_ligra-86376706b72135fe.d: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/debug/deps/turbobc_ligra-86376706b72135fe: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

crates/ligra/src/lib.rs:
crates/ligra/src/bc.rs:
crates/ligra/src/bfs.rs:
crates/ligra/src/edge_map.rs:
crates/ligra/src/frontier.rs:

/root/repo/target/debug/deps/turbobc_bench-1b459482eab9cfa0.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/batched.rs crates/bench/src/experiments/direction.rs crates/bench/src/experiments/dispatch.rs crates/bench/src/experiments/dynamic.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/prep.rs crates/bench/src/experiments/tables.rs crates/bench/src/profiles.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/turbobc_bench-1b459482eab9cfa0: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/batched.rs crates/bench/src/experiments/direction.rs crates/bench/src/experiments/dispatch.rs crates/bench/src/experiments/dynamic.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/prep.rs crates/bench/src/experiments/tables.rs crates/bench/src/profiles.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/batched.rs:
crates/bench/src/experiments/direction.rs:
crates/bench/src/experiments/dispatch.rs:
crates/bench/src/experiments/dynamic.rs:
crates/bench/src/experiments/figures.rs:
crates/bench/src/experiments/prep.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/profiles.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:

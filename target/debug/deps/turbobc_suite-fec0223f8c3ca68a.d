/root/repo/target/debug/deps/turbobc_suite-fec0223f8c3ca68a.d: src/lib.rs

/root/repo/target/debug/deps/libturbobc_suite-fec0223f8c3ca68a.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/rayon-d5edebfbc01d98e5.d: .typecheck/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-d5edebfbc01d98e5.rlib: .typecheck/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-d5edebfbc01d98e5.rmeta: .typecheck/rayon/src/lib.rs

.typecheck/rayon/src/lib.rs:

/root/repo/target/debug/deps/turbobc_ligra-32c3487ddc7810e0.d: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_ligra-32c3487ddc7810e0.rmeta: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs Cargo.toml

crates/ligra/src/lib.rs:
crates/ligra/src/bc.rs:
crates/ligra/src/bfs.rs:
crates/ligra/src/edge_map.rs:
crates/ligra/src/frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

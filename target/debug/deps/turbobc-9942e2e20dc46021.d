/root/repo/target/debug/deps/turbobc-9942e2e20dc46021.d: crates/cli/src/main.rs crates/cli/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc-9942e2e20dc46021.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

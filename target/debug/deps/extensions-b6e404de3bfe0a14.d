/root/repo/target/debug/deps/extensions-b6e404de3bfe0a14.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-b6e404de3bfe0a14.rmeta: tests/extensions.rs

tests/extensions.rs:

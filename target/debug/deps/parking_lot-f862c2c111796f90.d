/root/repo/target/debug/deps/parking_lot-f862c2c111796f90.d: .typecheck/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f862c2c111796f90.rlib: .typecheck/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f862c2c111796f90.rmeta: .typecheck/parking_lot/src/lib.rs

.typecheck/parking_lot/src/lib.rs:

/root/repo/target/debug/deps/turbobc-9a65859d260e950a.d: crates/cli/src/main.rs crates/cli/src/cli.rs crates/cli/src/updates.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc-9a65859d260e950a.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs crates/cli/src/updates.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
crates/cli/src/updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

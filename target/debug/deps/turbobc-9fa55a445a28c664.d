/root/repo/target/debug/deps/turbobc-9fa55a445a28c664.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/libturbobc-9fa55a445a28c664.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:

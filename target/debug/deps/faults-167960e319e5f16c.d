/root/repo/target/debug/deps/faults-167960e319e5f16c.d: tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-167960e319e5f16c.rmeta: tests/faults.rs Cargo.toml

tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

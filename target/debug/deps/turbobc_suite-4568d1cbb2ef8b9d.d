/root/repo/target/debug/deps/turbobc_suite-4568d1cbb2ef8b9d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_suite-4568d1cbb2ef8b9d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-95bdcac77d186401.d: .typecheck/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-95bdcac77d186401.rlib: .typecheck/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-95bdcac77d186401.rmeta: .typecheck/proptest/src/lib.rs

.typecheck/proptest/src/lib.rs:

/root/repo/target/debug/deps/extensions-a7a7fa18f57e2e58.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-a7a7fa18f57e2e58: tests/extensions.rs

tests/extensions.rs:

/root/repo/target/debug/deps/turbobc_suite-6d215d8979aa75dc.d: src/lib.rs

/root/repo/target/debug/deps/libturbobc_suite-6d215d8979aa75dc.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/turbobc_simt-bb4644c49406bcd0.d: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/proptests.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

/root/repo/target/debug/deps/turbobc_simt-bb4644c49406bcd0: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/proptests.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

crates/simt/src/lib.rs:
crates/simt/src/buffer.rs:
crates/simt/src/cache.rs:
crates/simt/src/device.rs:
crates/simt/src/faults.rs:
crates/simt/src/interconnect.rs:
crates/simt/src/metrics.rs:
crates/simt/src/proptests.rs:
crates/simt/src/timing.rs:
crates/simt/src/warp.rs:

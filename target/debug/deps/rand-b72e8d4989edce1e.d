/root/repo/target/debug/deps/rand-b72e8d4989edce1e.d: .typecheck/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b72e8d4989edce1e.rmeta: .typecheck/rand/src/lib.rs

.typecheck/rand/src/lib.rs:

/root/repo/target/debug/deps/experiments-c848d433900db5dc.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-c848d433900db5dc: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

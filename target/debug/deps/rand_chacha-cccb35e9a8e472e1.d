/root/repo/target/debug/deps/rand_chacha-cccb35e9a8e472e1.d: .typecheck/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-cccb35e9a8e472e1.rlib: .typecheck/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-cccb35e9a8e472e1.rmeta: .typecheck/rand_chacha/src/lib.rs

.typecheck/rand_chacha/src/lib.rs:

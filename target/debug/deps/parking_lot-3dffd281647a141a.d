/root/repo/target/debug/deps/parking_lot-3dffd281647a141a.d: .typecheck/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3dffd281647a141a.rmeta: .typecheck/parking_lot/src/lib.rs

.typecheck/parking_lot/src/lib.rs:

/root/repo/target/debug/deps/criterion-f7034ac57ff0b8bc.d: .typecheck/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f7034ac57ff0b8bc.rmeta: .typecheck/criterion/src/lib.rs

.typecheck/criterion/src/lib.rs:

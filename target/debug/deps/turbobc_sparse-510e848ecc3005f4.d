/root/repo/target/debug/deps/turbobc_sparse-510e848ecc3005f4.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_sparse-510e848ecc3005f4.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/cooc.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/delta.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ops.rs:
crates/sparse/src/scalar.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/observe-db5008fbdbdc7ff1.d: tests/observe.rs

/root/repo/target/debug/deps/libobserve-db5008fbdbdc7ff1.rmeta: tests/observe.rs

tests/observe.rs:

/root/repo/target/debug/deps/turbobc_sparse-0cdc6230f6a2a7a2.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

/root/repo/target/debug/deps/libturbobc_sparse-0cdc6230f6a2a7a2.rlib: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

/root/repo/target/debug/deps/libturbobc_sparse-0cdc6230f6a2a7a2.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/cooc.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/delta.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ops.rs:
crates/sparse/src/scalar.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmm.rs:

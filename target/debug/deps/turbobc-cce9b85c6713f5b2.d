/root/repo/target/debug/deps/turbobc-cce9b85c6713f5b2.d: crates/turbobc/src/lib.rs crates/turbobc/src/approx.rs crates/turbobc/src/batched.rs crates/turbobc/src/checkpoint.rs crates/turbobc/src/closeness.rs crates/turbobc/src/dispatch/mod.rs crates/turbobc/src/dispatch/hybrid.rs crates/turbobc/src/dynamic/mod.rs crates/turbobc/src/edge.rs crates/turbobc/src/error.rs crates/turbobc/src/footprint.rs crates/turbobc/src/frontier.rs crates/turbobc/src/msbfs.rs crates/turbobc/src/multi_gpu.rs crates/turbobc/src/multi_gpu2d.rs crates/turbobc/src/observe/mod.rs crates/turbobc/src/observe/json.rs crates/turbobc/src/options.rs crates/turbobc/src/par.rs crates/turbobc/src/prep/mod.rs crates/turbobc/src/prep/components.rs crates/turbobc/src/prep/fold.rs crates/turbobc/src/prep/twins.rs crates/turbobc/src/result.rs crates/turbobc/src/seq.rs crates/turbobc/src/simt_engine/mod.rs crates/turbobc/src/simt_engine/kernels.rs crates/turbobc/src/solver.rs crates/turbobc/src/turbobfs.rs crates/turbobc/src/weighted.rs

/root/repo/target/debug/deps/libturbobc-cce9b85c6713f5b2.rlib: crates/turbobc/src/lib.rs crates/turbobc/src/approx.rs crates/turbobc/src/batched.rs crates/turbobc/src/checkpoint.rs crates/turbobc/src/closeness.rs crates/turbobc/src/dispatch/mod.rs crates/turbobc/src/dispatch/hybrid.rs crates/turbobc/src/dynamic/mod.rs crates/turbobc/src/edge.rs crates/turbobc/src/error.rs crates/turbobc/src/footprint.rs crates/turbobc/src/frontier.rs crates/turbobc/src/msbfs.rs crates/turbobc/src/multi_gpu.rs crates/turbobc/src/multi_gpu2d.rs crates/turbobc/src/observe/mod.rs crates/turbobc/src/observe/json.rs crates/turbobc/src/options.rs crates/turbobc/src/par.rs crates/turbobc/src/prep/mod.rs crates/turbobc/src/prep/components.rs crates/turbobc/src/prep/fold.rs crates/turbobc/src/prep/twins.rs crates/turbobc/src/result.rs crates/turbobc/src/seq.rs crates/turbobc/src/simt_engine/mod.rs crates/turbobc/src/simt_engine/kernels.rs crates/turbobc/src/solver.rs crates/turbobc/src/turbobfs.rs crates/turbobc/src/weighted.rs

/root/repo/target/debug/deps/libturbobc-cce9b85c6713f5b2.rmeta: crates/turbobc/src/lib.rs crates/turbobc/src/approx.rs crates/turbobc/src/batched.rs crates/turbobc/src/checkpoint.rs crates/turbobc/src/closeness.rs crates/turbobc/src/dispatch/mod.rs crates/turbobc/src/dispatch/hybrid.rs crates/turbobc/src/dynamic/mod.rs crates/turbobc/src/edge.rs crates/turbobc/src/error.rs crates/turbobc/src/footprint.rs crates/turbobc/src/frontier.rs crates/turbobc/src/msbfs.rs crates/turbobc/src/multi_gpu.rs crates/turbobc/src/multi_gpu2d.rs crates/turbobc/src/observe/mod.rs crates/turbobc/src/observe/json.rs crates/turbobc/src/options.rs crates/turbobc/src/par.rs crates/turbobc/src/prep/mod.rs crates/turbobc/src/prep/components.rs crates/turbobc/src/prep/fold.rs crates/turbobc/src/prep/twins.rs crates/turbobc/src/result.rs crates/turbobc/src/seq.rs crates/turbobc/src/simt_engine/mod.rs crates/turbobc/src/simt_engine/kernels.rs crates/turbobc/src/solver.rs crates/turbobc/src/turbobfs.rs crates/turbobc/src/weighted.rs

crates/turbobc/src/lib.rs:
crates/turbobc/src/approx.rs:
crates/turbobc/src/batched.rs:
crates/turbobc/src/checkpoint.rs:
crates/turbobc/src/closeness.rs:
crates/turbobc/src/dispatch/mod.rs:
crates/turbobc/src/dispatch/hybrid.rs:
crates/turbobc/src/dynamic/mod.rs:
crates/turbobc/src/edge.rs:
crates/turbobc/src/error.rs:
crates/turbobc/src/footprint.rs:
crates/turbobc/src/frontier.rs:
crates/turbobc/src/msbfs.rs:
crates/turbobc/src/multi_gpu.rs:
crates/turbobc/src/multi_gpu2d.rs:
crates/turbobc/src/observe/mod.rs:
crates/turbobc/src/observe/json.rs:
crates/turbobc/src/options.rs:
crates/turbobc/src/par.rs:
crates/turbobc/src/prep/mod.rs:
crates/turbobc/src/prep/components.rs:
crates/turbobc/src/prep/fold.rs:
crates/turbobc/src/prep/twins.rs:
crates/turbobc/src/result.rs:
crates/turbobc/src/seq.rs:
crates/turbobc/src/simt_engine/mod.rs:
crates/turbobc/src/simt_engine/kernels.rs:
crates/turbobc/src/solver.rs:
crates/turbobc/src/turbobfs.rs:
crates/turbobc/src/weighted.rs:

/root/repo/target/debug/deps/rayon-ed5b910dd8b776da.d: .typecheck/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ed5b910dd8b776da.rmeta: .typecheck/rayon/src/lib.rs

.typecheck/rayon/src/lib.rs:

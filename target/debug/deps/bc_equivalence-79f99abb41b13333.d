/root/repo/target/debug/deps/bc_equivalence-79f99abb41b13333.d: tests/bc_equivalence.rs

/root/repo/target/debug/deps/libbc_equivalence-79f99abb41b13333.rmeta: tests/bc_equivalence.rs

tests/bc_equivalence.rs:

/root/repo/target/debug/deps/turbobc_suite-f3a2172f4d9240c3.d: src/lib.rs

/root/repo/target/debug/deps/libturbobc_suite-f3a2172f4d9240c3.rlib: src/lib.rs

/root/repo/target/debug/deps/libturbobc_suite-f3a2172f4d9240c3.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/observe-b56e3de2ffaa8f80.d: tests/observe.rs Cargo.toml

/root/repo/target/debug/deps/libobserve-b56e3de2ffaa8f80.rmeta: tests/observe.rs Cargo.toml

tests/observe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

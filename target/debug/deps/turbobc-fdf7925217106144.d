/root/repo/target/debug/deps/turbobc-fdf7925217106144.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/libturbobc-fdf7925217106144.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:

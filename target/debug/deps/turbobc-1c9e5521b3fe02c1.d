/root/repo/target/debug/deps/turbobc-1c9e5521b3fe02c1.d: crates/cli/src/main.rs crates/cli/src/cli.rs

/root/repo/target/debug/deps/turbobc-1c9e5521b3fe02c1: crates/cli/src/main.rs crates/cli/src/cli.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:

/root/repo/target/debug/deps/pipeline-fb5553dba45cee0c.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-fb5553dba45cee0c.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/soak-20e3fc7aafb56786.d: crates/bench/src/bin/soak.rs

/root/repo/target/debug/deps/libsoak-20e3fc7aafb56786.rmeta: crates/bench/src/bin/soak.rs

crates/bench/src/bin/soak.rs:

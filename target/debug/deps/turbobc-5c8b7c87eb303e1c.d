/root/repo/target/debug/deps/turbobc-5c8b7c87eb303e1c.d: crates/cli/src/main.rs crates/cli/src/cli.rs crates/cli/src/updates.rs

/root/repo/target/debug/deps/turbobc-5c8b7c87eb303e1c: crates/cli/src/main.rs crates/cli/src/cli.rs crates/cli/src/updates.rs

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
crates/cli/src/updates.rs:

/root/repo/target/debug/deps/experiments-8c8f9ae114ee19f9.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-8c8f9ae114ee19f9.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

/root/repo/target/debug/deps/turbobc_bench-7a6140ef40b4600b.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/batched.rs crates/bench/src/experiments/direction.rs crates/bench/src/experiments/dispatch.rs crates/bench/src/experiments/dynamic.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/prep.rs crates/bench/src/experiments/tables.rs crates/bench/src/profiles.rs crates/bench/src/runner.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_bench-7a6140ef40b4600b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/batched.rs crates/bench/src/experiments/direction.rs crates/bench/src/experiments/dispatch.rs crates/bench/src/experiments/dynamic.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/prep.rs crates/bench/src/experiments/tables.rs crates/bench/src/profiles.rs crates/bench/src/runner.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/batched.rs:
crates/bench/src/experiments/direction.rs:
crates/bench/src/experiments/dispatch.rs:
crates/bench/src/experiments/dynamic.rs:
crates/bench/src/experiments/figures.rs:
crates/bench/src/experiments/prep.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/profiles.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

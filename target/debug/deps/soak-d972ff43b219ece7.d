/root/repo/target/debug/deps/soak-d972ff43b219ece7.d: crates/bench/src/bin/soak.rs

/root/repo/target/debug/deps/libsoak-d972ff43b219ece7.rmeta: crates/bench/src/bin/soak.rs

crates/bench/src/bin/soak.rs:

/root/repo/target/debug/deps/bc_equivalence-7fdc12ecedf53ae9.d: tests/bc_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbc_equivalence-7fdc12ecedf53ae9.rmeta: tests/bc_equivalence.rs Cargo.toml

tests/bc_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

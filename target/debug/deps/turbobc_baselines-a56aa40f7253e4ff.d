/root/repo/target/debug/deps/turbobc_baselines-a56aa40f7253e4ff.d: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/debug/deps/turbobc_baselines-a56aa40f7253e4ff: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/brandes.rs:
crates/baselines/src/gunrock_like.rs:
crates/baselines/src/gunrock_simt.rs:
crates/baselines/src/weighted_brandes.rs:

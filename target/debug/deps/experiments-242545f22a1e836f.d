/root/repo/target/debug/deps/experiments-242545f22a1e836f.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-242545f22a1e836f: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

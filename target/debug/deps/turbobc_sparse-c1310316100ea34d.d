/root/repo/target/debug/deps/turbobc_sparse-c1310316100ea34d.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

/root/repo/target/debug/deps/libturbobc_sparse-c1310316100ea34d.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/cooc.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ops.rs:
crates/sparse/src/scalar.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmm.rs:

/root/repo/target/debug/deps/soak-a9079a01d685a1dd.d: crates/bench/src/bin/soak.rs

/root/repo/target/debug/deps/soak-a9079a01d685a1dd: crates/bench/src/bin/soak.rs

crates/bench/src/bin/soak.rs:

/root/repo/target/debug/deps/turbobc_ligra-f6671219213f57b3.d: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/debug/deps/libturbobc_ligra-f6671219213f57b3.rmeta: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

crates/ligra/src/lib.rs:
crates/ligra/src/bc.rs:
crates/ligra/src/bfs.rs:
crates/ligra/src/edge_map.rs:
crates/ligra/src/frontier.rs:

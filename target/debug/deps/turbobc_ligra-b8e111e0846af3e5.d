/root/repo/target/debug/deps/turbobc_ligra-b8e111e0846af3e5.d: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/debug/deps/libturbobc_ligra-b8e111e0846af3e5.rmeta: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

crates/ligra/src/lib.rs:
crates/ligra/src/bc.rs:
crates/ligra/src/bfs.rs:
crates/ligra/src/edge_map.rs:
crates/ligra/src/frontier.rs:

/root/repo/target/debug/deps/bc_end_to_end-0b847043b56f2dd5.d: crates/bench/benches/bc_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libbc_end_to_end-0b847043b56f2dd5.rmeta: crates/bench/benches/bc_end_to_end.rs Cargo.toml

crates/bench/benches/bc_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/spmv_kernels-facd5d964d006c34.d: crates/bench/benches/spmv_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libspmv_kernels-facd5d964d006c34.rmeta: crates/bench/benches/spmv_kernels.rs Cargo.toml

crates/bench/benches/spmv_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

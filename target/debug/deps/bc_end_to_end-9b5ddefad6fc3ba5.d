/root/repo/target/debug/deps/bc_end_to_end-9b5ddefad6fc3ba5.d: crates/bench/benches/bc_end_to_end.rs

/root/repo/target/debug/deps/libbc_end_to_end-9b5ddefad6fc3ba5.rmeta: crates/bench/benches/bc_end_to_end.rs

crates/bench/benches/bc_end_to_end.rs:

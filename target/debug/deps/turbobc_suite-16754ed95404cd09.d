/root/repo/target/debug/deps/turbobc_suite-16754ed95404cd09.d: src/lib.rs

/root/repo/target/debug/deps/turbobc_suite-16754ed95404cd09: src/lib.rs

src/lib.rs:

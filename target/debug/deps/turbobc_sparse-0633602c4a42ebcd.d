/root/repo/target/debug/deps/turbobc_sparse-0633602c4a42ebcd.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs crates/sparse/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_sparse-0633602c4a42ebcd.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs crates/sparse/src/proptests.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/cooc.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/delta.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ops.rs:
crates/sparse/src/scalar.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmm.rs:
crates/sparse/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

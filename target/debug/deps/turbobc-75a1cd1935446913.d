/root/repo/target/debug/deps/turbobc-75a1cd1935446913.d: crates/cli/src/main.rs crates/cli/src/cli.rs crates/cli/src/updates.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc-75a1cd1935446913.rmeta: crates/cli/src/main.rs crates/cli/src/cli.rs crates/cli/src/updates.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/cli.rs:
crates/cli/src/updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

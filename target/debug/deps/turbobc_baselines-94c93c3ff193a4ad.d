/root/repo/target/debug/deps/turbobc_baselines-94c93c3ff193a4ad.d: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/debug/deps/libturbobc_baselines-94c93c3ff193a4ad.rmeta: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/brandes.rs:
crates/baselines/src/gunrock_like.rs:
crates/baselines/src/gunrock_simt.rs:
crates/baselines/src/weighted_brandes.rs:

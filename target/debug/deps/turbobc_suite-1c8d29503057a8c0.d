/root/repo/target/debug/deps/turbobc_suite-1c8d29503057a8c0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libturbobc_suite-1c8d29503057a8c0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

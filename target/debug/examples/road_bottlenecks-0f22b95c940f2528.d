/root/repo/target/debug/examples/road_bottlenecks-0f22b95c940f2528.d: examples/road_bottlenecks.rs

/root/repo/target/debug/examples/road_bottlenecks-0f22b95c940f2528: examples/road_bottlenecks.rs

examples/road_bottlenecks.rs:

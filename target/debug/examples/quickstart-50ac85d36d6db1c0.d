/root/repo/target/debug/examples/quickstart-50ac85d36d6db1c0.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-50ac85d36d6db1c0.rmeta: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/gpu_simulation-9f02f55236265454.d: examples/gpu_simulation.rs

/root/repo/target/debug/examples/libgpu_simulation-9f02f55236265454.rmeta: examples/gpu_simulation.rs

examples/gpu_simulation.rs:

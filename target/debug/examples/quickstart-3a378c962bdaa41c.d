/root/repo/target/debug/examples/quickstart-3a378c962bdaa41c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3a378c962bdaa41c: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/social_influencers-cf68bed84515ef20.d: examples/social_influencers.rs

/root/repo/target/debug/examples/social_influencers-cf68bed84515ef20: examples/social_influencers.rs

examples/social_influencers.rs:

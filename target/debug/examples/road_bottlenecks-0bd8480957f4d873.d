/root/repo/target/debug/examples/road_bottlenecks-0bd8480957f4d873.d: examples/road_bottlenecks.rs

/root/repo/target/debug/examples/libroad_bottlenecks-0bd8480957f4d873.rmeta: examples/road_bottlenecks.rs

examples/road_bottlenecks.rs:

/root/repo/target/debug/examples/weighted_logistics-edf6453e7600618f.d: examples/weighted_logistics.rs

/root/repo/target/debug/examples/libweighted_logistics-edf6453e7600618f.rmeta: examples/weighted_logistics.rs

examples/weighted_logistics.rs:

/root/repo/target/debug/examples/community_detection-9aef0dd3cb2a6240.d: examples/community_detection.rs

/root/repo/target/debug/examples/libcommunity_detection-9aef0dd3cb2a6240.rmeta: examples/community_detection.rs

examples/community_detection.rs:

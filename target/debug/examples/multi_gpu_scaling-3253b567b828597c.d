/root/repo/target/debug/examples/multi_gpu_scaling-3253b567b828597c.d: examples/multi_gpu_scaling.rs

/root/repo/target/debug/examples/multi_gpu_scaling-3253b567b828597c: examples/multi_gpu_scaling.rs

examples/multi_gpu_scaling.rs:

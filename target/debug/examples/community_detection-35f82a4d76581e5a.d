/root/repo/target/debug/examples/community_detection-35f82a4d76581e5a.d: examples/community_detection.rs

/root/repo/target/debug/examples/community_detection-35f82a4d76581e5a: examples/community_detection.rs

examples/community_detection.rs:

/root/repo/target/debug/examples/analytics_suite-0fc12369a80205b9.d: examples/analytics_suite.rs

/root/repo/target/debug/examples/libanalytics_suite-0fc12369a80205b9.rmeta: examples/analytics_suite.rs

examples/analytics_suite.rs:

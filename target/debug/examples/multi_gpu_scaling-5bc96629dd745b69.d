/root/repo/target/debug/examples/multi_gpu_scaling-5bc96629dd745b69.d: examples/multi_gpu_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_gpu_scaling-5bc96629dd745b69.rmeta: examples/multi_gpu_scaling.rs Cargo.toml

examples/multi_gpu_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

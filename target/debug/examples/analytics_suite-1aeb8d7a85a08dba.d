/root/repo/target/debug/examples/analytics_suite-1aeb8d7a85a08dba.d: examples/analytics_suite.rs

/root/repo/target/debug/examples/analytics_suite-1aeb8d7a85a08dba: examples/analytics_suite.rs

examples/analytics_suite.rs:

/root/repo/target/debug/examples/weighted_logistics-9697286d88226818.d: examples/weighted_logistics.rs Cargo.toml

/root/repo/target/debug/examples/libweighted_logistics-9697286d88226818.rmeta: examples/weighted_logistics.rs Cargo.toml

examples/weighted_logistics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/brain_network-d7cb4ba90edc8c11.d: examples/brain_network.rs Cargo.toml

/root/repo/target/debug/examples/libbrain_network-d7cb4ba90edc8c11.rmeta: examples/brain_network.rs Cargo.toml

examples/brain_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

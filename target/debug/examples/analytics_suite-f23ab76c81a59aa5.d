/root/repo/target/debug/examples/analytics_suite-f23ab76c81a59aa5.d: examples/analytics_suite.rs Cargo.toml

/root/repo/target/debug/examples/libanalytics_suite-f23ab76c81a59aa5.rmeta: examples/analytics_suite.rs Cargo.toml

examples/analytics_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/multi_gpu_scaling-3ac81de8eeeb9195.d: examples/multi_gpu_scaling.rs

/root/repo/target/debug/examples/libmulti_gpu_scaling-3ac81de8eeeb9195.rmeta: examples/multi_gpu_scaling.rs

examples/multi_gpu_scaling.rs:

/root/repo/target/debug/examples/social_influencers-bb2df4d7d0029832.d: examples/social_influencers.rs

/root/repo/target/debug/examples/libsocial_influencers-bb2df4d7d0029832.rmeta: examples/social_influencers.rs

examples/social_influencers.rs:

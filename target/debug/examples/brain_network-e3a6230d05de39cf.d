/root/repo/target/debug/examples/brain_network-e3a6230d05de39cf.d: examples/brain_network.rs

/root/repo/target/debug/examples/libbrain_network-e3a6230d05de39cf.rmeta: examples/brain_network.rs

examples/brain_network.rs:

/root/repo/target/debug/examples/brain_network-ae7596da52389bb1.d: examples/brain_network.rs

/root/repo/target/debug/examples/brain_network-ae7596da52389bb1: examples/brain_network.rs

examples/brain_network.rs:

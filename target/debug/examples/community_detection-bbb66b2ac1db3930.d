/root/repo/target/debug/examples/community_detection-bbb66b2ac1db3930.d: examples/community_detection.rs Cargo.toml

/root/repo/target/debug/examples/libcommunity_detection-bbb66b2ac1db3930.rmeta: examples/community_detection.rs Cargo.toml

examples/community_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/weighted_logistics-ef9fa2f92f27fb10.d: examples/weighted_logistics.rs

/root/repo/target/debug/examples/weighted_logistics-ef9fa2f92f27fb10: examples/weighted_logistics.rs

examples/weighted_logistics.rs:

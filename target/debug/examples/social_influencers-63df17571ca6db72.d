/root/repo/target/debug/examples/social_influencers-63df17571ca6db72.d: examples/social_influencers.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_influencers-63df17571ca6db72.rmeta: examples/social_influencers.rs Cargo.toml

examples/social_influencers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/gpu_simulation-11fa093dde17d18d.d: examples/gpu_simulation.rs Cargo.toml

/root/repo/target/debug/examples/libgpu_simulation-11fa093dde17d18d.rmeta: examples/gpu_simulation.rs Cargo.toml

examples/gpu_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/gpu_simulation-4136ab8ebf03ad56.d: examples/gpu_simulation.rs

/root/repo/target/debug/examples/gpu_simulation-4136ab8ebf03ad56: examples/gpu_simulation.rs

examples/gpu_simulation.rs:

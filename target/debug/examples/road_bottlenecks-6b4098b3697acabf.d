/root/repo/target/debug/examples/road_bottlenecks-6b4098b3697acabf.d: examples/road_bottlenecks.rs Cargo.toml

/root/repo/target/debug/examples/libroad_bottlenecks-6b4098b3697acabf.rmeta: examples/road_bottlenecks.rs Cargo.toml

examples/road_bottlenecks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

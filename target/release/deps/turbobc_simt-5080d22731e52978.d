/root/repo/target/release/deps/turbobc_simt-5080d22731e52978.d: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

/root/repo/target/release/deps/libturbobc_simt-5080d22731e52978.rlib: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

/root/repo/target/release/deps/libturbobc_simt-5080d22731e52978.rmeta: crates/simt/src/lib.rs crates/simt/src/buffer.rs crates/simt/src/cache.rs crates/simt/src/device.rs crates/simt/src/faults.rs crates/simt/src/interconnect.rs crates/simt/src/metrics.rs crates/simt/src/timing.rs crates/simt/src/warp.rs

crates/simt/src/lib.rs:
crates/simt/src/buffer.rs:
crates/simt/src/cache.rs:
crates/simt/src/device.rs:
crates/simt/src/faults.rs:
crates/simt/src/interconnect.rs:
crates/simt/src/metrics.rs:
crates/simt/src/timing.rs:
crates/simt/src/warp.rs:

/root/repo/target/release/deps/criterion-d75550509c3f28a1.d: .typecheck/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d75550509c3f28a1.rlib: .typecheck/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d75550509c3f28a1.rmeta: .typecheck/criterion/src/lib.rs

.typecheck/criterion/src/lib.rs:

/root/repo/target/release/deps/turbobc_ligra-2d576da852abe3cc.d: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/release/deps/libturbobc_ligra-2d576da852abe3cc.rlib: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

/root/repo/target/release/deps/libturbobc_ligra-2d576da852abe3cc.rmeta: crates/ligra/src/lib.rs crates/ligra/src/bc.rs crates/ligra/src/bfs.rs crates/ligra/src/edge_map.rs crates/ligra/src/frontier.rs

crates/ligra/src/lib.rs:
crates/ligra/src/bc.rs:
crates/ligra/src/bfs.rs:
crates/ligra/src/edge_map.rs:
crates/ligra/src/frontier.rs:

/root/repo/target/release/deps/rand-4700f4451e7298f9.d: .typecheck/rand/src/lib.rs

/root/repo/target/release/deps/librand-4700f4451e7298f9.rlib: .typecheck/rand/src/lib.rs

/root/repo/target/release/deps/librand-4700f4451e7298f9.rmeta: .typecheck/rand/src/lib.rs

.typecheck/rand/src/lib.rs:

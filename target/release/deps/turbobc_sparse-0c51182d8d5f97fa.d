/root/repo/target/release/deps/turbobc_sparse-0c51182d8d5f97fa.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

/root/repo/target/release/deps/libturbobc_sparse-0c51182d8d5f97fa.rlib: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

/root/repo/target/release/deps/libturbobc_sparse-0c51182d8d5f97fa.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/cooc.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/delta.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/ops.rs crates/sparse/src/scalar.rs crates/sparse/src/semiring.rs crates/sparse/src/spmm.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/cooc.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/delta.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/ops.rs:
crates/sparse/src/scalar.rs:
crates/sparse/src/semiring.rs:
crates/sparse/src/spmm.rs:

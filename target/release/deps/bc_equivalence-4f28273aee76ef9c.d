/root/repo/target/release/deps/bc_equivalence-4f28273aee76ef9c.d: tests/bc_equivalence.rs

/root/repo/target/release/deps/bc_equivalence-4f28273aee76ef9c: tests/bc_equivalence.rs

tests/bc_equivalence.rs:

/root/repo/target/release/deps/rand_chacha-bafff5af773632fd.d: .typecheck/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-bafff5af773632fd.rlib: .typecheck/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-bafff5af773632fd.rmeta: .typecheck/rand_chacha/src/lib.rs

.typecheck/rand_chacha/src/lib.rs:

/root/repo/target/release/deps/turbobc_baselines-60d8b534a921a892.d: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/release/deps/libturbobc_baselines-60d8b534a921a892.rlib: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

/root/repo/target/release/deps/libturbobc_baselines-60d8b534a921a892.rmeta: crates/baselines/src/lib.rs crates/baselines/src/brandes.rs crates/baselines/src/gunrock_like.rs crates/baselines/src/gunrock_simt.rs crates/baselines/src/weighted_brandes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/brandes.rs:
crates/baselines/src/gunrock_like.rs:
crates/baselines/src/gunrock_simt.rs:
crates/baselines/src/weighted_brandes.rs:

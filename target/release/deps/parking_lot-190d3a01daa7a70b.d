/root/repo/target/release/deps/parking_lot-190d3a01daa7a70b.d: .typecheck/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-190d3a01daa7a70b.rlib: .typecheck/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-190d3a01daa7a70b.rmeta: .typecheck/parking_lot/src/lib.rs

.typecheck/parking_lot/src/lib.rs:

/root/repo/target/release/deps/proptest-8f8073efd4fb7245.d: .typecheck/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-8f8073efd4fb7245.rlib: .typecheck/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-8f8073efd4fb7245.rmeta: .typecheck/proptest/src/lib.rs

.typecheck/proptest/src/lib.rs:

/root/repo/target/release/deps/rayon-dbdf49374fb2db4a.d: .typecheck/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-dbdf49374fb2db4a.rlib: .typecheck/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-dbdf49374fb2db4a.rmeta: .typecheck/rayon/src/lib.rs

.typecheck/rayon/src/lib.rs:

/root/repo/target/release/deps/experiments-d3abca72eb5b009f.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-d3abca72eb5b009f: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

/root/repo/target/release/deps/turbobc_suite-1d82fa9d11917de2.d: src/lib.rs

/root/repo/target/release/deps/libturbobc_suite-1d82fa9d11917de2.rlib: src/lib.rs

/root/repo/target/release/deps/libturbobc_suite-1d82fa9d11917de2.rmeta: src/lib.rs

src/lib.rs:

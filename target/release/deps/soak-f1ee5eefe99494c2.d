/root/repo/target/release/deps/soak-f1ee5eefe99494c2.d: crates/bench/src/bin/soak.rs

/root/repo/target/release/deps/soak-f1ee5eefe99494c2: crates/bench/src/bin/soak.rs

crates/bench/src/bin/soak.rs:

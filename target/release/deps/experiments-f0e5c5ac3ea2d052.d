/root/repo/target/release/deps/experiments-f0e5c5ac3ea2d052.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-f0e5c5ac3ea2d052: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:

//! Cross-crate equivalence: every BC implementation in the workspace —
//! TurboBC's three kernels × three engines, the gunrock-like baseline,
//! the mini-Ligra baseline — must agree with the queue-based Brandes
//! oracle on arbitrary graphs.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use turbobc_suite::baselines::brandes_single_source;
use turbobc_suite::baselines::gunrock_like::GunrockBc;
use turbobc_suite::graph::Graph;
use turbobc_suite::simt::Device;
use turbobc_suite::turbobc::{BcOptions, BcSolver, Engine, Kernel};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28, any::<bool>()).prop_flat_map(|(n, directed)| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..100)
            .prop_map(move |edges| Graph::from_edges(n, directed, &edges))
    })
}

fn assert_close(tag: &str, got: &[f64], want: &[f64]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() < 1e-7, "{tag}: bc[{i}] = {g}, want {w}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ligra_bfs_matches_reference(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let s = src_sel.index(g.n()) as u32;
        let reference = turbobc_suite::graph::bfs(&g, s);
        let (parent, levels) = turbobc_suite::ligra::bfs::bfs(&g, s);
        prop_assert_eq!(levels as u32, reference.height);
        for v in 0..g.n() {
            prop_assert_eq!(
                parent[v] >= 0,
                reference.depths[v] != 0,
                "vertex {} reachability mismatch", v
            );
        }
    }

    #[test]
    fn all_turbobc_engines_and_kernels_match_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
            for engine in [Engine::Sequential, Engine::Parallel] {
                let solver = BcSolver::new(&g, BcOptions::builder().kernel(kernel).engine(engine).build()).unwrap();
                let r = solver.bc_single_source(source).unwrap();
                assert_close(&format!("{:?}/{:?}", kernel, engine), &r.bc, &want);
            }
        }
    }

    #[test]
    fn simt_engine_matches_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        for kernel in [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc] {
            let solver = BcSolver::new(&g, BcOptions::builder().kernel(kernel).sequential().build()).unwrap();
            let dev = Device::titan_xp();
            let (r, _) = solver.run_simt_on(&dev, &[source]).expect("fits");
            assert_close(&format!("simt/{:?}", kernel), &r.bc, &want);
        }
    }

    #[test]
    fn baselines_match_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        assert_close("gunrock_like", &GunrockBc::new(&g).bc_single_source(source), &want);
        assert_close(
            "ligra",
            &turbobc_suite::ligra::bc::bc_single_source(&g, source),
            &want,
        );
        let gr = turbobc_suite::baselines::gunrock_simt::bc_single_source_simt(&g, source);
        assert_close("gunrock_simt", &gr.bc, &want);
    }

    #[test]
    fn sigma_and_depths_match_bfs_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_single_source(source).unwrap();
        let bfs = turbobc_suite::graph::bfs(&g, source);
        prop_assert_eq!(&r.depths, &bfs.depths);
        prop_assert_eq!(r.stats.max_depth, bfs.height);
        prop_assert_eq!(r.stats.last_reached, bfs.reached);
        // σ of the source is 1; unreached vertices have σ = 0.
        prop_assert_eq!(r.sigma[source as usize], 1);
        for v in 0..g.n() {
            prop_assert_eq!(bfs.depths[v] == 0, r.sigma[v] == 0, "vertex {}", v);
        }
    }
}

//! Cross-crate equivalence: every BC implementation in the workspace —
//! TurboBC's three kernels × three engines, the gunrock-like baseline,
//! the mini-Ligra baseline — must agree with the queue-based Brandes
//! oracle on arbitrary graphs.

#![allow(clippy::needless_range_loop)]
// The 0.2 entry points (`bc_sources`, `bc_batched`, `run_simt_on`, …)
// stay exercised here until removal: the deprecated shims must keep
// producing byte-identical results to their plan/execute replacements.
#![allow(deprecated)]

use proptest::prelude::*;
use turbobc_suite::baselines::gunrock_like::GunrockBc;
use turbobc_suite::baselines::{brandes_all_sources, brandes_single_source};
use turbobc_suite::graph::families::{self, Scale};
use turbobc_suite::graph::Graph;
use turbobc_suite::simt::{Device, DeviceProps};
use turbobc_suite::turbobc::observe::ProfileObserver;
use turbobc_suite::turbobc::{
    BcOptions, BcSolver, CostModel, DirectionMode, DispatchMode, Engine, ExecutorKind, Kernel,
    PrepMode,
};

const KERNELS: [Kernel; 3] = [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc];
const DIRECTIONS: [DirectionMode; 3] = [
    DirectionMode::Auto,
    DirectionMode::PushOnly,
    DirectionMode::PullOnly,
];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28, any::<bool>()).prop_flat_map(|(n, directed)| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..100)
            .prop_map(move |edges| Graph::from_edges(n, directed, &edges))
    })
}

fn assert_close(tag: &str, got: &[f64], want: &[f64]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() < 1e-7, "{tag}: bc[{i}] = {g}, want {w}");
    }
}

/// The differential battery: every engine (sequential, parallel, SIMT)
/// × kernel × direction mode against the Brandes oracle on the named
/// `graph::families` fixtures, to the issue's 1e-6 per-vertex bar with
/// the offending vertex reported on failure.
fn families_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        let s = g.default_source();
        let want = brandes_single_source(&g, s);
        // Reference combo: the paper's baseline path (scCSC, sequential,
        // pull). Fixtures whose path counts overflow `i64` saturate σ
        // identically in every TurboBC combo, so for those the oracle is
        // the cross-combo agreement, not the exact-arithmetic Brandes.
        let reference = BcSolver::new(
            &g,
            BcOptions::builder()
                .kernel(Kernel::ScCsc)
                .sequential()
                .direction(DirectionMode::PullOnly)
                .build(),
        )
        .unwrap()
        .bc_single_source(s)
        .unwrap();
        let saturated = reference.sigma.contains(&i64::MAX);
        let check = |tag: String, got: &[f64], sigma: &[i64], depths: &[u32]| {
            assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
            // 1e-6 absolute, graded to 1e-6 relative once |bc| exceeds
            // 1 (centrality on the big meshes reaches ~1e13, where f64
            // summation order alone moves the last few bits).
            let tol = |w: f64| 1e-6 * w.abs().max(1.0);
            if !saturated {
                for (v, (g, w)) in got.iter().zip(&want).enumerate() {
                    let diff = (g - w).abs();
                    assert!(
                        diff < tol(*w),
                        "{tag}: bc[{v}] = {g}, brandes says {w} (|diff| = {diff:.3e})"
                    );
                }
            }
            for (v, (g, w)) in got.iter().zip(&reference.bc).enumerate() {
                let diff = (g - w).abs();
                assert!(
                    diff < tol(*w),
                    "{tag}: bc[{v}] = {g}, reference combo says {w} (|diff| = {diff:.3e})"
                );
            }
            assert_eq!(sigma, &reference.sigma[..], "{tag}: σ mismatch");
            assert_eq!(depths, &reference.depths[..], "{tag}: depth mismatch");
        };
        for kernel in KERNELS {
            for direction in DIRECTIONS {
                for engine in [Engine::Sequential, Engine::Parallel] {
                    let solver = BcSolver::new(
                        &g,
                        BcOptions::builder()
                            .kernel(kernel)
                            .engine(engine)
                            .direction(direction)
                            .build(),
                    )
                    .unwrap();
                    let r = solver.bc_single_source(s).unwrap();
                    check(
                        format!("{name}/{kernel:?}/{engine:?}/{direction:?}"),
                        &r.bc,
                        &r.sigma,
                        &r.depths,
                    );
                }
                let solver = BcSolver::new(
                    &g,
                    BcOptions::builder()
                        .kernel(kernel)
                        .direction(direction)
                        .build(),
                )
                .unwrap();
                let dev = Device::titan_xp();
                let (r, _) = solver
                    .run_simt_on(&dev, &[s])
                    .expect("fixture fits on device");
                check(
                    format!("{name}/{kernel:?}/Simt/{direction:?}"),
                    &r.bc,
                    &r.sigma,
                    &r.depths,
                );
            }
        }
    }
}

/// The batched-engine differential battery: `BcSolver::bc_batched` over
/// all three kernels × push/pull × `b ∈ {1, 3, 64, 65}` (one width that
/// is not a multiple of 64, one that spills into a second lane word)
/// against the per-source engines and the summed Brandes oracle, to the
/// same graded 1e-6 bar as the per-source battery.
fn batched_battery_on(name: &str, g: &Graph, check_oracle: bool) {
    const WIDTHS: [usize; 4] = [1, 3, 64, 65];
    let n = g.n();
    if n == 0 {
        return;
    }
    let count = n.min(9);
    let sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
    // Per-source references: the paper's baseline combo (scCSC,
    // sequential, pull) plus the parallel engine.
    let ref_solver = BcSolver::new(
        g,
        BcOptions::builder()
            .kernel(Kernel::ScCsc)
            .sequential()
            .direction(DirectionMode::PullOnly)
            .build(),
    )
    .unwrap();
    let reference = ref_solver.bc_sources(&sources).unwrap();
    let parallel = BcSolver::new(g, BcOptions::builder().parallel().build())
        .unwrap()
        .bc_sources(&sources)
        .unwrap();
    // Any source whose path counts saturate σ puts the fixture beyond
    // the exact-arithmetic Brandes (all TurboBC combos clamp
    // identically, so the reference combo stays the oracle).
    let saturated = !check_oracle
        || sources.iter().any(|&s| {
            ref_solver
                .bc_single_source(s)
                .unwrap()
                .sigma
                .contains(&i64::MAX)
        });
    let want: Vec<f64> = if !saturated {
        let mut acc = vec![0.0f64; n];
        for &s in &sources {
            for (a, b) in acc.iter_mut().zip(brandes_single_source(g, s)) {
                *a += b;
            }
        }
        acc
    } else {
        reference.bc.clone()
    };
    let tol = |w: f64| 1e-6 * w.abs().max(1.0);
    let check = |tag: &str, got: &[f64], other: &[f64], label: &str| {
        assert_eq!(got.len(), n, "{tag}: length mismatch");
        for (v, (g, w)) in got.iter().zip(other).enumerate() {
            let diff = (g - w).abs();
            assert!(
                diff < tol(*w),
                "{tag}: bc[{v}] = {g}, {label} says {w} (|diff| = {diff:.3e})"
            );
        }
    };
    check(
        &format!("{name}/parallel-reference"),
        &parallel.bc,
        &want,
        "oracle",
    );
    for kernel in KERNELS {
        for direction in [DirectionMode::PushOnly, DirectionMode::PullOnly] {
            for b in WIDTHS {
                let solver = BcSolver::new(
                    g,
                    BcOptions::builder()
                        .kernel(kernel)
                        .direction(direction)
                        .batch_width(b)
                        .build(),
                )
                .unwrap();
                let r = solver.bc_batched(&sources).unwrap();
                let tag = format!("{name}/{kernel:?}/{direction:?}/b={b}");
                check(&tag, &r.bc, &want, "oracle");
                check(&tag, &r.bc, &reference.bc, "per-source reference");
                // The last source's lane must extract the same σ/depths
                // the per-source run produced.
                assert_eq!(r.sigma, reference.sigma, "{tag}: σ mismatch");
                assert_eq!(r.depths, reference.depths, "{tag}: depth mismatch");
            }
        }
    }
}

fn batched_families_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        batched_battery_on(name, &g, true);
    }
}

/// Always-on slice of the batched battery, mirroring the per-source
/// subset below.
#[test]
fn batched_families_subset_matches_per_source_engines() {
    batched_families_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The batched battery over every paper fixture. Run by the release CI
/// job (`--include-ignored`) under its wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full batched differential battery; run under --release"
)]
fn full_batched_families_battery_matches_per_source_engines() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    batched_families_battery(&names, Scale::Tiny);
}

/// A σ-saturating fixture: a chain of 70 doubling diamonds drives the
/// path counts past `i64::MAX`, so every combo must clamp identically
/// (the Brandes oracle, with exact arithmetic, is out of scope here).
#[test]
fn batched_engine_saturates_sigma_like_the_per_source_engines() {
    let stages = 70usize;
    let mut edges = Vec::new();
    // Vertex 0 is the source; stage i occupies vertices 2i+1 and 2i+2.
    edges.push((0u32, 1u32));
    edges.push((0, 2));
    for i in 0..stages - 1 {
        let (a, b) = (2 * i as u32 + 1, 2 * i as u32 + 2);
        let (c, d) = (a + 2, b + 2);
        edges.extend([(a, c), (a, d), (b, c), (b, d)]);
    }
    let g = Graph::from_edges(2 * stages + 1, true, &edges);
    let sat = BcSolver::new(&g, BcOptions::default())
        .unwrap()
        .bc_single_source(0)
        .unwrap();
    assert!(
        sat.sigma.contains(&i64::MAX),
        "fixture must actually saturate σ"
    );
    batched_battery_on("sigma-doubler", &g, false);
}

const PREPS: [PrepMode; 3] = [PrepMode::Auto, PrepMode::ComponentsOnly, PrepMode::Full];

/// The prep differential battery: every resolved prep mode × engine
/// (sequential, parallel, batched, SIMT) against the same engine with
/// prep off — and, where `check_oracle` holds, against the summed
/// Brandes oracle — to the issue's 1e-6 per-vertex bar.
///
/// All-sources runs exercise the weighted fold/twin reconstruction;
/// fixtures too large for that fall back to a spread 64-source slice
/// (which routes the full plan through the components grouping instead —
/// a different code path, equally required to be exact).
fn prep_battery_on(name: &str, g: &Graph, check_oracle: bool) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let sources: Vec<u32> = if n <= 2_000 {
        (0..n as u32).collect()
    } else {
        (0..64).map(|i| (i * n / 64) as u32).collect()
    };
    let tol = |w: f64| 1e-6 * w.abs().max(1.0);
    let check = |tag: String, got: &[f64], want: &[f64]| {
        assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
        for (v, (gv, wv)) in got.iter().zip(want).enumerate() {
            let diff = (gv - wv).abs();
            assert!(
                diff < tol(*wv),
                "{tag}: bc[{v}] = {gv}, prep-off says {wv} (|diff| = {diff:.3e})"
            );
        }
    };
    let build = |prep: PrepMode, engine: Engine| {
        BcSolver::new(g, BcOptions::builder().prep(prep).engine(engine).build()).unwrap()
    };
    let off = build(PrepMode::Off, Engine::Sequential)
        .bc_sources(&sources)
        .unwrap();
    if check_oracle && sources.len() == n {
        check(
            format!("{name}/off-vs-brandes"),
            &off.bc,
            &brandes_all_sources(g),
        );
    }
    for prep in PREPS {
        for engine in [Engine::Sequential, Engine::Parallel] {
            let r = build(prep, engine).bc_sources(&sources).unwrap();
            check(format!("{name}/{prep:?}/{engine:?}"), &r.bc, &off.bc);
        }
        let r = BcSolver::new(g, BcOptions::builder().prep(prep).batch_width(64).build())
            .unwrap()
            .bc_batched(&sources)
            .unwrap();
        check(format!("{name}/{prep:?}/batched"), &r.bc, &off.bc);
    }
    // SIMT on a thin source slice: the simulator is orders slower than
    // the CPU engines, and its prep routing (explicit modes, component
    // grouping) does not depend on the source count.
    let simt_sources: Vec<u32> = sources.iter().copied().take(4).collect();
    let want_simt = build(PrepMode::Off, Engine::Sequential)
        .bc_sources(&simt_sources)
        .unwrap();
    for prep in PREPS {
        let solver = BcSolver::new(g, BcOptions::builder().prep(prep).build()).unwrap();
        let dev = Device::titan_xp();
        let (r, _) = solver
            .run_simt_on(&dev, &simt_sources)
            .expect("fixture fits on device");
        check(format!("{name}/{prep:?}/simt"), &r.bc, &want_simt.bc);
    }
}

/// Always-on slice of the prep battery: the tree-heavy / disconnected
/// stress fixtures, where every reduction stage actually fires.
#[test]
fn prep_battery_on_stress_fixtures() {
    for &name in families::STRESS_FIXTURES {
        let g = families::generate(name, Scale::Tiny).expect("stress fixture");
        prep_battery_on(name, &g, true);
    }
}

/// The prep battery over every paper fixture plus the stress set. Run by
/// the release CI job (`--include-ignored`) under its wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full prep differential battery; run under --release"
)]
fn full_prep_battery_over_all_fixtures() {
    let rows = families::all_rows();
    for row in &rows {
        let g = families::generate(row.name, Scale::Tiny).expect("known fixture");
        prep_battery_on(row.name, &g, false);
    }
    for &name in families::STRESS_FIXTURES {
        let g = families::generate(name, Scale::Tiny).expect("stress fixture");
        prep_battery_on(name, &g, false);
    }
}

/// Always-on slice of the battery: one fixture per structural class
/// (mesh, road, power-law), small enough for debug builds.
#[test]
fn families_subset_matches_brandes_in_every_mode() {
    families_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The full battery over every paper fixture — larger graphs, all
/// 3 engines × 3 kernels × 3 directions each. Run by the release CI
/// job (`--include-ignored`) under its wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full differential battery; run under --release"
)]
fn full_families_battery_matches_brandes() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    families_battery(&names, Scale::Tiny);
}

/// Every executor a BC plan can pin. TurboBFS is BFS-only and is
/// covered by [`deprecated_shims_match_plan_execute`] instead.
const BC_EXECUTORS: [ExecutorKind; 5] = [
    ExecutorKind::CpuSequential,
    ExecutorKind::CpuParallel,
    ExecutorKind::Batched,
    ExecutorKind::Simt,
    ExecutorKind::Hybrid,
];

/// The dispatch differential battery: `DispatchMode::CostModel` against
/// every pinned executor on the named fixtures, to the same graded 1e-6
/// bar as the per-source battery, with σ/depth surfaces compared
/// exactly. Also asserts the cost-model run actually traced its
/// scheduling decisions as RunProfile dispatch events.
fn dispatch_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        let n = g.n();
        if n == 0 {
            continue;
        }
        let count = n.min(4);
        let sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
        let solver = BcSolver::new(
            &g,
            BcOptions::builder()
                .dispatch(DispatchMode::CostModel)
                .build(),
        )
        .unwrap();
        let mut obs = ProfileObserver::new();
        let cost_plan = solver.plan(&sources).unwrap();
        let cost = solver
            .execute_observed(&cost_plan, &mut obs)
            .unwrap()
            .into_bc()
            .expect("BC plans produce a BC result");
        let profile = obs.into_profile();
        assert!(
            !profile.dispatch.is_empty(),
            "{name}: cost-model run must trace its dispatch decisions"
        );
        let tol = |w: f64| 1e-6 * w.abs().max(1.0);
        for kind in BC_EXECUTORS {
            let plan = solver.plan_pinned(kind, &sources).unwrap();
            let r = solver
                .execute(&plan)
                .unwrap()
                .into_bc()
                .expect("BC plans produce a BC result");
            let tag = format!("{name}/cost-vs-{}", kind.name());
            assert_eq!(r.bc.len(), cost.bc.len(), "{tag}: length mismatch");
            for (v, (gv, wv)) in r.bc.iter().zip(&cost.bc).enumerate() {
                let diff = (gv - wv).abs();
                assert!(
                    diff < tol(*wv),
                    "{tag}: bc[{v}] = {gv}, cost plan says {wv} (|diff| = {diff:.3e})"
                );
            }
            // Forward state is integer-exact across every executor.
            assert_eq!(r.sigma, cost.sigma, "{tag}: σ mismatch");
            assert_eq!(r.depths, cost.depths, "{tag}: depth mismatch");
        }
    }
}

/// Always-on slice of the dispatch battery, mirroring the per-source
/// subset: one fixture per structural class.
#[test]
fn dispatch_battery_cost_model_matches_every_pinned_executor() {
    dispatch_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The dispatch battery over every paper fixture plus the stress set.
/// Run by the release CI job (`--include-ignored`) under its wall-clock
/// guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full dispatch differential battery; run under --release"
)]
fn full_dispatch_battery_over_all_fixtures() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    dispatch_battery(&names, Scale::Tiny);
    dispatch_battery(families::STRESS_FIXTURES, Scale::Tiny);
}

/// Every deprecated 0.2 entry point must produce the same result
/// payload (bc, σ, depths — and for MS-BFS: depths, heights, sweeps) as
/// the plan/execute pipeline it now wraps.
#[test]
fn deprecated_shims_match_plan_execute() {
    let g = families::generate("kron_g500-logn18", Scale::Tiny).expect("known family fixture");
    let n = g.n();
    let sources: Vec<u32> = (0..6).map(|i| (i * n / 6) as u32).collect();
    let solver = BcSolver::new(&g, BcOptions::builder().parallel().build()).unwrap();

    let old = solver.bc_sources(&sources).unwrap();
    let plan = solver
        .plan_pinned(ExecutorKind::CpuParallel, &sources)
        .unwrap();
    let new = solver.execute(&plan).unwrap().into_bc().unwrap();
    assert_eq!(old.bc, new.bc, "bc_sources shim diverged");
    assert_eq!(old.sigma, new.sigma);
    assert_eq!(old.depths, new.depths);

    let old = solver.bc_batched(&sources).unwrap();
    let plan = solver.plan_pinned(ExecutorKind::Batched, &sources).unwrap();
    let new = solver.execute(&plan).unwrap().into_bc().unwrap();
    assert_eq!(old.bc, new.bc, "bc_batched shim diverged");
    assert_eq!(old.sigma, new.sigma);
    assert_eq!(old.depths, new.depths);

    let dev = Device::titan_xp();
    let (old, old_report) = solver.run_simt_on(&dev, &sources[..2]).unwrap();
    let plan = solver
        .plan_pinned(ExecutorKind::Simt, &sources[..2])
        .unwrap();
    let dev2 = Device::titan_xp();
    let ex = solver.execute_on(&dev2, &plan).unwrap();
    let new_report = ex
        .simt_report()
        .cloned()
        .expect("SIMT plans carry a report");
    let new = ex.into_bc().unwrap();
    assert_eq!(old.bc, new.bc, "run_simt_on shim diverged");
    assert_eq!(old.sigma, new.sigma);
    assert_eq!(old.depths, new.depths);
    assert_eq!(old_report.memory.peak, new_report.memory.peak);

    let old = solver.ms_bfs(&sources).unwrap();
    let plan = solver.plan_ms_bfs(&sources).unwrap();
    let new = solver.execute(&plan).unwrap().into_ms_bfs().unwrap();
    assert_eq!(old.depths, new.depths, "ms_bfs shim diverged");
    assert_eq!(old.heights, new.heights);
    assert_eq!(old.sweeps, new.sweeps);
}

/// A random core with a random forest glued on: `core_n` vertices wired
/// arbitrarily (possibly disconnected), plus `tree_n` extra vertices
/// each attached to one uniformly random earlier vertex — so the added
/// part is always a forest of pendant subtrees, exactly what the
/// degree-1 fold consumes.
fn arb_glued_forest() -> impl Strategy<Value = Graph> {
    (3usize..14, 0usize..36, 1usize..22).prop_flat_map(|(core_n, core_m, tree_n)| {
        let core_edge = (0..core_n as u32, 0..core_n as u32);
        (
            proptest::collection::vec(core_edge, core_m),
            proptest::collection::vec(any::<prop::sample::Index>(), tree_n),
        )
            .prop_map(move |(mut edges, parents)| {
                for (i, p) in parents.into_iter().enumerate() {
                    let v = (core_n + i) as u32;
                    edges.push((p.index(core_n + i) as u32, v));
                }
                Graph::from_edges(core_n + tree_n, false, &edges)
            })
    })
}

fn assert_prep_exact(tag: &str, g: &Graph) {
    let off = BcSolver::new(g, BcOptions::builder().prep(PrepMode::Off).build())
        .unwrap()
        .bc_exact()
        .unwrap();
    let tol = |w: f64| 1e-6 * w.abs().max(1.0);
    let mut runs: Vec<(String, Vec<f64>)> = Vec::new();
    for prep in PREPS {
        for engine in [Engine::Sequential, Engine::Parallel] {
            let r = BcSolver::new(g, BcOptions::builder().prep(prep).engine(engine).build())
                .unwrap()
                .bc_exact()
                .unwrap();
            runs.push((format!("{tag}/{prep:?}/{engine:?}"), r.bc));
        }
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let r = BcSolver::new(g, BcOptions::builder().prep(prep).batch_width(8).build())
            .unwrap()
            .bc_batched(&sources)
            .unwrap();
        runs.push((format!("{tag}/{prep:?}/batched"), r.bc));
    }
    for (run_tag, bc) in runs {
        for (v, (gv, wv)) in bc.iter().zip(&off.bc).enumerate() {
            let diff = (gv - wv).abs();
            assert!(
                diff < tol(*wv),
                "{run_tag}: bc[{v}] = {gv}, prep-off says {wv} (|diff| = {diff:.3e})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Folding + reconstruction is exact on random forests glued to
    /// random cores, across every prep mode and engine.
    #[test]
    fn prep_reconstruction_is_exact_on_glued_forests(g in arb_glued_forest()) {
        assert_prep_exact("glued-forest", &g);
    }

    /// The twin-attachment variant: `k` new vertices sharing one random
    /// open neighbourhood join the glued forest, so the twin compression
    /// stage fires alongside the fold.
    #[test]
    fn prep_reconstruction_is_exact_with_twin_attachments(
        g in arb_glued_forest(),
        k in 2usize..6,
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let n0 = g.n();
        let mut edges: Vec<(u32, u32)> = g.edges().filter(|&(u, v)| u <= v).collect();
        let mut nbrs: Vec<u32> = picks.iter().map(|p| p.index(n0) as u32).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        for t in 0..k {
            for &u in &nbrs {
                edges.push((u, (n0 + t) as u32));
            }
        }
        let g2 = Graph::from_edges(n0 + k, false, &edges);
        assert_prep_exact("twin-attach", &g2);
    }

    #[test]
    fn ligra_bfs_matches_reference(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let s = src_sel.index(g.n()) as u32;
        let reference = turbobc_suite::graph::bfs(&g, s);
        let (parent, levels) = turbobc_suite::ligra::bfs::bfs(&g, s);
        prop_assert_eq!(levels as u32, reference.height);
        for v in 0..g.n() {
            prop_assert_eq!(
                parent[v] >= 0,
                reference.depths[v] != 0,
                "vertex {} reachability mismatch", v
            );
        }
    }

    #[test]
    fn all_turbobc_engines_and_kernels_match_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        for kernel in KERNELS {
            for engine in [Engine::Sequential, Engine::Parallel] {
                for direction in DIRECTIONS {
                    let solver = BcSolver::new(
                        &g,
                        BcOptions::builder().kernel(kernel).engine(engine).direction(direction).build(),
                    ).unwrap();
                    let r = solver.bc_single_source(source).unwrap();
                    assert_close(&format!("{:?}/{:?}/{:?}", kernel, engine, direction), &r.bc, &want);
                }
            }
        }
    }

    #[test]
    fn simt_engine_matches_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        for kernel in KERNELS {
            for direction in DIRECTIONS {
                let solver = BcSolver::new(
                    &g,
                    BcOptions::builder().kernel(kernel).sequential().direction(direction).build(),
                ).unwrap();
                let dev = Device::titan_xp();
                let (r, _) = solver.run_simt_on(&dev, &[source]).expect("fits");
                assert_close(&format!("simt/{:?}/{:?}", kernel, direction), &r.bc, &want);
            }
        }
    }

    #[test]
    fn baselines_match_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        assert_close("gunrock_like", &GunrockBc::new(&g).bc_single_source(source), &want);
        assert_close(
            "ligra",
            &turbobc_suite::ligra::bc::bc_single_source(&g, source),
            &want,
        );
        let gr = turbobc_suite::baselines::gunrock_simt::bc_single_source_simt(&g, source);
        assert_close("gunrock_simt", &gr.bc, &want);
    }

    /// Mid-run CPU↔SIMT handoff is invisible in the result: a hybrid
    /// traversal that hands its dense middle to the device (the
    /// device-biased cost model makes every dense band eligible) must
    /// produce bit-identical σ, depths and δ-accumulated bc to the same
    /// hybrid path with the device inadmissible (zero-byte budget), and
    /// match the Brandes oracle.
    #[test]
    fn hybrid_handoff_preserves_sigma_depth_delta(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let run = |mem: u64| {
            let mut props = DeviceProps::titan_xp();
            props.global_mem_bytes = mem;
            let solver = BcSolver::new(
                &g,
                BcOptions::builder()
                    .cost_model(CostModel::device_biased())
                    .device(props)
                    .build(),
            )
            .unwrap();
            let plan = solver.plan_pinned(ExecutorKind::Hybrid, &[source]).unwrap();
            solver
                .execute(&plan)
                .unwrap()
                .into_bc()
                .expect("BC plans produce a BC result")
        };
        let with_device = run(DeviceProps::titan_xp().global_mem_bytes);
        let cpu_only = run(0);
        prop_assert_eq!(&with_device.sigma, &cpu_only.sigma, "σ perturbed by handoff");
        prop_assert_eq!(&with_device.depths, &cpu_only.depths, "depths perturbed by handoff");
        prop_assert_eq!(&with_device.bc, &cpu_only.bc, "δ accumulation perturbed by handoff");
        let want = brandes_single_source(&g, source);
        assert_close("hybrid-handoff", &with_device.bc, &want);
    }

    #[test]
    fn sigma_and_depths_match_bfs_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_single_source(source).unwrap();
        let bfs = turbobc_suite::graph::bfs(&g, source);
        prop_assert_eq!(&r.depths, &bfs.depths);
        prop_assert_eq!(r.stats.max_depth, bfs.height);
        prop_assert_eq!(r.stats.last_reached, bfs.reached);
        // σ of the source is 1; unreached vertices have σ = 0.
        prop_assert_eq!(r.sigma[source as usize], 1);
        for v in 0..g.n() {
            prop_assert_eq!(bfs.depths[v] == 0, r.sigma[v] == 0, "vertex {}", v);
        }
    }
}

//! Cross-crate equivalence: every BC implementation in the workspace —
//! TurboBC's three kernels × three engines, the gunrock-like baseline,
//! the mini-Ligra baseline — must agree with the queue-based Brandes
//! oracle on arbitrary graphs.

#![allow(clippy::needless_range_loop)]
// The 0.2 entry points (`bc_sources`, `bc_batched`, `run_simt_on`, …)
// stay exercised here until removal: the deprecated shims must keep
// producing byte-identical results to their plan/execute replacements.
#![allow(deprecated)]

use proptest::prelude::*;
use turbobc_suite::baselines::gunrock_like::GunrockBc;
use turbobc_suite::baselines::{brandes_all_sources, brandes_single_source};
use turbobc_suite::graph::families::{self, Scale};
use turbobc_suite::graph::Graph;
use turbobc_suite::simt::{Device, DeviceProps};
use turbobc_suite::turbobc::observe::ProfileObserver;
use turbobc_suite::turbobc::{
    BcOptions, BcSolver, CostModel, DirectionMode, DispatchMode, DynamicBc, DynamicGraph,
    EdgeUpdate, Engine, ExecutorKind, Kernel, PrepMode,
};

const KERNELS: [Kernel; 3] = [Kernel::ScCooc, Kernel::ScCsc, Kernel::VeCsc];
const DIRECTIONS: [DirectionMode; 3] = [
    DirectionMode::Auto,
    DirectionMode::PushOnly,
    DirectionMode::PullOnly,
];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28, any::<bool>()).prop_flat_map(|(n, directed)| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..100)
            .prop_map(move |edges| Graph::from_edges(n, directed, &edges))
    })
}

fn assert_close(tag: &str, got: &[f64], want: &[f64]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() < 1e-7, "{tag}: bc[{i}] = {g}, want {w}");
    }
}

/// The differential battery: every engine (sequential, parallel, SIMT)
/// × kernel × direction mode against the Brandes oracle on the named
/// `graph::families` fixtures, to the issue's 1e-6 per-vertex bar with
/// the offending vertex reported on failure.
fn families_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        let s = g.default_source();
        let want = brandes_single_source(&g, s);
        // Reference combo: the paper's baseline path (scCSC, sequential,
        // pull). Fixtures whose path counts overflow `i64` saturate σ
        // identically in every TurboBC combo, so for those the oracle is
        // the cross-combo agreement, not the exact-arithmetic Brandes.
        let reference = BcSolver::new(
            &g,
            BcOptions::builder()
                .kernel(Kernel::ScCsc)
                .sequential()
                .direction(DirectionMode::PullOnly)
                .build(),
        )
        .unwrap()
        .bc_single_source(s)
        .unwrap();
        let saturated = reference.sigma.contains(&i64::MAX);
        let check = |tag: String, got: &[f64], sigma: &[i64], depths: &[u32]| {
            assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
            // 1e-6 absolute, graded to 1e-6 relative once |bc| exceeds
            // 1 (centrality on the big meshes reaches ~1e13, where f64
            // summation order alone moves the last few bits).
            let tol = |w: f64| 1e-6 * w.abs().max(1.0);
            if !saturated {
                for (v, (g, w)) in got.iter().zip(&want).enumerate() {
                    let diff = (g - w).abs();
                    assert!(
                        diff < tol(*w),
                        "{tag}: bc[{v}] = {g}, brandes says {w} (|diff| = {diff:.3e})"
                    );
                }
            }
            for (v, (g, w)) in got.iter().zip(&reference.bc).enumerate() {
                let diff = (g - w).abs();
                assert!(
                    diff < tol(*w),
                    "{tag}: bc[{v}] = {g}, reference combo says {w} (|diff| = {diff:.3e})"
                );
            }
            assert_eq!(sigma, &reference.sigma[..], "{tag}: σ mismatch");
            assert_eq!(depths, &reference.depths[..], "{tag}: depth mismatch");
        };
        for kernel in KERNELS {
            for direction in DIRECTIONS {
                for engine in [Engine::Sequential, Engine::Parallel] {
                    let solver = BcSolver::new(
                        &g,
                        BcOptions::builder()
                            .kernel(kernel)
                            .engine(engine)
                            .direction(direction)
                            .build(),
                    )
                    .unwrap();
                    let r = solver.bc_single_source(s).unwrap();
                    check(
                        format!("{name}/{kernel:?}/{engine:?}/{direction:?}"),
                        &r.bc,
                        &r.sigma,
                        &r.depths,
                    );
                }
                let solver = BcSolver::new(
                    &g,
                    BcOptions::builder()
                        .kernel(kernel)
                        .direction(direction)
                        .build(),
                )
                .unwrap();
                let dev = Device::titan_xp();
                let (r, _) = solver
                    .run_simt_on(&dev, &[s])
                    .expect("fixture fits on device");
                check(
                    format!("{name}/{kernel:?}/Simt/{direction:?}"),
                    &r.bc,
                    &r.sigma,
                    &r.depths,
                );
            }
        }
    }
}

/// The batched-engine differential battery: `BcSolver::bc_batched` over
/// all three kernels × push/pull × `b ∈ {1, 3, 64, 65}` (one width that
/// is not a multiple of 64, one that spills into a second lane word)
/// against the per-source engines and the summed Brandes oracle, to the
/// same graded 1e-6 bar as the per-source battery.
fn batched_battery_on(name: &str, g: &Graph, check_oracle: bool) {
    const WIDTHS: [usize; 4] = [1, 3, 64, 65];
    let n = g.n();
    if n == 0 {
        return;
    }
    let count = n.min(9);
    let sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
    // Per-source references: the paper's baseline combo (scCSC,
    // sequential, pull) plus the parallel engine.
    let ref_solver = BcSolver::new(
        g,
        BcOptions::builder()
            .kernel(Kernel::ScCsc)
            .sequential()
            .direction(DirectionMode::PullOnly)
            .build(),
    )
    .unwrap();
    let reference = ref_solver.bc_sources(&sources).unwrap();
    let parallel = BcSolver::new(g, BcOptions::builder().parallel().build())
        .unwrap()
        .bc_sources(&sources)
        .unwrap();
    // Any source whose path counts saturate σ puts the fixture beyond
    // the exact-arithmetic Brandes (all TurboBC combos clamp
    // identically, so the reference combo stays the oracle).
    let saturated = !check_oracle
        || sources.iter().any(|&s| {
            ref_solver
                .bc_single_source(s)
                .unwrap()
                .sigma
                .contains(&i64::MAX)
        });
    let want: Vec<f64> = if !saturated {
        let mut acc = vec![0.0f64; n];
        for &s in &sources {
            for (a, b) in acc.iter_mut().zip(brandes_single_source(g, s)) {
                *a += b;
            }
        }
        acc
    } else {
        reference.bc.clone()
    };
    let tol = |w: f64| 1e-6 * w.abs().max(1.0);
    let check = |tag: &str, got: &[f64], other: &[f64], label: &str| {
        assert_eq!(got.len(), n, "{tag}: length mismatch");
        for (v, (g, w)) in got.iter().zip(other).enumerate() {
            let diff = (g - w).abs();
            assert!(
                diff < tol(*w),
                "{tag}: bc[{v}] = {g}, {label} says {w} (|diff| = {diff:.3e})"
            );
        }
    };
    check(
        &format!("{name}/parallel-reference"),
        &parallel.bc,
        &want,
        "oracle",
    );
    for kernel in KERNELS {
        for direction in [DirectionMode::PushOnly, DirectionMode::PullOnly] {
            for b in WIDTHS {
                let solver = BcSolver::new(
                    g,
                    BcOptions::builder()
                        .kernel(kernel)
                        .direction(direction)
                        .batch_width(b)
                        .build(),
                )
                .unwrap();
                let r = solver.bc_batched(&sources).unwrap();
                let tag = format!("{name}/{kernel:?}/{direction:?}/b={b}");
                check(&tag, &r.bc, &want, "oracle");
                check(&tag, &r.bc, &reference.bc, "per-source reference");
                // The last source's lane must extract the same σ/depths
                // the per-source run produced.
                assert_eq!(r.sigma, reference.sigma, "{tag}: σ mismatch");
                assert_eq!(r.depths, reference.depths, "{tag}: depth mismatch");
            }
        }
    }
}

fn batched_families_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        batched_battery_on(name, &g, true);
    }
}

/// Always-on slice of the batched battery, mirroring the per-source
/// subset below.
#[test]
fn batched_families_subset_matches_per_source_engines() {
    batched_families_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The batched battery over every paper fixture. Run by the release CI
/// job (`--include-ignored`) under its wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full batched differential battery; run under --release"
)]
fn full_batched_families_battery_matches_per_source_engines() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    batched_families_battery(&names, Scale::Tiny);
}

/// A σ-saturating fixture: a chain of 70 doubling diamonds drives the
/// path counts past `i64::MAX`, so every combo must clamp identically
/// (the Brandes oracle, with exact arithmetic, is out of scope here).
#[test]
fn batched_engine_saturates_sigma_like_the_per_source_engines() {
    let stages = 70usize;
    let mut edges = Vec::new();
    // Vertex 0 is the source; stage i occupies vertices 2i+1 and 2i+2.
    edges.push((0u32, 1u32));
    edges.push((0, 2));
    for i in 0..stages - 1 {
        let (a, b) = (2 * i as u32 + 1, 2 * i as u32 + 2);
        let (c, d) = (a + 2, b + 2);
        edges.extend([(a, c), (a, d), (b, c), (b, d)]);
    }
    let g = Graph::from_edges(2 * stages + 1, true, &edges);
    let sat = BcSolver::new(&g, BcOptions::default())
        .unwrap()
        .bc_single_source(0)
        .unwrap();
    assert!(
        sat.sigma.contains(&i64::MAX),
        "fixture must actually saturate σ"
    );
    batched_battery_on("sigma-doubler", &g, false);
}

const PREPS: [PrepMode; 3] = [PrepMode::Auto, PrepMode::ComponentsOnly, PrepMode::Full];

/// The prep differential battery: every resolved prep mode × engine
/// (sequential, parallel, batched, SIMT) against the same engine with
/// prep off — and, where `check_oracle` holds, against the summed
/// Brandes oracle — to the issue's 1e-6 per-vertex bar.
///
/// All-sources runs exercise the weighted fold/twin reconstruction;
/// fixtures too large for that fall back to a spread 64-source slice
/// (which routes the full plan through the components grouping instead —
/// a different code path, equally required to be exact).
fn prep_battery_on(name: &str, g: &Graph, check_oracle: bool) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let sources: Vec<u32> = if n <= 2_000 {
        (0..n as u32).collect()
    } else {
        (0..64).map(|i| (i * n / 64) as u32).collect()
    };
    let tol = |w: f64| 1e-6 * w.abs().max(1.0);
    let check = |tag: String, got: &[f64], want: &[f64]| {
        assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
        for (v, (gv, wv)) in got.iter().zip(want).enumerate() {
            let diff = (gv - wv).abs();
            assert!(
                diff < tol(*wv),
                "{tag}: bc[{v}] = {gv}, prep-off says {wv} (|diff| = {diff:.3e})"
            );
        }
    };
    let build = |prep: PrepMode, engine: Engine| {
        BcSolver::new(g, BcOptions::builder().prep(prep).engine(engine).build()).unwrap()
    };
    let off = build(PrepMode::Off, Engine::Sequential)
        .bc_sources(&sources)
        .unwrap();
    if check_oracle && sources.len() == n {
        check(
            format!("{name}/off-vs-brandes"),
            &off.bc,
            &brandes_all_sources(g),
        );
    }
    for prep in PREPS {
        for engine in [Engine::Sequential, Engine::Parallel] {
            let r = build(prep, engine).bc_sources(&sources).unwrap();
            check(format!("{name}/{prep:?}/{engine:?}"), &r.bc, &off.bc);
        }
        let r = BcSolver::new(g, BcOptions::builder().prep(prep).batch_width(64).build())
            .unwrap()
            .bc_batched(&sources)
            .unwrap();
        check(format!("{name}/{prep:?}/batched"), &r.bc, &off.bc);
    }
    // SIMT on a thin source slice: the simulator is orders slower than
    // the CPU engines, and its prep routing (explicit modes, component
    // grouping) does not depend on the source count.
    let simt_sources: Vec<u32> = sources.iter().copied().take(4).collect();
    let want_simt = build(PrepMode::Off, Engine::Sequential)
        .bc_sources(&simt_sources)
        .unwrap();
    for prep in PREPS {
        let solver = BcSolver::new(g, BcOptions::builder().prep(prep).build()).unwrap();
        let dev = Device::titan_xp();
        let (r, _) = solver
            .run_simt_on(&dev, &simt_sources)
            .expect("fixture fits on device");
        check(format!("{name}/{prep:?}/simt"), &r.bc, &want_simt.bc);
    }
}

/// Always-on slice of the prep battery: the tree-heavy / disconnected
/// stress fixtures, where every reduction stage actually fires.
#[test]
fn prep_battery_on_stress_fixtures() {
    for &name in families::STRESS_FIXTURES {
        let g = families::generate(name, Scale::Tiny).expect("stress fixture");
        prep_battery_on(name, &g, true);
    }
}

/// The prep battery over every paper fixture plus the stress set. Run by
/// the release CI job (`--include-ignored`) under its wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full prep differential battery; run under --release"
)]
fn full_prep_battery_over_all_fixtures() {
    let rows = families::all_rows();
    for row in &rows {
        let g = families::generate(row.name, Scale::Tiny).expect("known fixture");
        prep_battery_on(row.name, &g, false);
    }
    for &name in families::STRESS_FIXTURES {
        let g = families::generate(name, Scale::Tiny).expect("stress fixture");
        prep_battery_on(name, &g, false);
    }
}

/// Always-on slice of the battery: one fixture per structural class
/// (mesh, road, power-law), small enough for debug builds.
#[test]
fn families_subset_matches_brandes_in_every_mode() {
    families_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The full battery over every paper fixture — larger graphs, all
/// 3 engines × 3 kernels × 3 directions each. Run by the release CI
/// job (`--include-ignored`) under its wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full differential battery; run under --release"
)]
fn full_families_battery_matches_brandes() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    families_battery(&names, Scale::Tiny);
}

/// Every executor a BC plan can pin. TurboBFS is BFS-only and is
/// covered by [`deprecated_shims_match_plan_execute`] instead.
const BC_EXECUTORS: [ExecutorKind; 5] = [
    ExecutorKind::CpuSequential,
    ExecutorKind::CpuParallel,
    ExecutorKind::Batched,
    ExecutorKind::Simt,
    ExecutorKind::Hybrid,
];

/// The dispatch differential battery: `DispatchMode::CostModel` against
/// every pinned executor on the named fixtures, to the same graded 1e-6
/// bar as the per-source battery, with σ/depth surfaces compared
/// exactly. Also asserts the cost-model run actually traced its
/// scheduling decisions as RunProfile dispatch events.
fn dispatch_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        let n = g.n();
        if n == 0 {
            continue;
        }
        let count = n.min(4);
        let sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
        let solver = BcSolver::new(
            &g,
            BcOptions::builder()
                .dispatch(DispatchMode::CostModel)
                .build(),
        )
        .unwrap();
        let mut obs = ProfileObserver::new();
        let cost_plan = solver.plan(&sources).unwrap();
        let cost = solver
            .execute_observed(&cost_plan, &mut obs)
            .unwrap()
            .into_bc()
            .expect("BC plans produce a BC result");
        let profile = obs.into_profile();
        assert!(
            !profile.dispatch.is_empty(),
            "{name}: cost-model run must trace its dispatch decisions"
        );
        let tol = |w: f64| 1e-6 * w.abs().max(1.0);
        for kind in BC_EXECUTORS {
            let plan = solver.plan_pinned(kind, &sources).unwrap();
            let r = solver
                .execute(&plan)
                .unwrap()
                .into_bc()
                .expect("BC plans produce a BC result");
            let tag = format!("{name}/cost-vs-{}", kind.name());
            assert_eq!(r.bc.len(), cost.bc.len(), "{tag}: length mismatch");
            for (v, (gv, wv)) in r.bc.iter().zip(&cost.bc).enumerate() {
                let diff = (gv - wv).abs();
                assert!(
                    diff < tol(*wv),
                    "{tag}: bc[{v}] = {gv}, cost plan says {wv} (|diff| = {diff:.3e})"
                );
            }
            // Forward state is integer-exact across every executor.
            assert_eq!(r.sigma, cost.sigma, "{tag}: σ mismatch");
            assert_eq!(r.depths, cost.depths, "{tag}: depth mismatch");
        }
    }
}

/// Always-on slice of the dispatch battery, mirroring the per-source
/// subset: one fixture per structural class.
#[test]
fn dispatch_battery_cost_model_matches_every_pinned_executor() {
    dispatch_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The dispatch battery over every paper fixture plus the stress set.
/// Run by the release CI job (`--include-ignored`) under its wall-clock
/// guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full dispatch differential battery; run under --release"
)]
fn full_dispatch_battery_over_all_fixtures() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    dispatch_battery(&names, Scale::Tiny);
    dispatch_battery(families::STRESS_FIXTURES, Scale::Tiny);
}

/// A deterministic update stream over `g`: `batches` batches of up to
/// `ops` changes each, mixing effective inserts of absent edges,
/// effective deletes of live edges, duplicate inserts (no-ops),
/// deletes of missing edges (no-ops), and re-inserts of previously
/// deleted edges. A mirror membership set keeps the stream
/// self-consistent without constraining what the solver sees.
fn update_stream(g: &Graph, batches: usize, ops: usize, seed: u64) -> Vec<Vec<EdgeUpdate>> {
    let n = g.n() as u64;
    let directed = g.directed();
    let key = |u: u32, v: u32| if directed || u <= v { (u, v) } else { (v, u) };
    let mut live: std::collections::BTreeSet<(u32, u32)> =
        g.edges().map(|(u, v)| key(u, v)).collect();
    let mut s = seed | 1;
    let mut step = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut out = Vec::new();
    for _ in 0..batches {
        let mut batch = Vec::new();
        for op in 0..ops {
            if op % 2 == 0 && !live.is_empty() {
                // Touch a live edge: delete it, or duplicate-insert it.
                let coin = step();
                let idx = (step() as usize) % live.len();
                let &(u, v) = live.iter().nth(idx).expect("index is in range");
                if coin & 1 == 0 {
                    batch.push(EdgeUpdate::Delete(u, v));
                    live.remove(&(u, v));
                } else {
                    batch.push(EdgeUpdate::Insert(u, v)); // duplicate: no-op
                }
            } else {
                // A random pair: insert if absent, else delete-missing
                // style churn on whatever membership it happens to hit.
                let u = (step() % n) as u32;
                let v = (step() % n) as u32;
                if u == v {
                    continue;
                }
                let k = key(u, v);
                if live.insert(k) {
                    batch.push(EdgeUpdate::Insert(k.0, k.1));
                } else {
                    live.remove(&k);
                    batch.push(EdgeUpdate::Delete(k.0, k.1));
                }
            }
        }
        out.push(batch);
    }
    out
}

/// The incremental-BC differential battery: a [`DynamicBc`] session
/// absorbs a deterministic update stream, and after **every** batch its
/// cached BC vector must match a full recompute on the updated graph
/// across the sequential, parallel and batched engines, to the same
/// graded 1e-6 bar as the static batteries.
fn dynamic_battery(names: &[&str], scale: Scale) {
    for name in names {
        let g = families::generate(name, scale).expect("known family fixture");
        let n = g.n();
        if n < 4 {
            continue;
        }
        let count = n.min(32);
        let sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
        // Width 8 keeps several cached blocks in play even on the
        // smallest fixtures, so the dirty-block path is exercised.
        let mut dbc = DynamicBc::new(&g, &sources, BcOptions::builder().batch_width(8).build())
            .expect("warm cache fits the admission budget");
        let mut mirror = DynamicGraph::from_graph(&g);
        let tol = |w: f64| 1e-6 * w.abs().max(1.0);
        for (bi, batch) in update_stream(&g, 3, 8, 0xd15ea5e).iter().enumerate() {
            let report = dbc.apply_updates(batch).expect("generated batch is valid");
            mirror.apply(batch).expect("generated batch is valid");
            assert_eq!(
                dbc.graph().fingerprint(),
                mirror.fingerprint(),
                "{name}/batch{bi}: graph fingerprints diverged"
            );
            let snap = mirror.snapshot();
            let full: Vec<(&str, Vec<f64>)> = vec![
                (
                    "seq",
                    BcSolver::new(
                        &snap,
                        BcOptions::builder()
                            .sequential()
                            .prep(PrepMode::Off)
                            .build(),
                    )
                    .unwrap()
                    .bc_sources(&sources)
                    .unwrap()
                    .bc,
                ),
                (
                    "par",
                    BcSolver::new(
                        &snap,
                        BcOptions::builder().parallel().prep(PrepMode::Off).build(),
                    )
                    .unwrap()
                    .bc_sources(&sources)
                    .unwrap()
                    .bc,
                ),
                (
                    "batched",
                    BcSolver::new(
                        &snap,
                        BcOptions::builder()
                            .batch_width(8)
                            .prep(PrepMode::Off)
                            .build(),
                    )
                    .unwrap()
                    .bc_batched(&sources)
                    .unwrap()
                    .bc,
                ),
            ];
            for (engine, want) in &full {
                assert_eq!(dbc.bc().len(), want.len());
                for (v, (gv, wv)) in dbc.bc().iter().zip(want).enumerate() {
                    let diff = (gv - wv).abs();
                    assert!(
                        diff < tol(*wv),
                        "{name}/batch{bi} ({} strategy, {}/{} dirty) vs {engine}: \
                         bc[{v}] = {gv}, full recompute says {wv} (|diff| = {diff:.3e})",
                        report.strategy,
                        report.dirty_blocks,
                        report.total_blocks,
                    );
                }
            }
        }
    }
}

/// Always-on slice of the incremental battery, mirroring the other
/// batteries' one-fixture-per-structural-class subset.
#[test]
fn dynamic_battery_subset_matches_full_recompute_after_every_batch() {
    dynamic_battery(
        &["mark3jac060sc", "luxembourg_osm", "kron_g500-logn18"],
        Scale::Tiny,
    );
}

/// The incremental battery over every paper fixture plus the stress
/// set. Run by the release CI job (`--include-ignored`) under its
/// wall-clock guard.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full incremental differential battery; run under --release"
)]
fn full_dynamic_battery_over_all_fixtures() {
    let rows = families::all_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    dynamic_battery(&names, Scale::Tiny);
    dynamic_battery(families::STRESS_FIXTURES, Scale::Tiny);
}

/// Pinned dirty-block detection, cross-component case: updates confined
/// to a component none of the cached sources can reach leave every
/// cached panel bitwise valid. The skip is verified through the
/// RunProfile updates trace, and the skipped answer must still be the
/// true answer on the updated graph.
#[test]
fn dynamic_skips_every_block_for_updates_in_another_component() {
    // Two disjoint 5-paths: 0–1–2–3–4 and 5–6–7–8–9.
    let g = Graph::from_edges(
        10,
        false,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
        ],
    );
    // All sources in the first component, one source per block.
    let sources = vec![0u32, 2, 4];
    let mut dbc = DynamicBc::new(&g, &sources, BcOptions::builder().batch_width(1).build())
        .expect("warm cache fits the admission budget");
    let before = dbc.bc().to_vec();
    let mut obs = ProfileObserver::new();
    let report = dbc
        .apply_updates_observed(
            &[EdgeUpdate::Insert(5, 9), EdgeUpdate::Delete(6, 7)],
            &mut obs,
        )
        .unwrap();
    assert_eq!(report.inserts, 1);
    assert_eq!(report.deletes, 1);
    assert_eq!(report.dirty_blocks, 0, "no cached source reaches 5..10");
    assert_eq!(report.recomputed_blocks, 0);
    assert_eq!(report.strategy, "noop");
    let profile = obs.into_profile();
    assert_eq!(profile.updates.len(), 1, "one update trace event");
    assert_eq!(profile.updates[0].dirty_blocks, 0);
    assert_eq!(profile.updates[0].total_blocks, 3);
    assert_eq!(profile.updates[0].strategy, "noop");
    // The cached vector is untouched — and still exact for the updated
    // graph, because the far component contributes nothing to these
    // sources' dependencies.
    assert_eq!(dbc.bc(), &before[..]);
    let full = BcSolver::new(
        &dbc.graph().snapshot(),
        BcOptions::builder().prep(PrepMode::Off).build(),
    )
    .unwrap()
    .warm_cache(&sources)
    .unwrap();
    assert_eq!(dbc.bc(), full.bc(), "skipped answer must stay exact");

    // Control: a source in the touched component makes exactly its
    // block dirty, and the incremental result matches a full run.
    let sources = vec![0u32, 2, 6];
    let mut dbc = DynamicBc::new(&g, &sources, BcOptions::builder().batch_width(1).build())
        .expect("warm cache fits the admission budget");
    let report = dbc.apply_updates(&[EdgeUpdate::Insert(5, 9)]).unwrap();
    assert_eq!(
        report.dirty_blocks, 1,
        "only source 6's block sees the edge"
    );
    assert_eq!(report.strategy, "incremental");
    assert_eq!(report.recomputed_blocks, 1);
    let full = BcSolver::new(
        &dbc.graph().snapshot(),
        BcOptions::builder().prep(PrepMode::Off).build(),
    )
    .unwrap()
    .warm_cache(&sources)
    .unwrap();
    for (v, (gv, wv)) in dbc.bc().iter().zip(full.bc()).enumerate() {
        let diff = (gv - wv).abs();
        assert!(
            diff < 1e-6 * wv.abs().max(1.0),
            "bc[{v}] = {gv}, full recompute says {wv} (|diff| = {diff:.3e})"
        );
    }
}

/// Pinned dirty-block detection, beyond-the-frontier cases: updates
/// whose endpoints every cached BFS left undiscovered (upstream of a
/// directed source) or at equal depth (never on a shortest path)
/// invalidate nothing.
#[test]
fn dynamic_skips_updates_beyond_every_cached_frontier() {
    // Directed chain 0→1→…→9 with the only cached source at 5:
    // vertices 0..5 are upstream, hence undiscovered.
    let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
    let g = Graph::from_edges(10, true, &edges);
    let sources = vec![5u32];
    let mut dbc = DynamicBc::new(&g, &sources, BcOptions::default())
        .expect("warm cache fits the admission budget");
    let before = dbc.bc().to_vec();
    let mut obs = ProfileObserver::new();
    let report = dbc
        .apply_updates_observed(
            &[EdgeUpdate::Insert(0, 2), EdgeUpdate::Delete(1, 2)],
            &mut obs,
        )
        .unwrap();
    assert_eq!(report.strategy, "noop", "upstream churn is invisible");
    assert_eq!(report.dirty_blocks, 0);
    let profile = obs.into_profile();
    assert_eq!(profile.updates.len(), 1);
    assert_eq!(profile.updates[0].strategy, "noop");
    assert_eq!(dbc.bc(), &before[..]);

    // Equal-depth insert: both branch tips sit at the same depth from
    // the cached source, so the new edge is never on a shortest path.
    let g = Graph::from_edges(7, false, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6)]);
    let sources = vec![0u32];
    let mut dbc = DynamicBc::new(&g, &sources, BcOptions::default())
        .expect("warm cache fits the admission budget");
    let before = dbc.bc().to_vec();
    let report = dbc.apply_updates(&[EdgeUpdate::Insert(3, 6)]).unwrap();
    assert_eq!(report.strategy, "noop", "equal-depth edges change no path");
    assert_eq!(dbc.bc(), &before[..]);
    let full = BcSolver::new(
        &dbc.graph().snapshot(),
        BcOptions::builder().prep(PrepMode::Off).build(),
    )
    .unwrap()
    .warm_cache(&sources)
    .unwrap();
    assert_eq!(dbc.bc(), full.bc(), "skipped answer must stay exact");

    // Control: a shortcut from the source's own level is detected.
    let report = dbc.apply_updates(&[EdgeUpdate::Insert(0, 3)]).unwrap();
    assert_ne!(report.strategy, "noop", "a real shortcut must dirty");
    assert!(report.dirty_blocks > 0);
    let full = BcSolver::new(
        &dbc.graph().snapshot(),
        BcOptions::builder().prep(PrepMode::Off).build(),
    )
    .unwrap()
    .warm_cache(&sources)
    .unwrap();
    for (v, (gv, wv)) in dbc.bc().iter().zip(full.bc()).enumerate() {
        let diff = (gv - wv).abs();
        assert!(
            diff < 1e-6 * wv.abs().max(1.0),
            "bc[{v}] = {gv}, full recompute says {wv} (|diff| = {diff:.3e})"
        );
    }
}

/// Every deprecated 0.2 entry point must produce the same result
/// payload (bc, σ, depths — and for MS-BFS: depths, heights, sweeps) as
/// the plan/execute pipeline it now wraps.
#[test]
fn deprecated_shims_match_plan_execute() {
    let g = families::generate("kron_g500-logn18", Scale::Tiny).expect("known family fixture");
    let n = g.n();
    let sources: Vec<u32> = (0..6).map(|i| (i * n / 6) as u32).collect();
    let solver = BcSolver::new(&g, BcOptions::builder().parallel().build()).unwrap();

    let old = solver.bc_sources(&sources).unwrap();
    let plan = solver
        .plan_pinned(ExecutorKind::CpuParallel, &sources)
        .unwrap();
    let new = solver.execute(&plan).unwrap().into_bc().unwrap();
    assert_eq!(old.bc, new.bc, "bc_sources shim diverged");
    assert_eq!(old.sigma, new.sigma);
    assert_eq!(old.depths, new.depths);

    let old = solver.bc_batched(&sources).unwrap();
    let plan = solver.plan_pinned(ExecutorKind::Batched, &sources).unwrap();
    let new = solver.execute(&plan).unwrap().into_bc().unwrap();
    assert_eq!(old.bc, new.bc, "bc_batched shim diverged");
    assert_eq!(old.sigma, new.sigma);
    assert_eq!(old.depths, new.depths);

    let dev = Device::titan_xp();
    let (old, old_report) = solver.run_simt_on(&dev, &sources[..2]).unwrap();
    let plan = solver
        .plan_pinned(ExecutorKind::Simt, &sources[..2])
        .unwrap();
    let dev2 = Device::titan_xp();
    let ex = solver.execute_on(&dev2, &plan).unwrap();
    let new_report = ex
        .simt_report()
        .cloned()
        .expect("SIMT plans carry a report");
    let new = ex.into_bc().unwrap();
    assert_eq!(old.bc, new.bc, "run_simt_on shim diverged");
    assert_eq!(old.sigma, new.sigma);
    assert_eq!(old.depths, new.depths);
    assert_eq!(old_report.memory.peak, new_report.memory.peak);

    let old = solver.ms_bfs(&sources).unwrap();
    let plan = solver.plan_ms_bfs(&sources).unwrap();
    let new = solver.execute(&plan).unwrap().into_ms_bfs().unwrap();
    assert_eq!(old.depths, new.depths, "ms_bfs shim diverged");
    assert_eq!(old.heights, new.heights);
    assert_eq!(old.sweeps, new.sweeps);
}

/// A random core with a random forest glued on: `core_n` vertices wired
/// arbitrarily (possibly disconnected), plus `tree_n` extra vertices
/// each attached to one uniformly random earlier vertex — so the added
/// part is always a forest of pendant subtrees, exactly what the
/// degree-1 fold consumes.
fn arb_glued_forest() -> impl Strategy<Value = Graph> {
    (3usize..14, 0usize..36, 1usize..22).prop_flat_map(|(core_n, core_m, tree_n)| {
        let core_edge = (0..core_n as u32, 0..core_n as u32);
        (
            proptest::collection::vec(core_edge, core_m),
            proptest::collection::vec(any::<prop::sample::Index>(), tree_n),
        )
            .prop_map(move |(mut edges, parents)| {
                for (i, p) in parents.into_iter().enumerate() {
                    let v = (core_n + i) as u32;
                    edges.push((p.index(core_n + i) as u32, v));
                }
                Graph::from_edges(core_n + tree_n, false, &edges)
            })
    })
}

fn assert_prep_exact(tag: &str, g: &Graph) {
    let off = BcSolver::new(g, BcOptions::builder().prep(PrepMode::Off).build())
        .unwrap()
        .bc_exact()
        .unwrap();
    let tol = |w: f64| 1e-6 * w.abs().max(1.0);
    let mut runs: Vec<(String, Vec<f64>)> = Vec::new();
    for prep in PREPS {
        for engine in [Engine::Sequential, Engine::Parallel] {
            let r = BcSolver::new(g, BcOptions::builder().prep(prep).engine(engine).build())
                .unwrap()
                .bc_exact()
                .unwrap();
            runs.push((format!("{tag}/{prep:?}/{engine:?}"), r.bc));
        }
        let sources: Vec<u32> = (0..g.n() as u32).collect();
        let r = BcSolver::new(g, BcOptions::builder().prep(prep).batch_width(8).build())
            .unwrap()
            .bc_batched(&sources)
            .unwrap();
        runs.push((format!("{tag}/{prep:?}/batched"), r.bc));
    }
    for (run_tag, bc) in runs {
        for (v, (gv, wv)) in bc.iter().zip(&off.bc).enumerate() {
            let diff = (gv - wv).abs();
            assert!(
                diff < tol(*wv),
                "{run_tag}: bc[{v}] = {gv}, prep-off says {wv} (|diff| = {diff:.3e})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Folding + reconstruction is exact on random forests glued to
    /// random cores, across every prep mode and engine.
    #[test]
    fn prep_reconstruction_is_exact_on_glued_forests(g in arb_glued_forest()) {
        assert_prep_exact("glued-forest", &g);
    }

    /// The twin-attachment variant: `k` new vertices sharing one random
    /// open neighbourhood join the glued forest, so the twin compression
    /// stage fires alongside the fold.
    #[test]
    fn prep_reconstruction_is_exact_with_twin_attachments(
        g in arb_glued_forest(),
        k in 2usize..6,
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let n0 = g.n();
        let mut edges: Vec<(u32, u32)> = g.edges().filter(|&(u, v)| u <= v).collect();
        let mut nbrs: Vec<u32> = picks.iter().map(|p| p.index(n0) as u32).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        for t in 0..k {
            for &u in &nbrs {
                edges.push((u, (n0 + t) as u32));
            }
        }
        let g2 = Graph::from_edges(n0 + k, false, &edges);
        assert_prep_exact("twin-attach", &g2);
    }

    #[test]
    fn ligra_bfs_matches_reference(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let s = src_sel.index(g.n()) as u32;
        let reference = turbobc_suite::graph::bfs(&g, s);
        let (parent, levels) = turbobc_suite::ligra::bfs::bfs(&g, s);
        prop_assert_eq!(levels as u32, reference.height);
        for v in 0..g.n() {
            prop_assert_eq!(
                parent[v] >= 0,
                reference.depths[v] != 0,
                "vertex {} reachability mismatch", v
            );
        }
    }

    #[test]
    fn all_turbobc_engines_and_kernels_match_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        for kernel in KERNELS {
            for engine in [Engine::Sequential, Engine::Parallel] {
                for direction in DIRECTIONS {
                    let solver = BcSolver::new(
                        &g,
                        BcOptions::builder().kernel(kernel).engine(engine).direction(direction).build(),
                    ).unwrap();
                    let r = solver.bc_single_source(source).unwrap();
                    assert_close(&format!("{:?}/{:?}/{:?}", kernel, engine, direction), &r.bc, &want);
                }
            }
        }
    }

    #[test]
    fn simt_engine_matches_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        for kernel in KERNELS {
            for direction in DIRECTIONS {
                let solver = BcSolver::new(
                    &g,
                    BcOptions::builder().kernel(kernel).sequential().direction(direction).build(),
                ).unwrap();
                let dev = Device::titan_xp();
                let (r, _) = solver.run_simt_on(&dev, &[source]).expect("fits");
                assert_close(&format!("simt/{:?}/{:?}", kernel, direction), &r.bc, &want);
            }
        }
    }

    #[test]
    fn baselines_match_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let want = brandes_single_source(&g, source);
        assert_close("gunrock_like", &GunrockBc::new(&g).bc_single_source(source), &want);
        assert_close(
            "ligra",
            &turbobc_suite::ligra::bc::bc_single_source(&g, source),
            &want,
        );
        let gr = turbobc_suite::baselines::gunrock_simt::bc_single_source_simt(&g, source);
        assert_close("gunrock_simt", &gr.bc, &want);
    }

    /// Mid-run CPU↔SIMT handoff is invisible in the result: a hybrid
    /// traversal that hands its dense middle to the device (the
    /// device-biased cost model makes every dense band eligible) must
    /// produce bit-identical σ, depths and δ-accumulated bc to the same
    /// hybrid path with the device inadmissible (zero-byte budget), and
    /// match the Brandes oracle.
    #[test]
    fn hybrid_handoff_preserves_sigma_depth_delta(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let run = |mem: u64| {
            let mut props = DeviceProps::titan_xp();
            props.global_mem_bytes = mem;
            let solver = BcSolver::new(
                &g,
                BcOptions::builder()
                    .cost_model(CostModel::device_biased())
                    .device(props)
                    .build(),
            )
            .unwrap();
            let plan = solver.plan_pinned(ExecutorKind::Hybrid, &[source]).unwrap();
            solver
                .execute(&plan)
                .unwrap()
                .into_bc()
                .expect("BC plans produce a BC result")
        };
        let with_device = run(DeviceProps::titan_xp().global_mem_bytes);
        let cpu_only = run(0);
        prop_assert_eq!(&with_device.sigma, &cpu_only.sigma, "σ perturbed by handoff");
        prop_assert_eq!(&with_device.depths, &cpu_only.depths, "depths perturbed by handoff");
        prop_assert_eq!(&with_device.bc, &cpu_only.bc, "δ accumulation perturbed by handoff");
        let want = brandes_single_source(&g, source);
        assert_close("hybrid-handoff", &with_device.bc, &want);
    }

    /// Arbitrary update streams — duplicate inserts, deletes of
    /// missing edges, inserts shadowing earlier deletes — applied in
    /// arbitrary batch splits with a compaction threshold small enough
    /// to fire mid-stream, must compact to exactly the CSR/CSC (and
    /// content fingerprint) of a graph rebuilt from the final edge
    /// list.
    #[test]
    fn dynamic_compaction_matches_rebuild_from_final_edges(
        g in arb_graph(),
        raw in proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>(), any::<bool>()),
            0..60,
        ),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let n = g.n();
        let key = |u: u32, v: u32| if g.directed() || u <= v { (u, v) } else { (v, u) };
        let mut mirror: std::collections::BTreeSet<(u32, u32)> =
            g.edges().map(|(u, v)| key(u, v)).collect();
        let updates: Vec<EdgeUpdate> = raw
            .iter()
            .map(|(ui, vi, ins)| {
                let u = ui.index(n) as u32;
                let mut v = vi.index(n) as u32;
                if v == u {
                    v = (v + 1) % n as u32;
                }
                if *ins { EdgeUpdate::Insert(u, v) } else { EdgeUpdate::Delete(u, v) }
            })
            .collect();
        let mut dg = DynamicGraph::from_graph(&g).with_compact_threshold(6);
        let mut splits: Vec<usize> = cuts.iter().map(|c| c.index(updates.len() + 1)).collect();
        splits.push(updates.len());
        splits.sort_unstable();
        let mut start = 0;
        for end in splits {
            dg.apply(&updates[start..end]).expect("stream has no self-loops");
            for up in &updates[start..end] {
                match *up {
                    EdgeUpdate::Insert(u, v) => {
                        mirror.insert(key(u, v));
                    }
                    EdgeUpdate::Delete(u, v) => {
                        mirror.remove(&key(u, v));
                    }
                }
            }
            start = end;
        }
        dg.compact();
        prop_assert_eq!(dg.pending(), 0);
        let final_edges: Vec<(u32, u32)> = mirror.iter().copied().collect();
        let rebuilt = Graph::from_edges(n, g.directed(), &final_edges);
        prop_assert_eq!(dg.base().to_csr(), rebuilt.to_csr(), "CSR diverged from rebuild");
        prop_assert_eq!(dg.base().to_csc(), rebuilt.to_csc(), "CSC diverged from rebuild");
        prop_assert_eq!(
            dg.fingerprint(),
            DynamicGraph::from_graph(&rebuilt).fingerprint(),
            "content fingerprint diverged from rebuild"
        );
    }

    /// A batch containing a self-loop is rejected atomically: no log
    /// entry, no membership change, no fingerprint drift — even when
    /// valid updates precede the bad one.
    #[test]
    fn dynamic_self_loop_batches_reject_atomically(
        g in arb_graph(),
        ui in any::<prop::sample::Index>(),
        vi in any::<prop::sample::Index>(),
    ) {
        let n = g.n();
        let u = ui.index(n) as u32;
        let mut v = vi.index(n) as u32;
        if v == u {
            v = (v + 1) % n as u32;
        }
        let mut dg = DynamicGraph::from_graph(&g);
        let fp = dg.fingerprint();
        let batch = [EdgeUpdate::Insert(u, v), EdgeUpdate::Insert(v, v)];
        prop_assert!(dg.apply(&batch).is_err(), "self-loop must be rejected");
        prop_assert_eq!(dg.pending(), 0, "rejected batch must leave no log entries");
        prop_assert_eq!(dg.fingerprint(), fp, "rejected batch must not move the fingerprint");
    }

    #[test]
    fn sigma_and_depths_match_bfs_oracle(g in arb_graph(), src_sel in any::<prop::sample::Index>()) {
        let source = src_sel.index(g.n()) as u32;
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let r = solver.bc_single_source(source).unwrap();
        let bfs = turbobc_suite::graph::bfs(&g, source);
        prop_assert_eq!(&r.depths, &bfs.depths);
        prop_assert_eq!(r.stats.max_depth, bfs.height);
        prop_assert_eq!(r.stats.last_reached, bfs.reached);
        // σ of the source is 1; unreached vertices have σ = 0.
        prop_assert_eq!(r.sigma[source as usize], 1);
        for v in 0..g.n() {
            prop_assert_eq!(bfs.depths[v] == 0, r.sigma[v] == 0, "vertex {}", v);
        }
    }
}

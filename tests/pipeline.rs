//! End-to-end pipeline tests: generators → I/O → solver → results, the
//! way the examples and the bench harness use the workspace.

use turbobc_suite::graph::families::{self, Scale};
use turbobc_suite::graph::{io, Graph};
use turbobc_suite::turbobc::{BcOptions, BcSolver, Kernel};

/// Every catalogued paper graph runs end to end (single-source BC on the
/// parallel engine with the paper's kernel) at Tiny scale.
#[test]
fn every_family_runs_end_to_end() {
    for row in families::all_rows() {
        let g = families::generate(row.name, Scale::Tiny).unwrap();
        let kernel = match row.kernel {
            "scCOOC" => Kernel::ScCooc,
            "veCSC" => Kernel::VeCsc,
            _ => Kernel::ScCsc,
        };
        let solver =
            BcSolver::new(&g, BcOptions::builder().kernel(kernel).parallel().build()).unwrap();
        let r = solver.bc_single_source(g.default_source()).unwrap();
        assert_eq!(r.bc.len(), g.n(), "{}", row.name);
        assert!(r.stats.max_depth >= 1, "{}", row.name);
        assert!(
            r.bc.iter().all(|&x| x.is_finite() && x >= -1e-9),
            "{}: BC must be finite and non-negative",
            row.name
        );
    }
}

/// MatrixMarket round trip preserves BC exactly.
#[test]
fn mtx_round_trip_preserves_bc() {
    let g = families::generate("delaunay_n15", Scale::Tiny).unwrap();
    let mut buf = Vec::new();
    io::write_matrix_market(&g, &mut buf).unwrap();
    let back = io::read_matrix_market(buf.as_slice()).unwrap();
    let a = BcSolver::new(&g, BcOptions::default())
        .unwrap()
        .bc_sampled(16)
        .unwrap();
    let b = BcSolver::new(&back, BcOptions::default())
        .unwrap()
        .bc_sampled(16)
        .unwrap();
    for (x, y) in a.bc.iter().zip(&b.bc) {
        assert!((x - y).abs() < 1e-9);
    }
}

/// Edge-list round trip through a real file on disk.
#[test]
fn edge_list_file_round_trip() {
    let g = families::generate("internet", Scale::Tiny).unwrap();
    let dir = std::env::temp_dir().join("turbobc_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("internet.txt");
    let mut f = std::fs::File::create(&path).unwrap();
    io::write_edge_list(&g, &mut f).unwrap();
    let back = io::read_edge_list_file(&path, true, Some(g.n())).unwrap();
    assert_eq!(back.m(), g.m());
    let mut ea: Vec<_> = g.edges().collect();
    let mut eb: Vec<_> = back.edges().collect();
    ea.sort_unstable();
    eb.sort_unstable();
    assert_eq!(ea, eb);
}

/// BC sums are internally consistent: exact == sum over all
/// single-source runs.
#[test]
fn exact_bc_is_sum_of_single_sources() {
    let g = Graph::from_edges(
        12,
        false,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (2, 8),
            (8, 9),
            (9, 10),
            (10, 11),
        ],
    );
    let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
    let exact = solver.bc_exact().unwrap();
    let mut sum = vec![0.0; g.n()];
    for s in 0..g.n() as u32 {
        let r = solver.bc_single_source(s).unwrap();
        for (acc, v) in sum.iter_mut().zip(&r.bc) {
            *acc += v;
        }
    }
    for (a, b) in exact.bc.iter().zip(&sum) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// The experiment harness runs at Tiny scale for a sample of ids.
#[test]
fn experiment_harness_smoke() {
    use turbobc_bench::experiments::{run, Config};
    let cfg = Config {
        scale: Scale::Tiny,
        trials: 1,
        max_sources: 8,
    };
    let t1 = run("fig3", cfg).unwrap();
    assert!(t1.contains("Figure 3"));
    assert!(t1.contains("mycielski"));
    let t2 = run("fig7", cfg).unwrap();
    assert!(t2.contains("speedup"));
    assert!(run("nope", cfg).is_none());
}

//! End-to-end tests for the BC service: a real TCP server, concurrent
//! clients, and single-threaded `BcSolver` runs as the oracle.

use std::sync::Arc;

use turbobc::observe::json::Json;
use turbobc::{BcOptions, BcSolver, EdgeUpdate, Engine};
use turbobc_graph::Graph;
use turbobc_serve::{Client, GraphSource, Request, ServeConfig, Server, ServerHandle};

/// Graded tolerance: shard-order summation vs the single-threaded
/// engine's order.
const TOL: f64 = 1e-6;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + b.abs())
}

/// A ring with deterministic chords: enough structure for distinct BC
/// scores, small enough for debug-mode test runs.
fn chordal_ring(n: u32, stride: u32) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    for u in (0..n).step_by(7) {
        edges.push((u, (u + stride) % n));
    }
    Graph::from_edges(n as usize, false, &edges)
}

/// Single-threaded oracle: the sequential engine, whole-source runs.
fn reference_bc(g: &Graph) -> Vec<f64> {
    let solver = BcSolver::new(g, BcOptions::builder().engine(Engine::Sequential).build()).unwrap();
    solver.bc_exact().unwrap().bc
}

fn reference_subset_bc(g: &Graph, sources: &[u32]) -> Vec<f64> {
    let solver = BcSolver::new(g, BcOptions::builder().engine(Engine::Sequential).build()).unwrap();
    let plan = solver.plan(sources).unwrap();
    solver.execute(&plan).unwrap().into_bc().unwrap().bc
}

fn spawn_server(config: ServeConfig) -> ServerHandle {
    Server::bind(config).unwrap().spawn().unwrap()
}

fn inline(g: &Graph) -> GraphSource {
    GraphSource::Inline {
        n: g.n(),
        directed: g.directed(),
        edges: g.edges().filter(|&(u, v)| u <= v).collect(),
    }
}

fn load(client: &mut Client, name: &str, g: &Graph) {
    let reply = client
        .request(Request::Load {
            graph: name.into(),
            source: inline(g),
            warm: false,
        })
        .unwrap();
    assert_eq!(reply.get("n").and_then(Json::as_f64), Some(g.n() as f64));
}

fn json_vec(doc: &Json, key: &str) -> Vec<f64> {
    doc.get(key)
        .and_then(Json::as_arr)
        .expect("bc array")
        .iter()
        .map(|x| x.as_f64().expect("finite"))
        .collect()
}

/// The acceptance scenario: ≥4 workers, ≥8 concurrent mixed queries
/// (full / top-k / vertex / subset) across 2 loaded graphs, every
/// result matching a single-threaded solver at 1e-6.
#[test]
fn concurrent_mixed_queries_match_single_threaded_reference() {
    let g1 = chordal_ring(96, 31);
    let g2 = chordal_ring(128, 17);
    let ref1 = Arc::new(reference_bc(&g1));
    let ref2 = Arc::new(reference_bc(&g2));
    let subset: Vec<u32> = vec![0, 5, 9, 33, 64];
    let sub_ref1 = Arc::new(reference_subset_bc(&g1, &subset));
    let sub_ref2 = Arc::new(reference_subset_bc(&g2, &subset));

    let handle = spawn_server(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    {
        let mut client = Client::connect(addr).unwrap();
        load(&mut client, "g1", &g1);
        load(&mut client, "g2", &g2);
    }

    let threads: Vec<_> = (0..8)
        .map(|i| {
            let (graph, full, sub) = if i % 2 == 0 {
                ("g1", ref1.clone(), sub_ref1.clone())
            } else {
                ("g2", ref2.clone(), sub_ref2.clone())
            };
            let subset = subset.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                match i % 4 {
                    0 => {
                        let doc = client
                            .request(Request::BcFull {
                                graph: graph.into(),
                            })
                            .unwrap();
                        let bc = json_vec(&doc, "bc");
                        assert_eq!(bc.len(), full.len());
                        for (v, (&a, &b)) in bc.iter().zip(full.iter()).enumerate() {
                            assert!(close(a, b), "{graph} bc[{v}]: {a} vs {b}");
                        }
                    }
                    1 => {
                        let doc = client
                            .request(Request::BcTopK {
                                graph: graph.into(),
                                k: 5,
                            })
                            .unwrap();
                        let top = doc.get("top").and_then(Json::as_arr).unwrap().to_vec();
                        assert_eq!(top.len(), 5);
                        let mut ref_sorted = full.to_vec();
                        ref_sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
                        for (rank, entry) in top.iter().enumerate() {
                            let pair = entry.as_arr().unwrap();
                            let v = pair[0].as_f64().unwrap() as usize;
                            let score = pair[1].as_f64().unwrap();
                            assert!(
                                close(score, full[v]),
                                "{graph} top[{rank}] score {score} vs bc[{v}] = {}",
                                full[v]
                            );
                            assert!(
                                close(score, ref_sorted[rank]),
                                "{graph} rank {rank}: {score} vs {}",
                                ref_sorted[rank]
                            );
                        }
                    }
                    2 => {
                        let vertex = 40 + i as u32;
                        let doc = client
                            .request(Request::BcVertex {
                                graph: graph.into(),
                                vertex,
                            })
                            .unwrap();
                        let score = doc.get("bc").and_then(Json::as_f64).unwrap();
                        let want = full[vertex as usize];
                        assert!(
                            close(score, want),
                            "{graph} bc[{vertex}]: {score} vs {want}"
                        );
                    }
                    _ => {
                        let doc = client
                            .request(Request::BcSubset {
                                graph: graph.into(),
                                sources: subset.clone(),
                            })
                            .unwrap();
                        let bc = json_vec(&doc, "bc");
                        for (v, (&a, &b)) in bc.iter().zip(sub.iter()).enumerate() {
                            assert!(close(a, b), "{graph} subset bc[{v}]: {a} vs {b}");
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let status = client.request(Request::Status).unwrap();
    let graphs = status.get("graphs").and_then(Json::as_arr).unwrap();
    assert_eq!(graphs.len(), 2);
    assert_eq!(status.get("workers").and_then(Json::as_f64), Some(4.0));
    handle.shutdown();
}

#[test]
fn repeat_queries_hit_the_cache() {
    let g = chordal_ring(96, 13);
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    load(&mut client, "g", &g);

    let cold = client
        .request(Request::BcFull { graph: "g".into() })
        .unwrap();
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));
    let warm = client
        .request(Request::BcFull { graph: "g".into() })
        .unwrap();
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(json_vec(&cold, "bc"), json_vec(&warm, "bc"));

    // Derived queries ride the same full vector without a new job.
    let topk = client
        .request(Request::BcTopK {
            graph: "g".into(),
            k: 3,
        })
        .unwrap();
    assert_eq!(topk.get("cached").and_then(Json::as_bool), Some(true));

    let status = client.request(Request::Status).unwrap();
    let hits = status
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(hits >= 2.0, "expected ≥2 cache hits, saw {hits}");
    handle.shutdown();
}

/// Parallel clients on distinct graphs stay isolated, and an update
/// batch invalidates exactly the touched graph's entries.
#[test]
fn updates_invalidate_exactly_the_touched_graph() {
    let g1 = chordal_ring(96, 11);
    let g2 = chordal_ring(96, 23);
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    load(&mut client, "a", &g1);
    load(&mut client, "b", &g2);

    // Prime both caches from parallel clients.
    let addr = handle.addr();
    let threads: Vec<_> = ["a", "b"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let doc = c.request(Request::BcFull { graph: name.into() }).unwrap();
                json_vec(&doc, "bc")
            })
        })
        .collect();
    let primed: Vec<Vec<f64>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_ne!(primed[0], primed[1], "distinct graphs, distinct BC");

    // Update graph "a" only.
    let update = client
        .request(Request::Update {
            graph: "a".into(),
            updates: vec![EdgeUpdate::Insert(0, 48)],
        })
        .unwrap();
    assert_eq!(update.get("inserts").and_then(Json::as_f64), Some(1.0));
    assert!(
        update.get("invalidated").and_then(Json::as_f64).unwrap() >= 1.0,
        "the touched graph loses its entries"
    );

    // "a" is cold again and reflects the new edge; "b" still hits.
    let a2 = client
        .request(Request::BcFull { graph: "a".into() })
        .unwrap();
    assert_eq!(a2.get("cached").and_then(Json::as_bool), Some(false));
    let mut g1_updated: Vec<(u32, u32)> = g1.edges().filter(|&(u, v)| u <= v).collect();
    g1_updated.push((0, 48));
    let updated_ref = reference_bc(&Graph::from_edges(96, false, &g1_updated));
    for (v, (&a, &b)) in json_vec(&a2, "bc").iter().zip(&updated_ref).enumerate() {
        assert!(close(a, b), "updated bc[{v}]: {a} vs {b}");
    }
    let b2 = client
        .request(Request::BcFull { graph: "b".into() })
        .unwrap();
    assert_eq!(
        b2.get("cached").and_then(Json::as_bool),
        Some(true),
        "the untouched graph keeps its cache entry"
    );
    handle.shutdown();
}

#[test]
fn warm_sessions_serve_and_refresh_bc_full() {
    let g = chordal_ring(64, 9);
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let loaded = client
        .request(Request::Load {
            graph: "w".into(),
            source: inline(&g),
            warm: true,
        })
        .unwrap();
    assert_eq!(loaded.get("warm").and_then(Json::as_bool), Some(true));

    // bc_full answers from the session without scheduling a job.
    let full = client
        .request(Request::BcFull { graph: "w".into() })
        .unwrap();
    assert_eq!(full.get("cached").and_then(Json::as_bool), Some(true));
    for (v, (&a, &b)) in json_vec(&full, "bc")
        .iter()
        .zip(&reference_bc(&g))
        .enumerate()
    {
        assert!(close(a, b), "warm bc[{v}]: {a} vs {b}");
    }

    // An update refreshes the entry incrementally: still served as a
    // cache hit, now with post-update values.
    let update = client
        .request(Request::Update {
            graph: "w".into(),
            updates: vec![EdgeUpdate::Insert(3, 33)],
        })
        .unwrap();
    assert_eq!(update.get("refreshed").and_then(Json::as_bool), Some(true));
    let full2 = client
        .request(Request::BcFull { graph: "w".into() })
        .unwrap();
    assert_eq!(full2.get("cached").and_then(Json::as_bool), Some(true));
    let mut edges: Vec<(u32, u32)> = g.edges().filter(|&(u, v)| u <= v).collect();
    edges.push((3, 33));
    let updated_ref = reference_bc(&Graph::from_edges(64, false, &edges));
    for (v, (&a, &b)) in json_vec(&full2, "bc").iter().zip(&updated_ref).enumerate() {
        assert!(close(a, b), "refreshed bc[{v}]: {a} vs {b}");
    }
    handle.shutdown();
}

#[test]
fn lru_evicts_under_a_small_byte_budget() {
    let g = chordal_ring(96, 19);
    let handle = spawn_server(ServeConfig {
        cache_bytes: 6 << 10, // a couple of 96-float payloads
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    load(&mut client, "g", &g);
    for start in 0..6u32 {
        client
            .request(Request::BcSubset {
                graph: "g".into(),
                sources: vec![start, start + 8, start + 16],
            })
            .unwrap();
    }
    let status = client.request(Request::Status).unwrap();
    let cache = status.get("cache").unwrap();
    let evictions = cache.get("evictions").and_then(Json::as_f64).unwrap();
    let bytes = cache.get("bytes").and_then(Json::as_f64).unwrap();
    let budget = cache.get("budget").and_then(Json::as_f64).unwrap();
    assert!(evictions >= 1.0, "expected evictions, saw {evictions}");
    assert!(bytes <= budget, "cache stays within budget");
    handle.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client
        .request(Request::BcFull {
            graph: "ghost".into(),
        })
        .unwrap_err();
    assert!(err.contains("no such graph"), "{err}");

    let raw = client.round_trip_line("this is not json").unwrap();
    assert!(raw.contains("\"ok\":false"), "{raw}");

    // The connection survives both errors.
    let g = chordal_ring(32, 5);
    load(&mut client, "g", &g);
    let err = client
        .request(Request::BcVertex {
            graph: "g".into(),
            vertex: 99,
        })
        .unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    let metrics = client.request(Request::Metrics).unwrap();
    let profile = metrics.get("profile").expect("profile document");
    let text = turbobc_serve::protocol::compact(profile);
    turbobc::observe::RunProfile::validate(&text).expect("live profile validates");
    handle.shutdown();
}

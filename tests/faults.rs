//! Fault-sweep integration tests: the robustness contract of the whole
//! stack. Every *absorbable* injected fault — a transient kernel-launch
//! failure at any point in the schedule, a dropped or corrupted
//! interconnect exchange, an injected OOM that walks the degradation
//! ladder, a whole device lost mid-run, a checkpointed run killed between
//! batches — must leave the BC scores bit-identical to the corresponding
//! clean run, with the absorption recorded in the recovery log.

// The 0.2 entry points stay exercised here until removal; the shims'
// recovery behaviour must match their plan/execute replacements.
#![allow(deprecated)]

use turbobc::multi_gpu::{bc_multi_gpu, bc_multi_gpu_faulty};
use turbobc::{BcOptions, BcSolver, CheckpointConfig, Kernel, RecoveryPolicy, TurboBcError};
use turbobc_graph::gen;
use turbobc_simt::{Device, DeviceProps, FaultPlan, Interconnect};

/// The default policy minus the backoff sleeps (pointless in tests).
fn fast_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        backoff_base_us: 0,
        ..Default::default()
    }
}

fn opts(kernel: Kernel) -> BcOptions {
    BcOptions::builder()
        .kernel(kernel)
        .recovery(fast_policy())
        .build()
}

fn assert_close(got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() < tol, "bc[{i}] = {g}, want {w}");
    }
}

/// Inject a transient fault at *every* launch index of the schedule, one
/// run per index: each run must retry exactly once and reproduce the
/// clean result bit for bit (a faulted launch never executes its body,
/// so the retry is the first real execution).
#[test]
fn every_launch_index_survives_a_transient_fault() {
    let g = gen::small_world(64, 2, 0.2, 7);
    let sources = [g.default_source(), 5];
    let solver = BcSolver::new(&g, opts(Kernel::ScCsc)).unwrap();

    let clean_dev = Device::titan_xp();
    let (clean, _) = solver.run_simt_on(&clean_dev, &sources).unwrap();
    let total = clean_dev.metrics().total().launches;
    assert!(
        total > 10,
        "schedule too short to be a meaningful sweep: {total}"
    );

    for k in 0..total {
        let dev = Device::with_faults(DeviceProps::titan_xp(), FaultPlan::new(k).fail_launch_at(k));
        let (got, _) = solver
            .run_simt_on(&dev, &sources)
            .unwrap_or_else(|e| panic!("fault at launch {k}/{total} was fatal: {e}"));
        assert_eq!(
            got.stats.recovery.kernel_retries, 1,
            "fault at launch {k} should cost exactly one retry"
        );
        assert_eq!(got.bc, clean.bc, "fault at launch {k} perturbed the result");
        assert_eq!(got.sigma, clean.sigma);
        assert_eq!(got.depths, clean.depths);
    }
}

/// An injected OOM on a veCSC run steps down the degradation ladder to
/// scCSC; the degraded run must match a *clean* scCSC run bit for bit.
#[test]
fn injected_oom_degrades_bit_identically_to_the_next_kernel() {
    let g = gen::gnm(80, 400, false, 3);
    let sources = [g.default_source()];

    let sc = BcSolver::new(&g, opts(Kernel::ScCsc)).unwrap();
    let (want, _) = sc.run_simt_on(&Device::titan_xp(), &sources).unwrap();

    let ve = BcSolver::new(&g, opts(Kernel::VeCsc)).unwrap();
    for alloc_idx in [0u64, 3] {
        let dev = Device::with_faults(
            DeviceProps::titan_xp(),
            FaultPlan::new(alloc_idx).fail_alloc_at(alloc_idx),
        );
        let (got, _) = ve.run_simt_on(&dev, &sources).unwrap();
        let log = &got.stats.recovery;
        assert_eq!(
            log.oom_degradations, 1,
            "alloc fault {alloc_idx} should degrade once"
        );
        assert_eq!(log.degraded_to, Some("scCSC"));
        assert!(!log.cpu_fallback);
        assert_eq!(
            got.bc, want.bc,
            "degraded run (alloc fault {alloc_idx}) must match scCSC"
        );
    }
}

/// A device too small for *any* kernel exhausts the ladder and lands on
/// the CPU Parallel engine, still producing correct scores.
#[test]
fn exhausted_ladder_falls_back_to_cpu() {
    let g = gen::grid2d(12, 12);
    let solver = BcSolver::new(&g, opts(Kernel::ScCsc)).unwrap();
    let dev = Device::with_capacity(DeviceProps::titan_xp(), 4096);
    let (got, _) = solver.run_simt_on(&dev, &[0]).unwrap();
    assert!(
        got.stats.recovery.cpu_fallback,
        "tiny device must end on the CPU"
    );
    assert!(got.stats.recovery.oom_degradations >= 1);
    let want = solver.bc_sources(&[0]).unwrap();
    assert_close(&got.bc, &want.bc, 1e-9);
}

/// With recovery disabled the same faults surface as hard errors — the
/// knobs, not the faults, decide whether a run survives.
#[test]
fn strict_policy_surfaces_the_fault_instead() {
    let g = gen::gnm(40, 120, false, 5);
    let strict = BcOptions::builder()
        .kernel(Kernel::ScCsc)
        .recovery(RecoveryPolicy::strict())
        .build();
    let solver = BcSolver::new(&g, strict).unwrap();
    let dev = Device::with_faults(DeviceProps::titan_xp(), FaultPlan::new(1).fail_launch_at(2));
    assert!(matches!(
        solver.run_simt_on(&dev, &[0]),
        Err(TurboBcError::Device(_))
    ));
}

/// Dropped and corrupted frontier exchanges on the multi-GPU interconnect
/// are retried; a dropped exchange moves no data, so the retried run is
/// bit-identical.
#[test]
fn multi_gpu_link_faults_are_absorbed_bit_identically() {
    let g = gen::small_world(100, 3, 0.1, 21);
    let sources = [g.default_source(), 7];
    let (clean, _) = bc_multi_gpu(
        &g,
        &sources,
        2,
        DeviceProps::titan_xp(),
        Interconnect::nvlink(),
    )
    .unwrap();

    let link = Interconnect::nvlink()
        .with_faults(FaultPlan::new(3).drop_transfer_at(2).corrupt_transfer_at(9));
    let (bc, report) = bc_multi_gpu_faulty(
        &g,
        &sources,
        2,
        DeviceProps::titan_xp(),
        link,
        &[],
        &fast_policy(),
    )
    .unwrap();
    assert_eq!(report.recovery.link_retries, 2);
    assert_eq!(bc, clean);
}

/// A device lost mid-run has its column partition requeued onto the
/// survivors; the finished run matches the clean one bit for bit because
/// the partitioned computation is layout-independent.
#[test]
fn multi_gpu_device_loss_requeues_bit_identically() {
    let g = gen::gnm(120, 480, false, 33);
    let sources = [g.default_source(), 11, 57];
    let (clean, _) = bc_multi_gpu(
        &g,
        &sources,
        4,
        DeviceProps::titan_xp(),
        Interconnect::pcie3(),
    )
    .unwrap();

    let plans = vec![
        FaultPlan::new(1),
        FaultPlan::new(2),
        FaultPlan::new(3).lose_device_at_launch(25),
        FaultPlan::new(4),
    ];
    let (bc, report) = bc_multi_gpu_faulty(
        &g,
        &sources,
        4,
        DeviceProps::titan_xp(),
        Interconnect::pcie3(),
        &plans,
        &fast_policy(),
    )
    .unwrap();
    assert_eq!(report.recovery.device_requeues, 1);
    assert_eq!(report.devices, 3, "the lost device must stay lost");
    assert_eq!(bc, clean, "requeued run must be bit-identical");
}

/// A checkpointed multi-source run killed between batches resumes from
/// the snapshot and finishes with output bit-identical to the same run
/// left uninterrupted.
#[test]
fn killed_checkpointed_run_resumes_bit_identically() {
    let g = gen::small_world(80, 2, 0.3, 12);
    let sources: Vec<u32> = (0..g.n() as u32).collect();
    let solver = BcSolver::new(&g, BcOptions::default()).unwrap();

    let dir = std::env::temp_dir().join("turbobc_fault_sweep");
    std::fs::create_dir_all(&dir).unwrap();
    let uninterrupted_path = dir.join("uninterrupted.ckpt");
    let killed_path = dir.join("killed.ckpt");
    let _ = std::fs::remove_file(&uninterrupted_path);
    let _ = std::fs::remove_file(&killed_path);

    // The checkpoint config now travels in the options, so each run
    // variant gets its own solver.
    let with_ckpt = |cfg: CheckpointConfig| {
        BcSolver::new(&g, BcOptions::builder().checkpoint(cfg).build()).unwrap()
    };
    let want = with_ckpt(CheckpointConfig::new(&uninterrupted_path, 16))
        .bc_sources_checkpointed(&sources)
        .unwrap();

    // Kill the run after two 16-source batches...
    let killed = with_ckpt(CheckpointConfig::new(&killed_path, 16).fail_after_batches(2))
        .bc_sources_checkpointed(&sources);
    assert!(
        matches!(killed, Err(TurboBcError::Checkpoint(_))),
        "the injected kill must surface: {killed:?}"
    );

    // ...then resume from the snapshot it left behind.
    let resumed = with_ckpt(CheckpointConfig::new(&killed_path, 16).resume())
        .bc_sources_checkpointed(&sources)
        .unwrap();
    assert_eq!(resumed.stats.recovery.resumed_sources, 32);
    assert_eq!(
        resumed.bc, want.bc,
        "resume must be bit-identical to uninterrupted"
    );
    assert_eq!(resumed.sigma, want.sigma);
    assert_eq!(resumed.depths, want.depths);

    // And the scores are the right scores.
    let plain = solver.bc_sources(&sources).unwrap();
    assert_close(&resumed.bc, &plain.bc, 1e-9);

    let _ = std::fs::remove_file(&uninterrupted_path);
    let _ = std::fs::remove_file(&killed_path);
}

//! Cross-crate property tests for the extensions beyond the paper:
//! weighted BC (Δ-stepping vs Dijkstra), the semiring toolkit, edge BC
//! and approximate BC.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use turbobc_suite::baselines::{
    brandes::brandes_edge_bc, weighted_brandes_all_sources, weighted_sssp,
};
use turbobc_suite::graph::weighted::WeightedGraph;
use turbobc_suite::graph::Graph;
use turbobc_suite::sparse::semiring::{self, CsrValues};
use turbobc_suite::turbobc::weighted::{sssp_delta_stepping, weighted_bc_exact, WeightedBcOptions};

fn arb_weighted() -> impl Strategy<Value = WeightedGraph> {
    (2usize..24, any::<bool>()).prop_flat_map(|(n, directed)| {
        let edge = (0..n as u32, 0..n as u32, 1u32..64);
        proptest::collection::vec(edge, 0..90).prop_map(move |edges| {
            let weighted: Vec<(u32, u32, f64)> = edges
                .into_iter()
                .map(|(u, v, w)| (u, v, w as f64 / 4.0))
                .collect();
            WeightedGraph::from_edges(n, directed, &weighted)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Δ-stepping equals Dijkstra for every bucket width.
    #[test]
    fn delta_stepping_equals_dijkstra(
        wg in arb_weighted(),
        src in any::<prop::sample::Index>(),
        delta_sel in 1u32..5,
    ) {
        let s = src.index(wg.n()) as u32;
        let want = weighted_sssp(&wg, s);
        let (csr, w) = wg.to_weighted_csr();
        let delta = [0.5, 2.0, 8.0, 64.0][delta_sel as usize - 1];
        let (got, _) = sssp_delta_stepping(&csr, &w, s, delta);
        for v in 0..wg.n() {
            prop_assert!(
                (got[v] - want[v]).abs() < 1e-9
                    || (got[v].is_infinite() && want[v].is_infinite()),
                "vertex {}: {} vs {}", v, got[v], want[v]
            );
        }
    }

    /// Weighted BC equals the Dijkstra-Brandes oracle.
    #[test]
    fn weighted_bc_equals_oracle(wg in arb_weighted()) {
        let got = weighted_bc_exact(&wg, WeightedBcOptions::default());
        let want = weighted_brandes_all_sources(&wg);
        for (v, (a, b)) in got.bc.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() < 1e-6, "bc[{}]: {} vs {}", v, a, b);
        }
    }

    /// Semiring (min,+) Bellman–Ford equals Dijkstra.
    #[test]
    fn bellman_ford_equals_dijkstra(wg in arb_weighted(), src in any::<prop::sample::Index>()) {
        let s = src.index(wg.n());
        let (csr, w) = wg.to_weighted_csr();
        let a = CsrValues::new(csr, w);
        let got = semiring::bellman_ford(&a, s);
        let want = weighted_sssp(&wg, s as u32);
        for v in 0..wg.n() {
            prop_assert!(
                (got[v] - want[v]).abs() < 1e-9
                    || (got[v].is_infinite() && want[v].is_infinite()),
                "vertex {}: {} vs {}", v, got[v], want[v]
            );
        }
    }

    /// Semiring (∨,∧) reachability equals BFS reachability.
    #[test]
    fn semiring_reachability_equals_bfs(wg in arb_weighted(), src in any::<prop::sample::Index>()) {
        let g = wg.graph();
        let s = src.index(g.n()) as u32;
        let reach = semiring::reachable(&g.to_csr(), s as usize);
        let bfs = turbobc_suite::graph::bfs(g, s);
        for v in 0..g.n() {
            prop_assert_eq!(reach[v], bfs.depths[v] != 0, "vertex {}", v);
        }
    }

    /// Edge BC sums relate to vertex BC: for every non-source vertex the
    /// dependency entering it equals the dependency leaving plus its own
    /// pair credit — verified indirectly: edge BC matches the oracle.
    #[test]
    fn edge_bc_matches_oracle(wg in arb_weighted()) {
        let g = wg.graph();
        let got = turbobc_suite::turbobc::BcSolver::new(g, Default::default())
            .unwrap()
            .edge_bc()
            .unwrap();
        let want = brandes_edge_bc(g);
        for (k, (a, b)) in got.ebc.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() < 1e-7, "arc {:?}: {} vs {}", got.arcs[k], a, b);
        }
    }
}

/// Widest-path sanity on a hand-built capacity network.
#[test]
fn widest_path_picks_the_bottleneck_route() {
    let wg = WeightedGraph::from_edges(
        5,
        true,
        &[
            (0, 1, 10.0),
            (1, 4, 2.0),
            (0, 2, 4.0),
            (2, 4, 4.0),
            (0, 3, 9.0),
            (3, 4, 3.0),
        ],
    );
    let (csr, w) = wg.to_weighted_csr();
    let caps = semiring::widest_paths(&CsrValues::new(csr, w), 0);
    assert_eq!(
        caps[4], 4.0,
        "route through 2 has the fattest bottleneck: {caps:?}"
    );
}

/// Unit-weight equivalence across the whole stack.
#[test]
fn unit_weight_stack_consistency() {
    let g = Graph::from_edges(
        7,
        false,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 0),
            (1, 5),
        ],
    );
    let exact = turbobc_suite::baselines::brandes_all_sources(&g);
    let wg = WeightedGraph::unit_weights(g);
    let weighted = weighted_bc_exact(&wg, WeightedBcOptions::default());
    for (a, b) in weighted.bc.iter().zip(&exact) {
        assert!((a - b).abs() < 1e-9);
    }
}

//! Observability integration tests: the profile a run emits must agree
//! with what the underlying algorithms independently report — per-level
//! trace depth against the BFS tree height, the memory snapshot against
//! the paper's `7n + m` footprint model, and a lossless JSON round trip
//! through the same validator the CLI's `validate-profile` command uses.

// The 0.2 entry points stay exercised here until removal.
#![allow(deprecated)]

use turbobc_suite::graph::gen;
use turbobc_suite::turbobc::observe::{ProfileObserver, RunProfile};
use turbobc_suite::turbobc::{BcOptions, BcSolver, Kernel, TurboBfs};

/// The tentpole invariant: a SIMT exact-BC run's forward trace records
/// exactly one `Level` event per frontier expansion, so the per-source
/// level count plus the source's own level equals the BFS depth `d`
/// that `TurboBfs` measures on the same graph and source.
#[test]
fn simt_profile_level_count_matches_turbobfs_depth() {
    for (g, label) in [
        (gen::mycielski(5), "mycielski"),
        (gen::small_world(400, 3, 0.1, 9), "small_world"),
        (gen::grid2d(12, 9), "grid2d"),
    ] {
        let options = BcOptions::builder().kernel(Kernel::ScCsc).build();
        let source = g.default_source();
        let depth = TurboBfs::new(&g, options.clone()).run(source).height;

        let solver = BcSolver::new(&g, options).unwrap();
        let mut obs = ProfileObserver::new();
        solver.run_simt_observed(&[source], &mut obs).unwrap();
        let profile = obs.into_profile();

        // The source occupies depth 1 and needs no expansion event, so
        // the trace holds exactly `d - 1` levels at depths 2..=d.
        let levels = profile.levels_for(source).count();
        assert_eq!(
            levels + 1,
            depth as usize,
            "{label}: traced {levels} level(s), TurboBfs measured depth {depth}"
        );
        let mut seen: Vec<u32> = profile.levels_for(source).map(|l| l.depth).collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (2..=depth).collect::<Vec<u32>>(),
            "{label}: depths not contiguous"
        );
    }
}

/// The same invariant holds per source in a multi-source run.
#[test]
fn multi_source_profile_traces_every_source_at_its_own_depth() {
    let g = gen::small_world(300, 2, 0.2, 4);
    let options = BcOptions::default();
    let bfs = TurboBfs::new(&g, options.clone());
    let sources: Vec<u32> = vec![g.default_source(), 1, 17];

    let solver = BcSolver::new(&g, options).unwrap();
    let mut obs = ProfileObserver::new();
    solver.run_simt_observed(&sources, &mut obs).unwrap();
    let profile = obs.into_profile();

    assert_eq!(profile.source_runs.len(), sources.len());
    for &s in &sources {
        let depth = bfs.run(s).height as usize;
        assert_eq!(
            profile.levels_for(s).count() + 1,
            depth,
            "source {s}: level trace disagrees with BFS depth"
        );
    }
}

/// A clean SIMT run's memory snapshot sits within the paper's `7n + m`
/// device-word model and records no recovery events.
#[test]
fn simt_profile_memory_within_paper_model() {
    let g = gen::mycielski(6);
    let solver = BcSolver::new(&g, BcOptions::builder().kernel(Kernel::ScCsc).build()).unwrap();
    let mut obs = ProfileObserver::new();
    solver
        .run_simt_observed(&[g.default_source()], &mut obs)
        .unwrap();
    let profile = obs.into_profile();

    let mem = profile
        .memory
        .as_ref()
        .expect("SIMT runs must snapshot device memory");
    // §3.4 CSC footprint: 7n + m device words (+ CSC's n+1 offset slot
    // and the frontier counter).
    assert_eq!(mem.paper_words, 7 * g.n() + g.m() + 2);
    assert!(
        mem.within_model,
        "peak {} words exceeds the paper's model of {} words",
        mem.measured_words, mem.paper_words
    );
    assert!(
        profile.recovery.is_empty(),
        "clean run must log no recovery events"
    );
}

/// Serialise → validate → reread: the JSON a profile emits is accepted
/// by the CLI validator and preserves the headline fields.
#[test]
fn profile_json_round_trips_through_the_validator() {
    let g = gen::small_world(200, 3, 0.1, 2);
    let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
    let mut obs = ProfileObserver::new();
    solver
        .run_simt_observed(&[g.default_source()], &mut obs)
        .unwrap();
    let profile = obs.into_profile();

    let text = profile.to_json_string();
    let doc = RunProfile::validate(&text).expect("emitted profile must satisfy its own schema");
    assert_eq!(doc.get("engine").and_then(|v| v.as_str()), Some("simt"));
    assert_eq!(
        doc.get("levels").and_then(|v| v.as_arr()).map(|a| a.len()),
        Some(profile.level_count())
    );
    assert_eq!(
        doc.get("graph")
            .and_then(|gj| gj.get("n"))
            .and_then(|v| v.as_f64()),
        Some(g.n() as f64)
    );
}

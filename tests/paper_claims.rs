//! The paper's headline *qualitative* claims, asserted as tests: these
//! are the properties EXPERIMENTS.md reports, pinned so regressions in
//! the engines or generators cannot silently invert a conclusion.

// The 0.2 entry points stay exercised here until removal.
#![allow(deprecated)]

use turbobc_suite::baselines::gunrock_like;
use turbobc_suite::graph::families::{self, Scale};
use turbobc_suite::graph::gen;
use turbobc_suite::simt::{Device, DeviceProps};
use turbobc_suite::turbobc::{footprint, BcOptions, BcSolver, Kernel};

/// §3.1/Tables 1–3: the auto selector reproduces the published
/// best-kernel split for the great majority of the 33 graphs.
#[test]
fn auto_kernel_matches_paper_assignment_on_most_graphs() {
    let mut hits = 0;
    let mut total = 0;
    let mut misses = Vec::new();
    for row in families::all_rows() {
        let g = families::generate(row.name, Scale::Tiny).unwrap();
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        total += 1;
        if solver.kernel().name() == row.kernel {
            hits += 1;
        } else {
            misses.push((row.name, row.kernel, solver.kernel().name()));
        }
    }
    assert!(
        hits * 10 >= total * 7,
        "auto selector matched only {hits}/{total}: misses {misses:?}"
    );
}

/// Figure 4 / §3.4: TurboBC's device working set is strictly below the
/// gunrock inventory, by about `2n + m` words for CSC.
#[test]
fn memory_footprint_ordering() {
    for row in families::all_rows() {
        let g = families::generate(row.name, Scale::Tiny).unwrap();
        let (n, m) = (g.n(), g.m());
        for kernel in [Kernel::ScCsc, Kernel::ScCooc, Kernel::VeCsc] {
            assert!(
                footprint::turbobc_words(n, m, kernel) < gunrock_like::footprint_words(n, m),
                "{}: {:?}",
                row.name,
                kernel
            );
        }
    }
}

/// Table 4: at a capacity between the two working sets, TurboBC runs and
/// gunrock-like OOMs — on every big-graph family.
#[test]
fn table4_oom_ordering() {
    for row in families::TABLE4 {
        let g = families::generate(row.name, Scale::Tiny).unwrap();
        let (n, m) = (g.n(), g.m());
        let kernel = match row.kernel {
            "scCOOC" => Kernel::ScCooc,
            "veCSC" => Kernel::VeCsc,
            _ => Kernel::ScCsc,
        };
        let probe = Device::titan_xp();
        let turbo_peak = footprint::plan_peak_on_device(&probe, n, m, kernel).unwrap();
        let probe2 = Device::titan_xp();
        let _plan = gunrock_like::plan_on_device(&probe2, n, m).unwrap();
        let gunrock_peak = probe2.memory().peak;
        assert!(
            gunrock_peak > turbo_peak,
            "{}: inventory ordering",
            row.name
        );
        // Midway between the two working sets — where the paper's 12 GB
        // card sat for these graphs.
        let capacity = (turbo_peak + gunrock_peak) / 2;
        let dev = Device::with_capacity(DeviceProps::titan_xp(), capacity);
        assert!(
            footprint::plan_peak_on_device(&dev, n, m, kernel).is_ok(),
            "{}: TurboBC must fit",
            row.name
        );
        let dev2 = Device::with_capacity(DeviceProps::titan_xp(), capacity);
        assert!(
            gunrock_like::plan_on_device(&dev2, n, m).is_err(),
            "{}: gunrock-like must OOM",
            row.name
        );
    }
}

/// §3.3: on dense-column (irregular) graphs the warp-per-column kernel
/// keeps lanes busier than the thread-per-column kernel; on skewed
/// scalar-friendly graphs the edge-parallel COOC kernel out-utilises the
/// CSC one.
#[test]
fn warp_efficiency_ordering_on_simulator() {
    // Irregular: mycielski.
    let g = gen::mycielski(9);
    let s = g.default_source();
    let eff = |kernel: Kernel, g: &turbobc_suite::graph::Graph, name: &str| {
        let solver =
            BcSolver::new(g, BcOptions::builder().kernel(kernel).sequential().build()).unwrap();
        let dev = Device::titan_xp();
        let (_, report) = solver.run_simt_on(&dev, &[g.default_source()]).unwrap();
        report
            .metrics
            .kernel(name)
            .expect("kernel ran")
            .warp_efficiency()
    };
    let _ = s;
    let ve = eff(Kernel::VeCsc, &g, "fwd_veCSC");
    let sc = eff(Kernel::ScCsc, &g, "fwd_scCSC");
    assert!(ve > sc, "mycielski: veCSC {ve:.3} must beat scCSC {sc:.3}");

    // Skewed super-star: the CSC column loop starves warps; edge-parallel
    // COOC stays near full occupancy.
    let star = gen::mawi_star(2000, 6, 3);
    let cooc_eff = eff(Kernel::ScCooc, &star, "fwd_scCOOC");
    let csc_eff = eff(Kernel::ScCsc, &star, "fwd_scCSC");
    assert!(
        cooc_eff > csc_eff,
        "mawi: scCOOC {cooc_eff:.3} must beat scCSC {csc_eff:.3}"
    );
}

/// Table 3 vs Table 1 shape: modelled MTEPS of the irregular group is at
/// least an order of magnitude above the deep regular group — the
/// paper's 18 GTEPS headline is set by the Mycielskians.
#[test]
fn irregular_graphs_dominate_modelled_mteps() {
    let mteps = |name: &str, kernel: Kernel| {
        let g = families::generate(name, Scale::Tiny).unwrap();
        let solver =
            BcSolver::new(&g, BcOptions::builder().kernel(kernel).sequential().build()).unwrap();
        let dev = Device::titan_xp();
        let (_, report) = solver.run_simt_on(&dev, &[g.default_source()]).unwrap();
        g.m() as f64 / report.modelled_time_s / 1e6
    };
    let myc = mteps("mycielskian16", Kernel::VeCsc);
    let road = mteps("luxembourg_osm", Kernel::ScCsc);
    assert!(
        myc > 10.0 * road,
        "mycielski {myc:.0} MTEPS should dwarf road {road:.0} MTEPS"
    );
}

/// §4: the BFS-depth column drives the speedup shape — graphs with more
/// levels launch more kernels and spend proportionally more time in
/// fixed overhead. Verify the modelled time per edge grows with d.
#[test]
fn deep_graphs_pay_per_level_overhead() {
    let per_edge_time = |name: &str| {
        let g = families::generate(name, Scale::Tiny).unwrap();
        let row = families::find(name).unwrap();
        let kernel = match row.kernel {
            "scCOOC" => Kernel::ScCooc,
            "veCSC" => Kernel::VeCsc,
            _ => Kernel::ScCsc,
        };
        let solver =
            BcSolver::new(&g, BcOptions::builder().kernel(kernel).sequential().build()).unwrap();
        let dev = Device::titan_xp();
        let (r, report) = solver.run_simt_on(&dev, &[g.default_source()]).unwrap();
        (report.modelled_time_s / g.m() as f64, r.stats.max_depth)
    };
    let (shallow_t, shallow_d) = per_edge_time("smallworld");
    let (deep_t, deep_d) = per_edge_time("luxembourg_osm");
    assert!(deep_d > 4 * shallow_d);
    assert!(
        deep_t > 3.0 * shallow_t,
        "deep graph per-edge time {deep_t:.2e} should exceed shallow {shallow_t:.2e}"
    );
}

/// §4: the scale-free factor drives `KernelChoice::Auto`, pinned on one
/// fixture per regime. The scf values themselves are pinned (the
/// generators are seeded by name, so they are exactly reproducible): the
/// R-MAT power-law stand-in sits far above the scale-free threshold and
/// auto-selects veCSC; the road and mesh stand-ins sit at scf ≈ 1 and
/// auto-select scCSC; the skewed power-law stand-in keeps scCOOC.
#[test]
fn scf_pins_drive_auto_kernel_selection() {
    let pin = |name: &str, scf: f64, kernel: Kernel| {
        let g = families::generate(name, Scale::Tiny).unwrap();
        let solver = BcSolver::new(&g, BcOptions::default()).unwrap();
        let stats = solver.graph_stats();
        assert!(
            (stats.scf - scf).abs() < 1e-3,
            "{name}: scf = {}, pinned {scf}",
            stats.scf
        );
        assert_eq!(solver.kernel(), kernel, "{name}: auto pick");
        assert_eq!(
            stats.is_scale_free(),
            scf >= turbobc_suite::graph::SCALE_FREE_SCF,
            "{name}: scale-free classification"
        );
    };
    // Power-law (R-MAT / kron): high scf, dense-enough mean → veCSC.
    pin("kron_g500-logn18", 9.613, Kernel::VeCsc);
    // Road: scf ≈ 1 (degree ≈ 2 everywhere) → scCSC.
    pin("luxembourg_osm", 1.036, Kernel::ScCsc);
    // Mesh: scf ≈ 1 (bounded planar degree) → scCSC.
    pin("delaunay_n15", 1.104, Kernel::ScCsc);
    // Power-law but sparse and hub-skewed → scCOOC survives.
    pin("com-Youtube", 9.228, Kernel::ScCooc);
}
